//! Nested ASCII-table rendering.
//!
//! Regenerates the look of the paper's instance tables (Figure 1, the
//! Example 3.2 instance, the Appendix A constructions): a set-of-records
//! value renders as a grid with one row per element; set-valued attributes
//! render as nested sub-tables inside their cell.
//!
//! ```
//! use nfd_model::{Schema, Instance, render};
//!
//! let schema = Schema::parse("R : {<A: int, B: {<C: int>}>};").unwrap();
//! let inst = Instance::parse(&schema,
//!     "R = { <A: 1, B: {<C: 3>}>, <A: 2, B: {}> };").unwrap();
//! let table = render::render_instance(&schema, &inst);
//! assert!(table.contains("| A |"));
//! ```

use crate::instance::Instance;
use crate::label::Label;
use crate::schema::Schema;
use crate::types::Type;
use crate::value::Value;

/// A rectangular block of text lines, all padded to the same display width.
#[derive(Clone, Debug)]
struct Block {
    lines: Vec<String>,
    width: usize,
}

impl Block {
    fn text(s: &str) -> Block {
        let lines: Vec<String> = if s.is_empty() {
            vec![String::new()]
        } else {
            s.lines().map(str::to_owned).collect()
        };
        let width = lines.iter().map(|l| l.chars().count()).max().unwrap_or(0);
        let lines = lines.into_iter().map(|l| pad(&l, width)).collect();
        Block { lines, width }
    }

    fn height(&self) -> usize {
        self.lines.len()
    }

    fn pad_to(&self, width: usize, height: usize) -> Block {
        let mut lines: Vec<String> = self.lines.iter().map(|l| pad(l, width)).collect();
        while lines.len() < height {
            lines.push(" ".repeat(width));
        }
        Block { lines, width }
    }
}

fn pad(s: &str, width: usize) -> String {
    let mut out = s.to_owned();
    let len = s.chars().count();
    for _ in len..width {
        out.push(' ');
    }
    out
}

/// Renders an entire instance: each relation's name followed by its table.
pub fn render_instance(schema: &Schema, instance: &Instance) -> String {
    let mut out = String::new();
    for (name, value) in instance.relations() {
        let ty = schema
            .relation_type(*name)
            .expect("instance validated against schema");
        out.push_str(name.as_str());
        out.push_str(" =\n");
        out.push_str(&render_value(value, ty));
        out.push('\n');
    }
    out
}

/// Renders one relation of an instance.
pub fn render_relation(schema: &Schema, instance: &Instance, name: Label) -> String {
    let ty = schema.relation_type(name).expect("relation exists");
    let value = instance.relation_value(name).expect("relation exists");
    render_value(value, ty)
}

/// Renders a single value of the given type. Set-of-records values become
/// tables; everything else renders in the literal syntax.
pub fn render_value(value: &Value, ty: &Type) -> String {
    block_of(value, ty).lines.join("\n")
}

fn block_of(value: &Value, ty: &Type) -> Block {
    match (value, ty) {
        (Value::Set(s), Type::Set(elem)) if elem.is_record() => {
            let rec_ty = elem.as_record().expect("element is record");
            let labels: Vec<Label> = rec_ty.labels().collect();
            if s.is_empty() {
                // Render the header over a single "∅" row so empty sets are
                // visible, as in the Example 3.2 table.
                let header: Vec<Block> = labels.iter().map(|l| Block::text(l.as_str())).collect();
                return grid(header, vec![vec![Block::text("∅"); labels.len().max(1)]]);
            }
            let header: Vec<Block> = labels.iter().map(|l| Block::text(l.as_str())).collect();
            let rows: Vec<Vec<Block>> = s
                .elems()
                .iter()
                .map(|e| {
                    let rec = e.as_record().expect("typechecked element");
                    labels
                        .iter()
                        .map(|l| {
                            let v = rec.get(*l).expect("typechecked field");
                            let fty = rec_ty.field_type(*l).expect("declared field");
                            block_of(v, fty)
                        })
                        .collect()
                })
                .collect();
            grid(header, rows)
        }
        (Value::Set(s), _) if s.is_empty() => Block::text("∅"),
        _ => Block::text(&value.to_string()),
    }
}

/// Assembles a bordered grid from a header row and data rows.
fn grid(header: Vec<Block>, rows: Vec<Vec<Block>>) -> Block {
    let ncols = header
        .len()
        .max(rows.iter().map(Vec::len).max().unwrap_or(0));
    let mut col_widths = vec![0usize; ncols];
    for (i, h) in header.iter().enumerate() {
        col_widths[i] = col_widths[i].max(h.width);
    }
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            col_widths[i] = col_widths[i].max(cell.width);
        }
    }
    let sep = {
        let mut s = String::from("+");
        for w in &col_widths {
            s.push_str(&"-".repeat(w + 2));
            s.push('+');
        }
        s
    };
    let mut lines = Vec::new();
    lines.push(sep.clone());
    emit_row(&mut lines, &header, &col_widths);
    lines.push(sep.clone());
    for row in &rows {
        emit_row(&mut lines, row, &col_widths);
        lines.push(sep.clone());
    }
    let width = sep.chars().count();
    Block {
        lines: lines.into_iter().map(|l| pad(&l, width)).collect(),
        width,
    }
}

fn emit_row(lines: &mut Vec<String>, cells: &[Block], col_widths: &[usize]) {
    let height = cells.iter().map(Block::height).max().unwrap_or(1);
    let padded: Vec<Block> = col_widths
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            cells
                .get(i)
                .cloned()
                .unwrap_or_else(|| Block::text(""))
                .pad_to(w, height)
        })
        .collect();
    for line_idx in 0..height {
        let mut line = String::from("|");
        for cell in &padded {
            line.push(' ');
            line.push_str(&cell.lines[line_idx]);
            line.push_str(" |");
        }
        lines.push(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_table() {
        let schema = Schema::parse("R : {<A: int, B: int>};").unwrap();
        let inst = Instance::parse(&schema, "R = { <A: 1, B: 2>, <A: 3, B: 4> };").unwrap();
        let t = render_relation(&schema, &inst, Label::new("R"));
        assert!(t.contains("| A | B |"));
        assert!(t.contains("| 1 | 2 |"));
        assert!(t.contains("| 3 | 4 |"));
    }

    #[test]
    fn nested_table_contains_subheader() {
        let schema = Schema::parse("R : {<A: int, B: {<C: int, D: int>}>};").unwrap();
        let inst =
            Instance::parse(&schema, "R = { <A: 1, B: {<C: 3, D: 4>, <C: 5, D: 6>}> };").unwrap();
        let t = render_relation(&schema, &inst, Label::new("R"));
        assert!(t.contains("| C | D |"));
        assert!(t.contains("| 3 | 4 |"));
        assert!(t.contains("| 5 | 6 |"));
    }

    #[test]
    fn empty_set_renders_as_empty_symbol() {
        let schema = Schema::parse("R : {<A: int, B: {<C: int>}>};").unwrap();
        let inst = Instance::parse(&schema, "R = { <A: 1, B: {}> };").unwrap();
        let t = render_relation(&schema, &inst, Label::new("R"));
        assert!(t.contains('∅'));
    }

    #[test]
    fn base_set_renders_inline() {
        let schema = Schema::parse("R : {<A: int, B: {int}>};").unwrap();
        let inst = Instance::parse(&schema, "R = { <A: 1, B: {7, 8}> };").unwrap();
        let t = render_relation(&schema, &inst, Label::new("R"));
        assert!(t.contains("{7, 8}"));
    }

    #[test]
    fn render_instance_names_relations() {
        let schema = Schema::parse("R : {<A: int>}; S : {<B: int>};").unwrap();
        let inst = Instance::parse(&schema, "R = {<A: 1>}; S = {<B: 2>};").unwrap();
        let out = render_instance(&schema, &inst);
        assert!(out.contains("R =\n"));
        assert!(out.contains("S =\n"));
    }

    #[test]
    fn ragged_heights_are_padded() {
        // One row has a 2-element nested set, the other a 1-element one.
        let schema = Schema::parse("R : {<A: int, B: {<C: int>}>};").unwrap();
        let inst = Instance::parse(
            &schema,
            "R = { <A: 1, B: {<C: 1>, <C: 2>}>, <A: 2, B: {<C: 9>}> };",
        )
        .unwrap();
        let t = render_relation(&schema, &inst, Label::new("R"));
        // Every line has the same width.
        let widths: std::collections::HashSet<usize> =
            t.lines().map(|l| l.chars().count()).collect();
        assert_eq!(widths.len(), 1, "table is rectangular:\n{t}");
    }
}
