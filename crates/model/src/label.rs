//! Interned attribute labels.
//!
//! The paper fixes a countable set of labels `A = A1, A2, …` used both for
//! record fields and relation names. Labels appear everywhere in path
//! expressions and dependency engines, so they are interned: a [`Label`] is a
//! 4-byte symbol with O(1) equality, hashing and ordering, backed by a
//! process-wide string table.
//!
//! Ordering of labels is by interning order, not lexicographic; it is only
//! used to obtain canonical forms (e.g. sorted record fields, deduplicated
//! sets) and is stable within a process.

use std::fmt;
use std::num::NonZeroU32;
use std::sync::{OnceLock, RwLock};

/// An interned attribute label or relation name.
///
/// Construct with [`Label::new`]; recover the text with [`Label::as_str`] or
/// via `Display`.
///
/// ```
/// use nfd_model::Label;
/// let a = Label::new("cnum");
/// let b = Label::new("cnum");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "cnum");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(NonZeroU32);

struct Interner {
    /// Stored as `&'static str` leaked once per distinct label; labels form a
    /// small, fixed vocabulary per workload so the leak is bounded.
    strings: Vec<&'static str>,
    index: std::collections::HashMap<&'static str, u32>,
}

impl Interner {
    fn new() -> Self {
        Interner {
            strings: Vec::new(),
            index: std::collections::HashMap::new(),
        }
    }
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| RwLock::new(Interner::new()))
}

impl Label {
    /// Interns `name` and returns its symbol. Idempotent: equal strings map
    /// to equal labels.
    pub fn new(name: &str) -> Label {
        let table = interner();
        if let Some(&id) = table
            .read()
            .expect("interner lock poisoned")
            .index
            .get(name)
        {
            return Label(NonZeroU32::new(id + 1).expect("id + 1 is nonzero"));
        }
        let mut w = table.write().expect("interner lock poisoned");
        // Re-check under the write lock: another thread may have interned it.
        if let Some(&id) = w.index.get(name) {
            return Label(NonZeroU32::new(id + 1).expect("id + 1 is nonzero"));
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = u32::try_from(w.strings.len()).expect("label table overflow");
        w.strings.push(leaked);
        w.index.insert(leaked, id);
        Label(NonZeroU32::new(id + 1).expect("id + 1 is nonzero"))
    }

    /// The label's text.
    pub fn as_str(self) -> &'static str {
        interner().read().expect("interner lock poisoned").strings[(self.0.get() - 1) as usize]
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Label({})", self.as_str())
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Label {
        Label::new(s)
    }
}

impl From<&Label> for Label {
    fn from(l: &Label) -> Label {
        *l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Label::new("sid");
        let b = Label::new("sid");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "sid");
    }

    #[test]
    fn distinct_strings_distinct_labels() {
        assert_ne!(Label::new("grade"), Label::new("age"));
    }

    #[test]
    fn display_and_debug() {
        let l = Label::new("books");
        assert_eq!(l.to_string(), "books");
        assert_eq!(format!("{l:?}"), "Label(books)");
    }

    #[test]
    fn labels_are_copy_and_small() {
        assert_eq!(std::mem::size_of::<Label>(), 4);
        // Option<Label> benefits from the NonZero niche.
        assert_eq!(std::mem::size_of::<Option<Label>>(), 4);
    }

    #[test]
    fn ordering_is_consistent_with_equality() {
        let a = Label::new("zzz_order_a");
        let b = Label::new("zzz_order_b");
        assert!(a < b || b < a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Label::new("concurrent_label")))
            .collect();
        let labels: Vec<Label> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(labels.windows(2).all(|w| w[0] == w[1]));
    }
}
