//! Types of the nested relational model.
//!
//! ```text
//! τ ::= b | {τ} | <A1:τ1, …, An:τn>
//! ```
//!
//! The paper's *strict* model requires set and tuple constructors to
//! alternate: the element type of a set is a record, and every record field
//! is base- or set-typed. Appendix A of the paper additionally manipulates
//! sets of base values (`{b}`), so those are first-class here too;
//! [`Type::validate`] distinguishes the two regimes via [`Strictness`].
//!
//! The paper also assumes **no repeated labels within a type** (Section 2):
//! this is what lets the logic translation key its variables by label. The
//! same assumption is enforced by [`Type::validate`] and relied upon by the
//! inference engines.

use crate::error::ModelError;
use crate::label::Label;
use std::collections::HashSet;
use std::fmt;

/// Base (atomic) types. The paper leaves the set of base types abstract but
/// finite; `int`, `string` and `bool` cover every example in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BaseType {
    /// 64-bit signed integers.
    Int,
    /// UTF-8 strings.
    String,
    /// Booleans.
    Bool,
}

impl fmt::Display for BaseType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BaseType::Int => "int",
            BaseType::String => "string",
            BaseType::Bool => "bool",
        })
    }
}

/// A labelled record field.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Field {
    /// Field label.
    pub label: Label,
    /// Field type; base or set in the strict model.
    pub ty: Type,
}

/// A record type `<A1:τ1, …, An:τn>`.
///
/// Field order is preserved as declared (it affects rendering only); equality
/// is order-sensitive, matching the paper's treatment of record types as
/// label-to-type maps with a fixed presentation.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RecordType {
    fields: Vec<Field>,
}

impl RecordType {
    /// Builds a record type from `(label, type)` pairs.
    ///
    /// Duplicate labels *within this record* are rejected eagerly; the
    /// stronger whole-type uniqueness check lives in [`Type::validate`].
    pub fn new(fields: Vec<Field>) -> Result<RecordType, ModelError> {
        let mut seen = HashSet::with_capacity(fields.len());
        for f in &fields {
            if !seen.insert(f.label) {
                return Err(ModelError::DuplicateLabel(f.label));
            }
        }
        Ok(RecordType { fields })
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Looks up the type of field `label`.
    pub fn field_type(&self, label: Label) -> Option<&Type> {
        self.fields.iter().find(|f| f.label == label).map(|f| &f.ty)
    }

    /// Iterator over the field labels in declaration order.
    pub fn labels(&self) -> impl Iterator<Item = Label> + '_ {
        self.fields.iter().map(|f| f.label)
    }
}

/// Which structural regime [`Type::validate`] enforces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strictness {
    /// Section 2's model: set elements must be records, record fields must be
    /// base or set types (constructors alternate).
    Strict,
    /// Appendix A's relaxation: sets of base values (`{b}`) are also allowed.
    /// Records directly inside records remain disallowed.
    AllowBaseSets,
}

/// A type of the nested relational model.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Type {
    /// A base type `b`.
    Base(BaseType),
    /// A set type `{τ}`.
    Set(Box<Type>),
    /// A record type `<A1:τ1, …, An:τn>`.
    Record(RecordType),
}

impl Type {
    /// Convenience constructor: `{<fields…>}`, the shape of every relation.
    pub fn set_of_records(fields: Vec<Field>) -> Result<Type, ModelError> {
        Ok(Type::Set(Box::new(Type::Record(RecordType::new(fields)?))))
    }

    /// Convenience constructor for a field.
    pub fn field(label: impl Into<Label>, ty: Type) -> Field {
        Field {
            label: label.into(),
            ty,
        }
    }

    /// Is this a base type?
    pub fn is_base(&self) -> bool {
        matches!(self, Type::Base(_))
    }

    /// Is this a set type?
    pub fn is_set(&self) -> bool {
        matches!(self, Type::Set(_))
    }

    /// Is this a record type?
    pub fn is_record(&self) -> bool {
        matches!(self, Type::Record(_))
    }

    /// Is this a set-of-records type (the shape of a relation)?
    pub fn is_set_of_records(&self) -> bool {
        matches!(self, Type::Set(elem) if elem.is_record())
    }

    /// The element type, if this is a set type.
    pub fn element(&self) -> Option<&Type> {
        match self {
            Type::Set(e) => Some(e),
            _ => None,
        }
    }

    /// The record type, if this is a record.
    pub fn as_record(&self) -> Option<&RecordType> {
        match self {
            Type::Record(r) => Some(r),
            _ => None,
        }
    }

    /// The record type of this set's elements, if this is a set of records.
    pub fn element_record(&self) -> Option<&RecordType> {
        self.element().and_then(Type::as_record)
    }

    /// Checks the structural invariants of the model:
    ///
    /// 1. constructor alternation according to `strictness`, and
    /// 2. **no repeated labels anywhere in the type** (the paper's global
    ///    assumption, e.g. `<A:int, B:{<A:int>}>` is rejected).
    pub fn validate(&self, strictness: Strictness) -> Result<(), ModelError> {
        let mut seen = HashSet::new();
        self.validate_inner(strictness, &mut seen, Position::Top)
    }

    fn validate_inner(
        &self,
        strictness: Strictness,
        seen: &mut HashSet<Label>,
        pos: Position,
    ) -> Result<(), ModelError> {
        match self {
            Type::Base(_) => Ok(()),
            Type::Set(elem) => {
                match (&**elem, strictness) {
                    (Type::Record(_), _) => {}
                    (Type::Base(_), Strictness::AllowBaseSets) => {}
                    (Type::Base(_), Strictness::Strict) => {
                        return Err(ModelError::Malformed(
                            "strict model forbids sets of base values".into(),
                        ))
                    }
                    (Type::Set(_), _) => {
                        return Err(ModelError::Malformed(
                            "sets of sets are not allowed (constructors must alternate)".into(),
                        ))
                    }
                }
                elem.validate_inner(strictness, seen, Position::SetElement)
            }
            Type::Record(rec) => {
                if pos == Position::RecordField {
                    return Err(ModelError::Malformed(
                        "records directly inside records are not allowed \
                         (constructors must alternate)"
                            .into(),
                    ));
                }
                for f in rec.fields() {
                    if !seen.insert(f.label) {
                        return Err(ModelError::DuplicateLabel(f.label));
                    }
                    if f.ty.is_record() {
                        return Err(ModelError::Malformed(format!(
                            "field `{}` has a bare record type; record fields must be \
                             base- or set-typed",
                            f.label
                        )));
                    }
                    f.ty.validate_inner(strictness, seen, Position::RecordField)?;
                }
                Ok(())
            }
        }
    }

    /// Maximum number of set constructors on any root-to-leaf path: the
    /// nesting depth. A flat (1NF) relation type `{<A:b, …>}` has depth 1.
    pub fn depth(&self) -> usize {
        match self {
            Type::Base(_) => 0,
            Type::Set(e) => 1 + e.depth(),
            Type::Record(r) => r.fields().iter().map(|f| f.ty.depth()).max().unwrap_or(0),
        }
    }

    /// Total number of labels occurring in the type.
    pub fn label_count(&self) -> usize {
        match self {
            Type::Base(_) => 0,
            Type::Set(e) => e.label_count(),
            Type::Record(r) => r
                .fields()
                .iter()
                .map(|f| 1 + f.ty.label_count())
                .sum::<usize>(),
        }
    }

    /// All labels occurring in the type, in preorder.
    pub fn all_labels(&self) -> Vec<Label> {
        let mut out = Vec::new();
        self.collect_labels(&mut out);
        out
    }

    fn collect_labels(&self, out: &mut Vec<Label>) {
        match self {
            Type::Base(_) => {}
            Type::Set(e) => e.collect_labels(out),
            Type::Record(r) => {
                for f in r.fields() {
                    out.push(f.label);
                    f.ty.collect_labels(out);
                }
            }
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Base(b) => write!(f, "{b}"),
            Type::Set(e) => write!(f, "{{{e}}}"),
            Type::Record(r) => {
                f.write_str("<")?;
                for (i, fld) in r.fields().iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{}: {}", fld.label, fld.ty)?;
                }
                f.write_str(">")
            }
        }
    }
}

#[derive(PartialEq, Clone, Copy)]
enum Position {
    Top,
    SetElement,
    RecordField,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    /// The Course type from the paper's introduction.
    fn course_type() -> Type {
        Type::set_of_records(vec![
            Type::field("cnum", Type::Base(BaseType::String)),
            Type::field("time", Type::Base(BaseType::Int)),
            Type::field(
                "students",
                Type::Set(Box::new(Type::Record(
                    RecordType::new(vec![
                        Type::field("sid", Type::Base(BaseType::Int)),
                        Type::field("age", Type::Base(BaseType::Int)),
                        Type::field("grade", Type::Base(BaseType::String)),
                    ])
                    .unwrap(),
                ))),
            ),
            Type::field(
                "books",
                Type::Set(Box::new(Type::Record(
                    RecordType::new(vec![
                        Type::field("isbn", Type::Base(BaseType::String)),
                        Type::field("title", Type::Base(BaseType::String)),
                    ])
                    .unwrap(),
                ))),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn course_type_is_valid_and_displays() {
        let t = course_type();
        t.validate(Strictness::Strict).unwrap();
        let s = t.to_string();
        assert!(s.starts_with("{<cnum: string"));
        assert!(s.contains("students: {<sid: int, age: int, grade: string>}"));
    }

    #[test]
    fn depth_and_label_count() {
        let t = course_type();
        assert_eq!(t.depth(), 2);
        assert_eq!(t.label_count(), 9);
        assert!(t.is_set_of_records());
    }

    #[test]
    fn duplicate_label_within_record_rejected() {
        let err = RecordType::new(vec![
            Type::field("a", Type::Base(BaseType::Int)),
            Type::field("a", Type::Base(BaseType::Int)),
        ])
        .unwrap_err();
        assert!(matches!(err, ModelError::DuplicateLabel(x) if x == l("a")));
    }

    #[test]
    fn repeated_label_across_nesting_rejected() {
        // <A:int, B:{<A:int>}> — the paper's canonical disallowed example.
        let t = Type::set_of_records(vec![
            Type::field("A", Type::Base(BaseType::Int)),
            Type::field(
                "B",
                Type::Set(Box::new(Type::Record(
                    RecordType::new(vec![Type::field("A", Type::Base(BaseType::Int))]).unwrap(),
                ))),
            ),
        ])
        .unwrap();
        assert!(matches!(
            t.validate(Strictness::Strict),
            Err(ModelError::DuplicateLabel(x)) if x == l("A")
        ));
    }

    #[test]
    fn set_of_sets_rejected() {
        let t = Type::Set(Box::new(Type::Set(Box::new(Type::Base(BaseType::Int)))));
        assert!(t.validate(Strictness::AllowBaseSets).is_err());
    }

    #[test]
    fn base_sets_only_in_relaxed_mode() {
        let t = Type::Set(Box::new(Type::Base(BaseType::Int)));
        assert!(t.validate(Strictness::Strict).is_err());
        assert!(t.validate(Strictness::AllowBaseSets).is_ok());
    }

    #[test]
    fn record_inside_record_rejected() {
        let inner = Type::Record(RecordType::new(vec![]).unwrap());
        let t = Type::Record(RecordType::new(vec![Type::field("r", inner)]).unwrap());
        let err = t.validate(Strictness::AllowBaseSets).unwrap_err();
        assert!(err.to_string().contains("base- or set-typed"));
    }

    #[test]
    fn field_type_lookup() {
        let t = course_type();
        let rec = t.element_record().unwrap();
        assert!(rec.field_type(l("cnum")).unwrap().is_base());
        assert!(rec.field_type(l("students")).unwrap().is_set());
        assert!(rec.field_type(l("nope")).is_none());
        assert_eq!(rec.arity(), 4);
    }

    #[test]
    fn all_labels_preorder() {
        let t = course_type();
        let names: Vec<&str> = t.all_labels().iter().map(|x| x.as_str()).collect();
        assert_eq!(
            names,
            ["cnum", "time", "students", "sid", "age", "grade", "books", "isbn", "title"]
        );
    }
}
