//! Error types for the model crate.

use crate::label::Label;
use std::fmt;

/// Errors raised while constructing or validating model objects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// A label occurs twice within one type (the paper forbids repeated
    /// labels anywhere in a type).
    DuplicateLabel(Label),
    /// A structural invariant of the nested model is violated.
    Malformed(String),
    /// A value does not conform to the expected type.
    TypeMismatch {
        /// What the type demanded.
        expected: String,
        /// What the value provided.
        found: String,
        /// Where in the value the mismatch occurred (a `/`-separated trail).
        at: String,
    },
    /// A relation name was not found in the schema / instance.
    UnknownRelation(Label),
    /// A record is missing a field required by its type.
    MissingField(Label),
    /// A record carries a field its type does not declare.
    UnexpectedField(Label),
    /// A parse error, with 1-based line/column position.
    Parse {
        /// Human-readable description.
        msg: String,
        /// 1-based line.
        line: u32,
        /// 1-based column.
        col: u32,
    },
    /// Input exceeded a hard parser limit (nesting depth, input size).
    /// These limits protect against stack overflow and memory blowup on
    /// adversarial input; they are far above anything a legitimate schema
    /// or instance needs.
    Limit {
        /// Which limit tripped (e.g. "nesting depth").
        what: &'static str,
        /// The configured ceiling.
        limit: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateLabel(l) => {
                write!(f, "label `{l}` is repeated within a type")
            }
            ModelError::Malformed(m) => write!(f, "malformed type: {m}"),
            ModelError::TypeMismatch {
                expected,
                found,
                at,
            } => write!(
                f,
                "type mismatch at `{at}`: expected {expected}, found {found}"
            ),
            ModelError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            ModelError::MissingField(l) => write!(f, "record is missing field `{l}`"),
            ModelError::UnexpectedField(l) => write!(f, "record has undeclared field `{l}`"),
            ModelError::Parse { msg, line, col } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            ModelError::Limit { what, limit } => {
                write!(f, "input exceeds the {what} limit of {limit}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = ModelError::DuplicateLabel(Label::new("A"));
        assert_eq!(e.to_string(), "label `A` is repeated within a type");
        let e = ModelError::Parse {
            msg: "expected `>`".into(),
            line: 3,
            col: 7,
        };
        assert_eq!(e.to_string(), "parse error at 3:7: expected `>`");
        let e = ModelError::TypeMismatch {
            expected: "int".into(),
            found: "string".into(),
            at: "Course/time".into(),
        };
        assert!(e.to_string().contains("Course/time"));
    }
}
