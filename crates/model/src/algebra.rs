//! Nest and unnest: the restructuring operations of the nested relational
//! algebra.
//!
//! The paper's related work (Fischer, Saxton, Thomas & Van Gucht \[7\])
//! studies how nesting and unnesting preserve or destroy functional
//! dependencies, and its motivation — materialized views over complex
//! databases — needs exactly these operations. This module implements
//! them on schemas and instances:
//!
//! * [`unnest`] — `μ_A(R)`: flatten the set-valued attribute `A` of a
//!   set-of-records value, pairing every element of `A` with its parent's
//!   remaining fields. Tuples whose `A` is empty disappear (the classical
//!   information loss that makes unnest lossy on empty sets — the same
//!   phenomenon Section 3.2 wrestles with).
//! * [`nest`] — `ν_{A=(B1…Bk)}(R)`: group tuples by the remaining
//!   attributes and collect the `B1…Bk` projections of each group into a
//!   new set-valued attribute `A`.
//!
//! The classical facts are property-tested in this repository:
//! `unnest(nest(R)) = R` always, while `nest(unnest(R)) = R` only when no
//! set is empty — and FD preservation across the operations follows the
//! patterns of \[7\].

use crate::error::ModelError;
use crate::label::Label;
use crate::types::{Field, RecordType, Type};
use crate::value::{RecordValue, SetValue, Value};

/// Unnests the set-of-records attribute `attr` of the set-of-records type
/// `ty`: the attribute's element fields are spliced into the parent
/// record, in place of `attr`.
pub fn unnest_type(ty: &Type, attr: Label) -> Result<Type, ModelError> {
    let rec = ty
        .element_record()
        .ok_or_else(|| ModelError::Malformed("unnest requires a set of records".into()))?;
    let inner_ty = rec.field_type(attr).ok_or(ModelError::MissingField(attr))?;
    let inner_rec = inner_ty.element_record().ok_or_else(|| {
        ModelError::Malformed(format!("attribute `{attr}` is not a set of records"))
    })?;
    let mut fields: Vec<Field> = Vec::new();
    for f in rec.fields() {
        if f.label == attr {
            for g in inner_rec.fields() {
                fields.push(g.clone());
            }
        } else {
            fields.push(f.clone());
        }
    }
    Ok(Type::Set(Box::new(Type::Record(RecordType::new(fields)?))))
}

/// Unnests attribute `attr` of a set-of-records value (`μ_attr`).
///
/// Each tuple is replaced by one tuple per element of its `attr` set;
/// tuples with an empty `attr` vanish. The result conforms to
/// [`unnest_type`] of the original type.
pub fn unnest(value: &Value, attr: Label) -> Result<Value, ModelError> {
    let set = value
        .as_set()
        .ok_or_else(|| ModelError::Malformed("unnest requires a set value".into()))?;
    let mut out = SetValue::empty();
    for elem in set.elems() {
        let rec = elem
            .as_record()
            .ok_or_else(|| ModelError::Malformed("unnest requires record elements".into()))?;
        let inner = rec
            .get(attr)
            .ok_or(ModelError::MissingField(attr))?
            .as_set()
            .ok_or_else(|| {
                ModelError::Malformed(format!("attribute `{attr}` is not set-valued"))
            })?;
        for inner_elem in inner.elems() {
            let inner_rec = inner_elem.as_record().ok_or_else(|| {
                ModelError::Malformed(format!("elements of `{attr}` are not records"))
            })?;
            let mut fields: Vec<(Label, Value)> = Vec::new();
            for (l, v) in rec.fields() {
                if *l != attr {
                    fields.push((*l, v.clone()));
                }
            }
            for (l, v) in inner_rec.fields() {
                fields.push((*l, v.clone()));
            }
            out.insert(Value::Record(RecordValue::new(fields)?));
        }
    }
    Ok(Value::Set(out))
}

/// Nests the attributes `grouped` of the set-of-records type `ty` into a
/// new set-valued attribute `attr` (`ν_{attr=(grouped)}`). The grouped
/// fields are removed from the parent record and become the element
/// record of `attr`, which is appended as the last field.
pub fn nest_type(ty: &Type, attr: Label, grouped: &[Label]) -> Result<Type, ModelError> {
    let rec = ty
        .element_record()
        .ok_or_else(|| ModelError::Malformed("nest requires a set of records".into()))?;
    if rec.field_type(attr).is_some() {
        return Err(ModelError::DuplicateLabel(attr));
    }
    let mut kept: Vec<Field> = Vec::new();
    let mut inner: Vec<Field> = Vec::new();
    for f in rec.fields() {
        if grouped.contains(&f.label) {
            inner.push(f.clone());
        } else {
            kept.push(f.clone());
        }
    }
    if inner.len() != grouped.len() {
        for g in grouped {
            if rec.field_type(*g).is_none() {
                return Err(ModelError::MissingField(*g));
            }
        }
    }
    if inner.is_empty() {
        return Err(ModelError::Malformed(
            "nest requires at least one grouped attribute".into(),
        ));
    }
    kept.push(Field {
        label: attr,
        ty: Type::Set(Box::new(Type::Record(RecordType::new(inner)?))),
    });
    Ok(Type::Set(Box::new(Type::Record(RecordType::new(kept)?))))
}

/// Nests the attributes `grouped` of a set-of-records value into a new
/// set-valued attribute `attr` (`ν_{attr=(grouped)}`): tuples agreeing on
/// all remaining attributes merge into one tuple whose `attr` collects
/// their grouped projections.
pub fn nest(value: &Value, attr: Label, grouped: &[Label]) -> Result<Value, ModelError> {
    let set = value
        .as_set()
        .ok_or_else(|| ModelError::Malformed("nest requires a set value".into()))?;
    // Group by the non-grouped fields, preserving canonical order.
    let mut groups: Vec<(Vec<(Label, Value)>, SetValue)> = Vec::new();
    for elem in set.elems() {
        let rec = elem
            .as_record()
            .ok_or_else(|| ModelError::Malformed("nest requires record elements".into()))?;
        let mut key: Vec<(Label, Value)> = Vec::new();
        let mut member: Vec<(Label, Value)> = Vec::new();
        for (l, v) in rec.fields() {
            if grouped.contains(l) {
                member.push((*l, v.clone()));
            } else {
                key.push((*l, v.clone()));
            }
        }
        if member.len() != grouped.len() {
            for g in grouped {
                if rec.get(*g).is_none() {
                    return Err(ModelError::MissingField(*g));
                }
            }
        }
        let member = Value::Record(RecordValue::new(member)?);
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, set)) => {
                set.insert(member);
            }
            None => {
                let mut s = SetValue::empty();
                s.insert(member);
                groups.push((key, s));
            }
        }
    }
    let mut out = SetValue::empty();
    for (mut key, members) in groups {
        key.push((attr, Value::Set(members)));
        out.insert(Value::Record(RecordValue::new(key)?));
    }
    Ok(Value::Set(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_type, parse_value};

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    #[test]
    fn unnest_type_splices_fields() {
        let ty = parse_type("{<a: int, s: {<b: int, c: int>}, d: int>}").unwrap();
        let flat = unnest_type(&ty, l("s")).unwrap();
        assert_eq!(flat.to_string(), "{<a: int, b: int, c: int, d: int>}");
        assert!(
            unnest_type(&ty, l("a")).is_err(),
            "a is not a set of records"
        );
        assert!(unnest_type(&ty, l("zz")).is_err());
    }

    #[test]
    fn nest_type_groups_fields() {
        let ty = parse_type("{<a: int, b: int, c: int>}").unwrap();
        let nested = nest_type(&ty, l("s"), &[l("b"), l("c")]).unwrap();
        assert_eq!(nested.to_string(), "{<a: int, s: {<b: int, c: int>}>}");
        // attr must be fresh, grouped attrs must exist and be non-empty.
        assert!(nest_type(&ty, l("a"), &[l("b")]).is_err());
        assert!(nest_type(&ty, l("s"), &[l("zz")]).is_err());
        assert!(nest_type(&ty, l("s"), &[]).is_err());
    }

    #[test]
    fn unnest_flattens_and_drops_empty() {
        let v = parse_value(
            "{<a: 1, s: {<b: 10>, <b: 20>}>,
              <a: 2, s: {}>,
              <a: 3, s: {<b: 30>}>}",
        )
        .unwrap();
        let flat = unnest(&v, l("s")).unwrap();
        assert_eq!(
            flat,
            parse_value("{<a: 1, b: 10>, <a: 1, b: 20>, <a: 3, b: 30>}").unwrap()
        );
    }

    #[test]
    fn nest_groups_by_remaining_fields() {
        let v = parse_value("{<a: 1, b: 10>, <a: 1, b: 20>, <a: 3, b: 30>}").unwrap();
        let nested = nest(&v, l("s"), &[l("b")]).unwrap();
        assert_eq!(
            nested,
            parse_value("{<a: 1, s: {<b: 10>, <b: 20>}>, <a: 3, s: {<b: 30>}>}").unwrap()
        );
    }

    #[test]
    fn unnest_nest_identity() {
        // ν then μ is the identity on any flat relation.
        let v = parse_value("{<a: 1, b: 10>, <a: 1, b: 20>, <a: 2, b: 10>}").unwrap();
        let nested = nest(&v, l("s"), &[l("b")]).unwrap();
        let back = unnest(&nested, l("s")).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn nest_unnest_identity_only_without_empty_sets() {
        // μ then ν is the identity when no set is empty…
        let v = parse_value("{<a: 1, s: {<b: 10>, <b: 20>}>, <a: 2, s: {<b: 30>}>}").unwrap();
        let flat = unnest(&v, l("s")).unwrap();
        let back = nest(&flat, l("s"), &[l("b")]).unwrap();
        assert_eq!(back, v);
        // …but an empty set is lost forever.
        let w = parse_value("{<a: 1, s: {<b: 10>}>, <a: 2, s: {}>}").unwrap();
        let flat = unnest(&w, l("s")).unwrap();
        let back = nest(&flat, l("s"), &[l("b")]).unwrap();
        assert_eq!(back, parse_value("{<a: 1, s: {<b: 10>}>}").unwrap());
        assert_ne!(back, w);
    }

    #[test]
    fn nest_merges_duplicate_members() {
        // Set semantics: duplicate grouped projections collapse.
        let v = parse_value("{<a: 1, b: 10>, <a: 1, b: 10>}").unwrap();
        let nested = nest(&v, l("s"), &[l("b")]).unwrap();
        assert_eq!(nested, parse_value("{<a: 1, s: {<b: 10>}>}").unwrap());
    }

    #[test]
    fn unnest_typechecks_against_unnested_type() {
        let ty = parse_type("{<a: int, s: {<b: int>}>}").unwrap();
        let v = parse_value("{<a: 1, s: {<b: 10>, <b: 20>}>}").unwrap();
        v.typecheck(&ty).unwrap();
        let flat_ty = unnest_type(&ty, l("s")).unwrap();
        let flat = unnest(&v, l("s")).unwrap();
        flat.typecheck(&flat_ty).unwrap();
    }

    #[test]
    fn nest_typechecks_against_nested_type() {
        let ty = parse_type("{<a: int, b: int>}").unwrap();
        let v = parse_value("{<a: 1, b: 2>, <a: 1, b: 3>}").unwrap();
        v.typecheck(&ty).unwrap();
        let nested_ty = nest_type(&ty, l("s"), &[l("b")]).unwrap();
        let nested = nest(&v, l("s"), &[l("b")]).unwrap();
        nested.typecheck(&nested_ty).unwrap();
    }

    #[test]
    fn deep_unnest() {
        // Unnesting at depth: unnest s, then t within the result.
        let v =
            parse_value("{<a: 1, s: {<b: 1, t: {<c: 1>, <c: 2>}>, <b: 2, t: {<c: 3>}>}>}").unwrap();
        let once = unnest(&v, l("s")).unwrap();
        let twice = unnest(&once, l("t")).unwrap();
        assert_eq!(
            twice,
            parse_value("{<a: 1, b: 1, c: 1>, <a: 1, b: 1, c: 2>, <a: 1, b: 2, c: 3>}").unwrap()
        );
    }
}
