//! Values of the nested relational model.
//!
//! A value is a base constant, a finite set, or a record. Sets are kept in a
//! canonical sorted, deduplicated representation so that `==` is genuine set
//! equality — the paper's dependencies compare set-valued attributes
//! extensionally (e.g. `Course:[cnum → students]` compares whole student
//! sets).

use crate::error::ModelError;
use crate::label::Label;
use crate::types::{RecordType, Type};
use std::cmp::Ordering;
use std::fmt;

/// A constant of a base type.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BaseValue {
    /// An integer constant.
    Int(i64),
    /// A string constant.
    Str(String),
    /// A boolean constant.
    Bool(bool),
}

impl fmt::Display for BaseValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseValue::Int(i) => write!(f, "{i}"),
            BaseValue::Str(s) => write!(f, "{s:?}"),
            BaseValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// A finite set value in canonical (sorted, deduplicated) form.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SetValue {
    elems: Vec<Value>,
}

impl SetValue {
    /// Builds a set from arbitrary elements; duplicates collapse.
    pub fn new(mut elems: Vec<Value>) -> SetValue {
        elems.sort();
        elems.dedup();
        SetValue { elems }
    }

    /// The empty set.
    pub fn empty() -> SetValue {
        SetValue { elems: Vec::new() }
    }

    /// Elements in canonical order.
    pub fn elems(&self) -> &[Value] {
        &self.elems
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Is the set empty? Empty sets are the crux of Section 3.2.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Membership test (binary search over the canonical order).
    pub fn contains(&self, v: &Value) -> bool {
        self.elems.binary_search(v).is_ok()
    }

    /// Inserts an element, preserving canonical form. Returns `true` if the
    /// element was new.
    pub fn insert(&mut self, v: Value) -> bool {
        match self.elems.binary_search(&v) {
            Ok(_) => false,
            Err(i) => {
                self.elems.insert(i, v);
                true
            }
        }
    }

    /// Do the two sets share no elements? Used for the paper's observation
    /// that `x0:[x1:x2 → x1]` forces distinct `x1` sets to be disjoint.
    pub fn is_disjoint(&self, other: &SetValue) -> bool {
        // Merge walk over the two canonical orders.
        let (mut i, mut j) = (0, 0);
        while i < self.elems.len() && j < other.elems.len() {
            match self.elems[i].cmp(&other.elems[j]) {
                Ordering::Less => i += 1,
                Ordering::Greater => j += 1,
                Ordering::Equal => return false,
            }
        }
        true
    }
}

impl FromIterator<Value> for SetValue {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> SetValue {
        SetValue::new(iter.into_iter().collect())
    }
}

/// A record value `<A1 ↦ v1, …, An ↦ vn>`.
///
/// Fields are stored sorted by label symbol so that records compare
/// structurally regardless of construction order.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordValue {
    fields: Vec<(Label, Value)>,
}

impl RecordValue {
    /// Builds a record from `(label, value)` pairs. Duplicate labels are
    /// rejected.
    pub fn new(mut fields: Vec<(Label, Value)>) -> Result<RecordValue, ModelError> {
        fields.sort_by_key(|(l, _)| *l);
        for w in fields.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(ModelError::DuplicateLabel(w[0].0));
            }
        }
        Ok(RecordValue { fields })
    }

    /// The fields in canonical (label-symbol) order.
    pub fn fields(&self) -> &[(Label, Value)] {
        &self.fields
    }

    /// Projects field `label` (the paper's `π_A`), if present.
    pub fn get(&self, label: Label) -> Option<&Value> {
        self.fields
            .binary_search_by_key(&label, |(l, _)| *l)
            .ok()
            .map(|i| &self.fields[i].1)
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }
}

/// A value of the nested relational model.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A base constant.
    Base(BaseValue),
    /// A set value.
    Set(SetValue),
    /// A record value.
    Record(RecordValue),
}

impl Value {
    /// Integer constant shorthand.
    pub fn int(i: i64) -> Value {
        Value::Base(BaseValue::Int(i))
    }

    /// String constant shorthand.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Base(BaseValue::Str(s.into()))
    }

    /// Boolean constant shorthand.
    pub fn bool(b: bool) -> Value {
        Value::Base(BaseValue::Bool(b))
    }

    /// Set shorthand.
    pub fn set(elems: impl IntoIterator<Item = Value>) -> Value {
        Value::Set(elems.into_iter().collect())
    }

    /// The empty set.
    pub fn empty_set() -> Value {
        Value::Set(SetValue::empty())
    }

    /// Record shorthand; panics on duplicate labels (builder convenience for
    /// tests and examples — use [`RecordValue::new`] to handle the error).
    pub fn record(fields: Vec<(Label, Value)>) -> Value {
        Value::Record(RecordValue::new(fields).expect("duplicate label in record literal"))
    }

    /// Record shorthand over `&str` labels.
    pub fn record_of(fields: Vec<(&str, Value)>) -> Value {
        Value::record(
            fields
                .into_iter()
                .map(|(l, v)| (Label::new(l), v))
                .collect(),
        )
    }

    /// Set view, if this is a set.
    pub fn as_set(&self) -> Option<&SetValue> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }

    /// Record view, if this is a record.
    pub fn as_record(&self) -> Option<&RecordValue> {
        match self {
            Value::Record(r) => Some(r),
            _ => None,
        }
    }

    /// Base view, if this is a base constant.
    pub fn as_base(&self) -> Option<&BaseValue> {
        match self {
            Value::Base(b) => Some(b),
            _ => None,
        }
    }

    /// Checks that `self` inhabits `ty`. Returns the first mismatch found,
    /// with a `/`-separated trail to its location.
    pub fn typecheck(&self, ty: &Type) -> Result<(), ModelError> {
        self.typecheck_at(ty, &mut String::new())
    }

    fn typecheck_at(&self, ty: &Type, at: &mut String) -> Result<(), ModelError> {
        let mismatch = |expected: &Type, found: &Value, at: &str| ModelError::TypeMismatch {
            expected: expected.to_string(),
            found: found.brief(),
            at: if at.is_empty() {
                "<root>".into()
            } else {
                at.into()
            },
        };
        match (self, ty) {
            (Value::Base(BaseValue::Int(_)), Type::Base(crate::types::BaseType::Int))
            | (Value::Base(BaseValue::Str(_)), Type::Base(crate::types::BaseType::String))
            | (Value::Base(BaseValue::Bool(_)), Type::Base(crate::types::BaseType::Bool)) => Ok(()),
            (Value::Set(s), Type::Set(elem_ty)) => {
                for (i, e) in s.elems().iter().enumerate() {
                    let len = at.len();
                    if !at.is_empty() {
                        at.push('/');
                    }
                    at.push_str(&format!("[{i}]"));
                    e.typecheck_at(elem_ty, at)?;
                    at.truncate(len);
                }
                Ok(())
            }
            (Value::Record(r), Type::Record(rt)) => {
                check_record(r, rt, at)?;
                Ok(())
            }
            _ => Err(mismatch(ty, self, at)),
        }
    }

    /// A short description of the value's shape, for error messages.
    fn brief(&self) -> String {
        match self {
            Value::Base(b) => format!("base value {b}"),
            Value::Set(s) => format!("set of {} elements", s.len()),
            Value::Record(r) => format!("record of arity {}", r.arity()),
        }
    }

    /// Does any set anywhere inside this value have zero elements? The
    /// Theorem 3.1 axiomatization is only complete for instances where this
    /// is `false`.
    pub fn contains_empty_set(&self) -> bool {
        match self {
            Value::Base(_) => false,
            Value::Set(s) => s.is_empty() || s.elems().iter().any(Value::contains_empty_set),
            Value::Record(r) => r.fields().iter().any(|(_, v)| v.contains_empty_set()),
        }
    }

    /// Total number of base constants in the value (a size measure for
    /// benches and generators).
    pub fn base_count(&self) -> usize {
        match self {
            Value::Base(_) => 1,
            Value::Set(s) => s.elems().iter().map(Value::base_count).sum(),
            Value::Record(r) => r.fields().iter().map(|(_, v)| v.base_count()).sum(),
        }
    }
}

fn check_record(r: &RecordValue, rt: &RecordType, at: &mut String) -> Result<(), ModelError> {
    for f in rt.fields() {
        let Some(v) = r.get(f.label) else {
            return Err(ModelError::MissingField(f.label));
        };
        let len = at.len();
        if !at.is_empty() {
            at.push('/');
        }
        at.push_str(f.label.as_str());
        v.typecheck_at(&f.ty, at)?;
        at.truncate(len);
    }
    if r.arity() != rt.arity() {
        for (l, _) in r.fields() {
            if rt.field_type(*l).is_none() {
                return Err(ModelError::UnexpectedField(*l));
            }
        }
    }
    Ok(())
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Base(b) => write!(f, "{b}"),
            Value::Set(s) => {
                f.write_str("{")?;
                for (i, e) in s.elems().iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str("}")
            }
            Value::Record(r) => {
                f.write_str("<")?;
                for (i, (l, v)) in r.fields().iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{l}: {v}")?;
                }
                f.write_str(">")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{BaseType, Strictness};

    #[test]
    fn set_equality_is_extensional() {
        let a = Value::set([Value::int(1), Value::int(2)]);
        let b = Value::set([Value::int(2), Value::int(1), Value::int(2)]);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_set_detection() {
        let v = Value::record_of(vec![("A", Value::int(1)), ("B", Value::empty_set())]);
        assert!(v.contains_empty_set());
        let w = Value::record_of(vec![
            ("A", Value::int(1)),
            (
                "B",
                Value::set([Value::record_of(vec![("C", Value::int(3))])]),
            ),
        ]);
        assert!(!w.contains_empty_set());
    }

    #[test]
    fn record_field_order_is_canonical() {
        let a = Value::record_of(vec![("x", Value::int(1)), ("y", Value::int(2))]);
        let b = Value::record_of(vec![("y", Value::int(2)), ("x", Value::int(1))]);
        assert_eq!(a, b);
    }

    #[test]
    fn record_projection() {
        let r = Value::record_of(vec![("sid", Value::int(1001)), ("grade", Value::str("A"))]);
        let rec = r.as_record().unwrap();
        assert_eq!(rec.get(Label::new("sid")), Some(&Value::int(1001)));
        assert_eq!(rec.get(Label::new("nope")), None);
    }

    #[test]
    fn duplicate_record_label_rejected() {
        let err = RecordValue::new(vec![
            (Label::new("d"), Value::int(1)),
            (Label::new("d"), Value::int(2)),
        ])
        .unwrap_err();
        assert_eq!(err, ModelError::DuplicateLabel(Label::new("d")));
    }

    #[test]
    fn typecheck_accepts_conforming_value() {
        let ty = Type::set_of_records(vec![
            Type::field("sid", Type::Base(BaseType::Int)),
            Type::field("grade", Type::Base(BaseType::String)),
        ])
        .unwrap();
        ty.validate(Strictness::Strict).unwrap();
        let v = Value::set([
            Value::record_of(vec![("sid", Value::int(1)), ("grade", Value::str("A"))]),
            Value::record_of(vec![("sid", Value::int(2)), ("grade", Value::str("B"))]),
        ]);
        v.typecheck(&ty).unwrap();
    }

    #[test]
    fn typecheck_rejects_wrong_base_type() {
        let ty = Type::Base(BaseType::Int);
        let err = Value::str("oops").typecheck(&ty).unwrap_err();
        assert!(matches!(err, ModelError::TypeMismatch { .. }));
    }

    #[test]
    fn typecheck_reports_nested_location() {
        let ty = Type::set_of_records(vec![Type::field("sid", Type::Base(BaseType::Int))]).unwrap();
        let v = Value::set([Value::record_of(vec![("sid", Value::str("bad"))])]);
        let err = v.typecheck(&ty).unwrap_err();
        match err {
            ModelError::TypeMismatch { at, .. } => assert_eq!(at, "[0]/sid"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn typecheck_missing_and_extra_fields() {
        let ty = Type::set_of_records(vec![
            Type::field("a", Type::Base(BaseType::Int)),
            Type::field("b", Type::Base(BaseType::Int)),
        ])
        .unwrap();
        let missing = Value::set([Value::record_of(vec![("a", Value::int(1))])]);
        assert!(matches!(
            missing.typecheck(&ty),
            Err(ModelError::MissingField(l)) if l == Label::new("b")
        ));
        let extra = Value::set([Value::record_of(vec![
            ("a", Value::int(1)),
            ("b", Value::int(2)),
            ("c", Value::int(3)),
        ])]);
        assert!(matches!(
            extra.typecheck(&ty),
            Err(ModelError::UnexpectedField(l)) if l == Label::new("c")
        ));
    }

    #[test]
    fn set_insert_and_contains() {
        let mut s = SetValue::empty();
        assert!(s.insert(Value::int(5)));
        assert!(!s.insert(Value::int(5)));
        assert!(s.insert(Value::int(3)));
        assert!(s.contains(&Value::int(5)));
        assert!(!s.contains(&Value::int(4)));
        assert_eq!(s.elems(), &[Value::int(3), Value::int(5)]);
    }

    #[test]
    fn disjointness() {
        let a: SetValue = [Value::int(1), Value::int(2)].into_iter().collect();
        let b: SetValue = [Value::int(3), Value::int(4)].into_iter().collect();
        let c: SetValue = [Value::int(2), Value::int(3)].into_iter().collect();
        assert!(a.is_disjoint(&b));
        assert!(!a.is_disjoint(&c));
        assert!(SetValue::empty().is_disjoint(&a));
    }

    #[test]
    fn display_forms() {
        let v = Value::record_of(vec![
            ("cnum", Value::str("cis550")),
            (
                "students",
                Value::set([Value::record_of(vec![("sid", Value::int(1))])]),
            ),
        ]);
        let s = v.to_string();
        assert!(s.contains("cnum: \"cis550\""));
        assert!(s.contains("students: {<sid: 1>}"));
    }

    #[test]
    fn base_count() {
        let v = Value::set([
            Value::record_of(vec![
                ("a", Value::int(1)),
                ("b", Value::set([Value::int(2)])),
            ]),
            Value::record_of(vec![("a", Value::int(3)), ("b", Value::empty_set())]),
        ]);
        assert_eq!(v.base_count(), 3);
    }
}
