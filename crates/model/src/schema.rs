//! Database schemas `(R, S)`.
//!
//! A schema is a finite set of relation names together with a mapping from
//! each name to a set-of-records type (Section 2 of the paper).

use crate::error::ModelError;
use crate::label::Label;
use crate::types::{Strictness, Type};
use std::fmt;

/// A database schema: relation names and their types.
///
/// Relations are kept in declaration order. Every relation type must be a
/// set of records at its outermost level and satisfy the structural
/// invariants of [`Type::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    relations: Vec<(Label, Type)>,
}

impl Schema {
    /// Builds a schema, validating every relation type under `strictness`.
    ///
    /// Checks performed:
    /// * each relation type is a set of records at the outermost level;
    /// * each type satisfies constructor alternation and label uniqueness;
    /// * relation names are pairwise distinct **and** distinct from every
    ///   attribute label (paths like `R:A` must parse unambiguously).
    pub fn new(
        relations: Vec<(Label, Type)>,
        strictness: Strictness,
    ) -> Result<Schema, ModelError> {
        let mut seen = std::collections::HashSet::new();
        for (name, ty) in &relations {
            if !seen.insert(*name) {
                return Err(ModelError::DuplicateLabel(*name));
            }
            if !ty.is_set_of_records() {
                return Err(ModelError::Malformed(format!(
                    "relation `{name}` must be a set of records at its outermost level, got `{ty}`"
                )));
            }
            ty.validate(strictness)?;
        }
        // Relation names must not collide with attribute labels.
        for (name, _) in &relations {
            for (_, ty) in &relations {
                if ty.all_labels().contains(name) {
                    return Err(ModelError::Malformed(format!(
                        "relation name `{name}` also occurs as an attribute label"
                    )));
                }
            }
        }
        Ok(Schema { relations })
    }

    /// Parses a schema from text, e.g.
    ///
    /// ```text
    /// Course : { <cnum: string, students: {<sid: int>}> };
    /// Dept   : { <name: string> };
    /// ```
    ///
    /// Validation uses [`Strictness::AllowBaseSets`] (Appendix A's regime);
    /// call [`Schema::new`] directly for the strict variant.
    pub fn parse(text: &str) -> Result<Schema, ModelError> {
        crate::parse::parse_schema(text)
    }

    /// The relations in declaration order.
    pub fn relations(&self) -> &[(Label, Type)] {
        &self.relations
    }

    /// Iterator over relation names.
    pub fn relation_names(&self) -> impl Iterator<Item = Label> + '_ {
        self.relations.iter().map(|(n, _)| *n)
    }

    /// The type `τ^R` of relation `name`.
    pub fn relation_type(&self, name: Label) -> Result<&Type, ModelError> {
        self.relations
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, t)| t)
            .ok_or(ModelError::UnknownRelation(name))
    }

    /// Does the schema define relation `name`?
    pub fn has_relation(&self, name: Label) -> bool {
        self.relations.iter().any(|(n, _)| *n == name)
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Is the schema empty?
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, ty) in &self.relations {
            writeln!(f, "{name} : {ty};")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::BaseType;

    fn course_schema() -> Schema {
        Schema::parse(
            "Course : { <cnum: string, time: int,
                         students: {<sid: int, age: int, grade: string>},
                         books: {<isbn: string, title: string>}> };",
        )
        .unwrap()
    }

    #[test]
    fn parse_and_lookup() {
        let s = course_schema();
        assert_eq!(s.len(), 1);
        let t = s.relation_type(Label::new("Course")).unwrap();
        assert!(t.is_set_of_records());
        assert!(s.has_relation(Label::new("Course")));
        assert!(!s.has_relation(Label::new("Dept")));
        assert!(matches!(
            s.relation_type(Label::new("Dept")),
            Err(ModelError::UnknownRelation(_))
        ));
    }

    #[test]
    fn non_set_of_records_relation_rejected() {
        let err = Schema::new(
            vec![(Label::new("R"), Type::Base(BaseType::Int))],
            Strictness::Strict,
        )
        .unwrap_err();
        assert!(err.to_string().contains("set of records"));
    }

    #[test]
    fn duplicate_relation_names_rejected() {
        let ty = Type::set_of_records(vec![Type::field("a", Type::Base(BaseType::Int))]).unwrap();
        let ty2 = Type::set_of_records(vec![Type::field("b", Type::Base(BaseType::Int))]).unwrap();
        let err = Schema::new(
            vec![(Label::new("R"), ty), (Label::new("R"), ty2)],
            Strictness::Strict,
        )
        .unwrap_err();
        assert_eq!(err, ModelError::DuplicateLabel(Label::new("R")));
    }

    #[test]
    fn relation_name_colliding_with_attribute_rejected() {
        let ty = Type::set_of_records(vec![Type::field("R", Type::Base(BaseType::Int))]).unwrap();
        let err = Schema::new(vec![(Label::new("R"), ty)], Strictness::Strict).unwrap_err();
        assert!(err.to_string().contains("also occurs as an attribute"));
    }

    #[test]
    fn display_roundtrips_through_parse() {
        let s = course_schema();
        let s2 = Schema::parse(&s.to_string()).unwrap();
        assert_eq!(s, s2);
    }

    #[test]
    fn multi_relation_schema() {
        let s = Schema::parse(
            "Course : { <cnum: string> };
             Dept : { <name: string, heads: {<hid: int>}> };",
        )
        .unwrap();
        assert_eq!(s.relation_names().count(), 2);
    }
}
