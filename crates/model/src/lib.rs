//! # nfd-model — the nested relational model
//!
//! This crate implements the data model of Section 2 of *"Reasoning about
//! Nested Functional Dependencies"* (Hara & Davidson, PODS 1999): types in
//! which set and tuple constructors alternate, values, database schemas
//! `(R, S)`, and database instances.
//!
//! The grammar of types is
//!
//! ```text
//! τ ::= b | {τ} | <A1:τ1, …, An:τn>
//! ```
//!
//! where `b` ranges over base types, `{τ}` is a set whose elements are
//! records (the *strict* model of the paper; sets of base values are also
//! accepted because the paper's Appendix A uses `{b}`), and record fields are
//! base- or set-typed. A schema maps each relation name to a set-of-records
//! type; an instance is a record assigning to each relation name a value of
//! its schema type.
//!
//! Besides the model itself, the crate provides:
//!
//! * [`parse`] — text parsers for types, values, schemas and instances, so
//!   that examples read like the paper;
//! * [`render`] — a nested ASCII-table renderer that reproduces the look of
//!   the paper's instance tables (Figure 1, Examples 3.2, A.1, A.2);
//! * [`gen`] — a seeded random instance generator used by the property-test
//!   and benchmark harnesses.
//!
//! ## Quick example
//!
//! ```
//! use nfd_model::{Schema, Instance};
//!
//! let schema = Schema::parse(
//!     "Course : { <cnum: string, time: int,
//!                  students: {<sid: int, grade: string>}> };",
//! ).unwrap();
//!
//! let inst = Instance::parse(&schema,
//!     r#"Course = { <cnum: "cis550", time: 10,
//!                    students: {<sid: 1001, grade: "A">,
//!                               <sid: 2002, grade: "B">}>,
//!                   <cnum: "cis500", time: 12,
//!                    students: {<sid: 1001, grade: "A">}> };"#,
//! ).unwrap();
//! assert_eq!(inst.relation_names().count(), 1);
//! ```

#![warn(missing_docs)]

pub mod algebra;
pub mod error;
pub mod gen;
pub mod instance;
pub mod label;
pub mod parse;
pub mod render;
pub mod schema;
pub mod types;
pub mod value;

pub use error::ModelError;
pub use instance::Instance;
pub use label::Label;
pub use parse::{MAX_INPUT_LEN, MAX_NESTING_DEPTH};
pub use schema::Schema;
pub use types::{BaseType, Field, RecordType, Type};
pub use value::{BaseValue, RecordValue, SetValue, Value};
