//! Database instances.
//!
//! An instance of a schema `(R, S)` is a record `I` with labels in `R` such
//! that `π_R I ∈ [[S(R)]]` for each relation `R` (Section 2).

use crate::error::ModelError;
use crate::label::Label;
use crate::schema::Schema;
use crate::value::{SetValue, Value};
use std::fmt;

/// A database instance: one set-of-records value per relation of a schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Instance {
    relations: Vec<(Label, Value)>,
}

impl Instance {
    /// Builds an instance and typechecks it against `schema`. Every relation
    /// of the schema must be assigned exactly once.
    pub fn new(schema: &Schema, relations: Vec<(Label, Value)>) -> Result<Instance, ModelError> {
        for (name, _) in &relations {
            if !schema.has_relation(*name) {
                return Err(ModelError::UnknownRelation(*name));
            }
        }
        for name in schema.relation_names() {
            let mut count = 0;
            for (n, _) in &relations {
                if *n == name {
                    count += 1;
                }
            }
            match count {
                0 => return Err(ModelError::MissingField(name)),
                1 => {}
                _ => return Err(ModelError::DuplicateLabel(name)),
            }
        }
        for (name, value) in &relations {
            value.typecheck(schema.relation_type(*name)?)?;
        }
        Ok(Instance { relations })
    }

    /// Parses an instance literal against `schema`, e.g.
    ///
    /// ```text
    /// Course = { <cnum: "cis550", time: 10, students: {<sid: 1001>}> };
    /// ```
    pub fn parse(schema: &Schema, text: &str) -> Result<Instance, ModelError> {
        crate::parse::parse_instance(schema, text)
    }

    /// The value of relation `name` (a set of records).
    pub fn relation(&self, name: Label) -> Result<&SetValue, ModelError> {
        self.relations
            .iter()
            .find(|(n, _)| *n == name)
            .and_then(|(_, v)| v.as_set())
            .ok_or(ModelError::UnknownRelation(name))
    }

    /// The raw value of relation `name`.
    pub fn relation_value(&self, name: Label) -> Result<&Value, ModelError> {
        self.relations
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v)
            .ok_or(ModelError::UnknownRelation(name))
    }

    /// Iterator over relation names.
    pub fn relation_names(&self) -> impl Iterator<Item = Label> + '_ {
        self.relations.iter().map(|(n, _)| *n)
    }

    /// All `(name, value)` pairs.
    pub fn relations(&self) -> &[(Label, Value)] {
        &self.relations
    }

    /// Does any set anywhere in the instance have zero elements?
    ///
    /// Theorem 3.1's axiomatization is sound and complete exactly for
    /// instances where this returns `false`; Section 3.2 studies the general
    /// case.
    pub fn contains_empty_set(&self) -> bool {
        self.relations.iter().any(|(_, v)| v.contains_empty_set())
    }

    /// Total number of base constants in the instance (a size measure).
    pub fn base_count(&self) -> usize {
        self.relations.iter().map(|(_, v)| v.base_count()).sum()
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in &self.relations {
            writeln!(f, "{name} = {value};")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn schema() -> Schema {
        Schema::parse(
            "Course : { <cnum: string, time: int,
                         students: {<sid: int, grade: string>}> };",
        )
        .unwrap()
    }

    /// The exact instance of Section 2 of the paper.
    fn paper_instance(s: &Schema) -> Instance {
        Instance::parse(
            s,
            r#"Course = { <cnum: "cis550", time: 10,
                           students: {<sid: 1001, grade: "A">,
                                      <sid: 2002, grade: "B">}>,
                          <cnum: "cis500", time: 12,
                           students: {<sid: 1001, grade: "A">}> };"#,
        )
        .unwrap()
    }

    #[test]
    fn paper_section2_instance_parses_and_validates() {
        let s = schema();
        let i = paper_instance(&s);
        let course = i.relation(Label::new("Course")).unwrap();
        assert_eq!(course.len(), 2);
        assert!(!i.contains_empty_set());
        assert_eq!(i.base_count(), 2 * 2 + 2 * 2 + 2); // 2 tuples × (cnum,time) + students
    }

    #[test]
    fn missing_relation_rejected() {
        let s = Schema::parse("A : {<x: int>}; B : {<y: int>};").unwrap();
        let err = Instance::new(&s, vec![(Label::new("A"), Value::set([]))]).unwrap_err();
        assert_eq!(err, ModelError::MissingField(Label::new("B")));
    }

    #[test]
    fn unknown_relation_rejected() {
        let s = schema();
        let err = Instance::new(&s, vec![(Label::new("Nope"), Value::set([]))]).unwrap_err();
        assert_eq!(err, ModelError::UnknownRelation(Label::new("Nope")));
    }

    #[test]
    fn ill_typed_relation_rejected() {
        let s = schema();
        let err = Instance::new(&s, vec![(Label::new("Course"), Value::int(3))]).unwrap_err();
        assert!(matches!(err, ModelError::TypeMismatch { .. }));
    }

    #[test]
    fn empty_set_detection() {
        let s = schema();
        let i = Instance::parse(&s, r#"Course = { <cnum: "c", time: 1, students: {}> };"#).unwrap();
        assert!(i.contains_empty_set());
        // An empty relation itself also counts as an empty set.
        let j = Instance::parse(&s, "Course = {};").unwrap();
        assert!(j.contains_empty_set());
    }

    #[test]
    fn display_roundtrips() {
        let s = schema();
        let i = paper_instance(&s);
        let j = Instance::parse(&s, &i.to_string()).unwrap();
        assert_eq!(i, j);
    }
}
