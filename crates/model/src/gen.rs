//! Seeded random instance generation.
//!
//! The property-test and benchmark harnesses need instances of arbitrary
//! nested schemas with controllable size, value-collision rate (small base
//! domains make dependencies both satisfiable and violable), and empty-set
//! frequency (to exercise the Section 3.2 semantics).

use crate::instance::Instance;
use crate::schema::Schema;
use crate::types::{BaseType, Type};
use crate::value::{RecordValue, SetValue, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for random value/instance generation.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Minimum cardinality of generated sets (ignored where `empty_prob`
    /// fires).
    pub min_set: usize,
    /// Maximum cardinality of generated sets.
    pub max_set: usize,
    /// Probability that any given set is generated empty. Keep at `0.0` to
    /// produce instances in Theorem 3.1's no-empty-sets regime.
    pub empty_prob: f64,
    /// Base values are drawn from `0..domain` (ints), `s0..s{domain-1}`
    /// (strings). Small domains create collisions, which is what makes
    /// dependency checking interesting.
    pub domain: u32,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            min_set: 1,
            max_set: 3,
            empty_prob: 0.0,
            domain: 4,
        }
    }
}

/// A deterministic instance generator.
pub struct Generator {
    rng: StdRng,
    cfg: GenConfig,
}

impl Generator {
    /// Creates a generator with the given seed and configuration.
    pub fn new(seed: u64, cfg: GenConfig) -> Generator {
        Generator {
            rng: StdRng::seed_from_u64(seed),
            cfg,
        }
    }

    /// Generates a random value of type `ty`.
    pub fn value(&mut self, ty: &Type) -> Value {
        match ty {
            Type::Base(b) => self.base(*b),
            Type::Set(elem) => {
                let n = if self.cfg.empty_prob > 0.0 && self.rng.gen_bool(self.cfg.empty_prob) {
                    0
                } else {
                    self.rng
                        .gen_range(self.cfg.min_set..=self.cfg.max_set.max(self.cfg.min_set))
                };
                let mut s = SetValue::empty();
                for _ in 0..n {
                    s.insert(self.value(elem));
                }
                Value::Set(s)
            }
            Type::Record(rec) => {
                let fields = rec
                    .fields()
                    .iter()
                    .map(|f| (f.label, self.value(&f.ty)))
                    .collect();
                Value::Record(RecordValue::new(fields).expect("type labels are unique"))
            }
        }
    }

    fn base(&mut self, b: BaseType) -> Value {
        let k = self.rng.gen_range(0..self.cfg.domain.max(1));
        match b {
            BaseType::Int => Value::int(i64::from(k)),
            BaseType::String => Value::str(format!("s{k}")),
            BaseType::Bool => Value::bool(k % 2 == 0),
        }
    }

    /// Generates a full instance of `schema`.
    pub fn instance(&mut self, schema: &Schema) -> Instance {
        let relations = schema
            .relations()
            .iter()
            .map(|(name, ty)| (*name, self.value(ty)))
            .collect();
        Instance::new(schema, relations).expect("generated values conform by construction")
    }

    /// Generates an instance guaranteed to contain no empty set, regardless
    /// of `empty_prob` (used for Theorem 3.1 tests).
    pub fn instance_no_empty(&mut self, schema: &Schema) -> Instance {
        let saved = self.cfg.empty_prob;
        self.cfg.empty_prob = 0.0;
        if self.cfg.min_set == 0 {
            self.cfg.min_set = 1;
        }
        let i = self.instance(schema);
        self.cfg.empty_prob = saved;
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::parse("R : { <A: int, B: {<C: int, D: string>}, E: {<F: bool>}> };").unwrap()
    }

    #[test]
    fn generated_instances_typecheck() {
        let s = schema();
        let mut g = Generator::new(7, GenConfig::default());
        for _ in 0..20 {
            let i = g.instance(&s);
            // Instance::new typechecks internally; also sanity-check shape.
            assert!(i.relation(crate::label::Label::new("R")).is_ok());
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let s = schema();
        let a = Generator::new(42, GenConfig::default()).instance(&s);
        let b = Generator::new(42, GenConfig::default()).instance(&s);
        let c = Generator::new(43, GenConfig::default()).instance(&s);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should (almost surely) differ");
    }

    #[test]
    fn no_empty_regime_has_no_empty_sets() {
        let s = schema();
        let mut g = Generator::new(
            1,
            GenConfig {
                empty_prob: 0.9,
                min_set: 0,
                ..GenConfig::default()
            },
        );
        for _ in 0..10 {
            assert!(!g.instance_no_empty(&s).contains_empty_set());
        }
    }

    #[test]
    fn empty_prob_produces_empty_sets() {
        let s = schema();
        let mut g = Generator::new(
            5,
            GenConfig {
                empty_prob: 0.8,
                ..GenConfig::default()
            },
        );
        let any_empty = (0..20).any(|_| g.instance(&s).contains_empty_set());
        assert!(any_empty);
    }

    #[test]
    fn domain_bounds_values() {
        let s = Schema::parse("R : {<A: int>};").unwrap();
        let mut g = Generator::new(
            9,
            GenConfig {
                domain: 2,
                max_set: 8,
                ..GenConfig::default()
            },
        );
        let i = g.instance(&s);
        for e in i.relation(crate::label::Label::new("R")).unwrap().elems() {
            let v = e
                .as_record()
                .unwrap()
                .get(crate::label::Label::new("A"))
                .unwrap();
            match v {
                Value::Base(crate::value::BaseValue::Int(n)) => assert!((0..2).contains(n)),
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
