//! Text parsers for types, values, schemas and instances.
//!
//! The concrete syntax mirrors the paper:
//!
//! ```text
//! type     ::= "int" | "string" | "bool" | "{" type "}" | "<" fields ">"
//! fields   ::= [ ident ":" type { "," ident ":" type } ]
//! schema   ::= { ident ":" type ";" }
//! value    ::= int | string | "true" | "false"
//!            | "{" [ value { "," value } ] "}"
//!            | "<" [ ident ":" value { "," ident ":" value } ] ">"
//! instance ::= { ident "=" value ";" }
//! ```
//!
//! All parsers report 1-based line/column positions on error.

use crate::error::ModelError;
use crate::instance::Instance;
use crate::label::Label;
use crate::schema::Schema;
use crate::types::{BaseType, RecordType, Strictness, Type};
use crate::value::{RecordValue, Value};
use nfd_faults::fail_point;

/// A lexical token with its position.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct Token {
    kind: TokenKind,
    line: u32,
    col: u32,
}

#[derive(Clone, Debug, PartialEq)]
pub(crate) enum TokenKind {
    Ident(String),
    Int(i64),
    Str(String),
    LBrace,
    RBrace,
    LAngle,
    RAngle,
    Colon,
    Comma,
    Semi,
    Eq,
    /// `->` (used by the NFD parser in `nfd-core`, which reuses this lexer).
    Arrow,
    LBracket,
    RBracket,
    Eof,
}

impl TokenKind {
    fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(i) => format!("integer `{i}`"),
            TokenKind::Str(s) => format!("string {s:?}"),
            TokenKind::LBrace => "`{`".into(),
            TokenKind::RBrace => "`}`".into(),
            TokenKind::LAngle => "`<`".into(),
            TokenKind::RAngle => "`>`".into(),
            TokenKind::Colon => "`:`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Semi => "`;`".into(),
            TokenKind::Eq => "`=`".into(),
            TokenKind::Arrow => "`->`".into(),
            TokenKind::LBracket => "`[`".into(),
            TokenKind::RBracket => "`]`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// Hard ceiling on parser input size (bytes). Inputs past this are
/// rejected up front instead of being tokenized into an enormous buffer.
pub const MAX_INPUT_LEN: usize = 8 * 1024 * 1024;

/// Hard ceiling on `{`/`<` nesting depth in types and values. The
/// recursive-descent parser recurses once per level, so unbounded depth
/// would overflow the stack; 128 is far deeper than any real schema.
pub const MAX_NESTING_DEPTH: usize = 128;

/// Tokenizes `text`. Shared by the model parsers and (through
/// `Lexer::tokenize`) by the NFD parser in `nfd-core`.
pub struct Lexer;

impl Lexer {
    /// Produces the token stream for `text` (ending with `Eof`).
    pub(crate) fn tokenize(text: &str) -> Result<Vec<Token>, ModelError> {
        fail_point!(
            "model::parse_input",
            Err(ModelError::Limit {
                what: "input size (bytes; injected fault)",
                limit: 0,
            })
        );
        if text.len() > MAX_INPUT_LEN {
            return Err(ModelError::Limit {
                what: "input size (bytes)",
                limit: MAX_INPUT_LEN,
            });
        }
        let mut tokens = Vec::new();
        let mut line: u32 = 1;
        let mut col: u32 = 1;
        let mut chars = text.chars().peekable();
        macro_rules! bump {
            () => {{
                let c = chars.next();
                if c == Some('\n') {
                    line += 1;
                    col = 1;
                } else if c.is_some() {
                    col += 1;
                }
                c
            }};
        }
        loop {
            let (tl, tc) = (line, col);
            let Some(&c) = chars.peek() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    line: tl,
                    col: tc,
                });
                return Ok(tokens);
            };
            let kind = match c {
                ' ' | '\t' | '\r' | '\n' => {
                    bump!();
                    continue;
                }
                '#' => {
                    // Line comment.
                    while let Some(&c) = chars.peek() {
                        if c == '\n' {
                            break;
                        }
                        bump!();
                    }
                    continue;
                }
                '{' => {
                    bump!();
                    TokenKind::LBrace
                }
                '}' => {
                    bump!();
                    TokenKind::RBrace
                }
                '<' => {
                    bump!();
                    TokenKind::LAngle
                }
                '>' => {
                    bump!();
                    TokenKind::RAngle
                }
                ':' => {
                    bump!();
                    TokenKind::Colon
                }
                ',' => {
                    bump!();
                    TokenKind::Comma
                }
                ';' => {
                    bump!();
                    TokenKind::Semi
                }
                '=' => {
                    bump!();
                    TokenKind::Eq
                }
                '[' => {
                    bump!();
                    TokenKind::LBracket
                }
                ']' => {
                    bump!();
                    TokenKind::RBracket
                }
                '-' => {
                    bump!();
                    match chars.peek() {
                        Some('>') => {
                            bump!();
                            TokenKind::Arrow
                        }
                        Some(c) if c.is_ascii_digit() => {
                            let n = lex_int(&mut chars, &mut line, &mut col)?;
                            TokenKind::Int(-n)
                        }
                        _ => {
                            return Err(ModelError::Parse {
                                msg: "expected `>` or digits after `-`".into(),
                                line: tl,
                                col: tc,
                            })
                        }
                    }
                }
                '"' => {
                    bump!();
                    let mut s = String::new();
                    loop {
                        match bump!() {
                            Some('"') => break,
                            Some('\\') => match bump!() {
                                Some('"') => s.push('"'),
                                Some('\\') => s.push('\\'),
                                Some('n') => s.push('\n'),
                                Some('t') => s.push('\t'),
                                other => {
                                    return Err(ModelError::Parse {
                                        msg: format!("invalid escape `\\{}`", other.unwrap_or(' ')),
                                        line,
                                        col,
                                    })
                                }
                            },
                            Some(ch) => s.push(ch),
                            None => {
                                return Err(ModelError::Parse {
                                    msg: "unterminated string literal".into(),
                                    line: tl,
                                    col: tc,
                                })
                            }
                        }
                    }
                    TokenKind::Str(s)
                }
                c if c.is_ascii_digit() => {
                    let n = lex_int(&mut chars, &mut line, &mut col)?;
                    TokenKind::Int(n)
                }
                c if c.is_alphabetic() || c == '_' => {
                    let mut s = String::new();
                    while let Some(&c) = chars.peek() {
                        if c.is_alphanumeric() || c == '_' {
                            s.push(c);
                            bump!();
                        } else {
                            break;
                        }
                    }
                    TokenKind::Ident(s)
                }
                other => {
                    return Err(ModelError::Parse {
                        msg: format!("unexpected character `{other}`"),
                        line: tl,
                        col: tc,
                    })
                }
            };
            tokens.push(Token {
                kind,
                line: tl,
                col: tc,
            });
        }
    }
}

fn lex_int(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    line: &mut u32,
    col: &mut u32,
) -> Result<i64, ModelError> {
    let mut n: i64 = 0;
    while let Some(&c) = chars.peek() {
        if let Some(d) = c.to_digit(10) {
            n = n
                .checked_mul(10)
                .and_then(|n| n.checked_add(i64::from(d)))
                .ok_or(ModelError::Parse {
                    msg: "integer literal overflows i64".into(),
                    line: *line,
                    col: *col,
                })?;
            chars.next();
            *col += 1;
        } else {
            break;
        }
    }
    Ok(n)
}

/// A cursor over the token stream; recursive-descent helpers.
pub(crate) struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl Parser {
    pub(crate) fn new(text: &str) -> Result<Parser, ModelError> {
        Ok(Parser {
            tokens: Lexer::tokenize(text)?,
            pos: 0,
            depth: 0,
        })
    }

    /// Charges one level of `{`/`<` nesting; errs past
    /// [`MAX_NESTING_DEPTH`]. Callers must pair with `self.depth -= 1`.
    fn descend(&mut self) -> Result<(), ModelError> {
        fail_point!(
            "model::parse_depth",
            Err(ModelError::Limit {
                what: "nesting depth (injected fault)",
                limit: 0,
            })
        );
        self.depth += 1;
        if self.depth > MAX_NESTING_DEPTH {
            return Err(ModelError::Limit {
                what: "nesting depth",
                limit: MAX_NESTING_DEPTH,
            });
        }
        Ok(())
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error_at(&self, msg: String) -> ModelError {
        let t = self.peek();
        ModelError::Parse {
            msg,
            line: t.line,
            col: t.col,
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), ModelError> {
        if self.peek().kind == kind {
            self.advance();
            Ok(())
        } else {
            Err(self.error_at(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().kind.describe()
            )))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ModelError> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.advance();
                Ok(s)
            }
            other => Err(self.error_at(format!("expected identifier, found {}", other.describe()))),
        }
    }

    fn at_eof(&self) -> bool {
        self.peek().kind == TokenKind::Eof
    }

    /// type ::= base | "{" type "}" | "<" fields ">"
    fn ty(&mut self) -> Result<Type, ModelError> {
        match &self.peek().kind {
            TokenKind::LBrace => {
                self.descend()?;
                self.advance();
                let elem = self.ty()?;
                self.expect(TokenKind::RBrace)?;
                self.depth -= 1;
                Ok(Type::Set(Box::new(elem)))
            }
            TokenKind::LAngle => {
                self.descend()?;
                self.advance();
                let mut fields = Vec::new();
                if !self.eat(&TokenKind::RAngle) {
                    loop {
                        let name = self.ident()?;
                        self.expect(TokenKind::Colon)?;
                        let fty = self.ty()?;
                        fields.push(Type::field(name.as_str(), fty));
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(TokenKind::RAngle)?;
                }
                self.depth -= 1;
                Ok(Type::Record(RecordType::new(fields)?))
            }
            TokenKind::Ident(s) => {
                let base = match s.as_str() {
                    "int" => BaseType::Int,
                    "string" => BaseType::String,
                    "bool" => BaseType::Bool,
                    other => {
                        return Err(self.error_at(format!(
                            "unknown base type `{other}` (expected int, string or bool)"
                        )))
                    }
                };
                self.advance();
                Ok(Type::Base(base))
            }
            other => Err(self.error_at(format!("expected a type, found {}", other.describe()))),
        }
    }

    /// value ::= int | string | bool | "{" … "}" | "<" … ">"
    fn value(&mut self) -> Result<Value, ModelError> {
        match self.peek().kind.clone() {
            TokenKind::Int(i) => {
                self.advance();
                Ok(Value::int(i))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Value::str(s))
            }
            TokenKind::Ident(s) if s == "true" => {
                self.advance();
                Ok(Value::bool(true))
            }
            TokenKind::Ident(s) if s == "false" => {
                self.advance();
                Ok(Value::bool(false))
            }
            TokenKind::LBrace => {
                self.descend()?;
                self.advance();
                let mut elems = Vec::new();
                if !self.eat(&TokenKind::RBrace) {
                    loop {
                        elems.push(self.value()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(TokenKind::RBrace)?;
                }
                self.depth -= 1;
                Ok(Value::set(elems))
            }
            TokenKind::LAngle => {
                self.descend()?;
                self.advance();
                let mut fields = Vec::new();
                if !self.eat(&TokenKind::RAngle) {
                    loop {
                        let name = self.ident()?;
                        self.expect(TokenKind::Colon)?;
                        let v = self.value()?;
                        fields.push((Label::new(&name), v));
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(TokenKind::RAngle)?;
                }
                self.depth -= 1;
                Ok(Value::Record(RecordValue::new(fields)?))
            }
            other => Err(self.error_at(format!("expected a value, found {}", other.describe()))),
        }
    }
}

/// Parses a schema (see module docs for the grammar).
pub fn parse_schema(text: &str) -> Result<Schema, ModelError> {
    let mut p = Parser::new(text)?;
    let mut relations = Vec::new();
    while !p.at_eof() {
        let name = p.ident()?;
        p.expect(TokenKind::Colon)?;
        let ty = p.ty()?;
        p.expect(TokenKind::Semi)?;
        relations.push((Label::new(&name), ty));
    }
    Schema::new(relations, Strictness::AllowBaseSets)
}

/// Parses a bare type.
pub fn parse_type(text: &str) -> Result<Type, ModelError> {
    let mut p = Parser::new(text)?;
    let t = p.ty()?;
    if !p.at_eof() {
        return Err(p.error_at("trailing input after type".into()));
    }
    Ok(t)
}

/// Parses a bare value.
pub fn parse_value(text: &str) -> Result<Value, ModelError> {
    let mut p = Parser::new(text)?;
    let v = p.value()?;
    if !p.at_eof() {
        return Err(p.error_at("trailing input after value".into()));
    }
    Ok(v)
}

/// Parses an instance literal and typechecks it against `schema`.
pub fn parse_instance(schema: &Schema, text: &str) -> Result<Instance, ModelError> {
    let mut p = Parser::new(text)?;
    let mut relations = Vec::new();
    while !p.at_eof() {
        let name = p.ident()?;
        p.expect(TokenKind::Eq)?;
        let v = p.value()?;
        p.expect(TokenKind::Semi)?;
        relations.push((Label::new(&name), v));
    }
    Instance::new(schema, relations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_base_types() {
        assert_eq!(parse_type("int").unwrap(), Type::Base(BaseType::Int));
        assert_eq!(parse_type("string").unwrap(), Type::Base(BaseType::String));
        assert_eq!(parse_type("bool").unwrap(), Type::Base(BaseType::Bool));
        assert!(parse_type("float").is_err());
    }

    #[test]
    fn parse_nested_type() {
        let t = parse_type("{<a: int, b: {<c: string>}>}").unwrap();
        assert!(t.is_set_of_records());
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn parse_value_forms() {
        assert_eq!(parse_value("42").unwrap(), Value::int(42));
        assert_eq!(parse_value("-7").unwrap(), Value::int(-7));
        assert_eq!(parse_value(r#""hi""#).unwrap(), Value::str("hi"));
        assert_eq!(parse_value("true").unwrap(), Value::bool(true));
        assert_eq!(parse_value("{}").unwrap(), Value::empty_set());
        assert_eq!(
            parse_value("{1, 2, 2}").unwrap(),
            Value::set([Value::int(1), Value::int(2)])
        );
        assert_eq!(
            parse_value("<a: 1, b: {<c: 2>}>").unwrap(),
            Value::record_of(vec![
                ("a", Value::int(1)),
                (
                    "b",
                    Value::set([Value::record_of(vec![("c", Value::int(2))])])
                ),
            ])
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            parse_value(r#""a\"b\\c\nd""#).unwrap(),
            Value::str("a\"b\\c\nd")
        );
        assert!(parse_value(r#""unterminated"#).is_err());
        assert!(parse_value(r#""bad\q""#).is_err());
    }

    #[test]
    fn comments_and_whitespace() {
        let t = parse_type("{ # relation type\n  <a: int> }").unwrap();
        assert!(t.is_set_of_records());
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_type("{<a: int,\n   b int>}").unwrap_err();
        match err {
            ModelError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn trailing_input_rejected() {
        assert!(parse_value("1 2").is_err());
        assert!(parse_type("int int").is_err());
    }

    #[test]
    fn integer_overflow_detected() {
        assert!(parse_value("99999999999999999999999").is_err());
    }

    #[test]
    fn deep_nesting_rejected_without_stack_overflow() {
        // Types: {{{…int…}}} nested past the limit.
        let deep_ty = format!(
            "{}int{}",
            "{".repeat(MAX_NESTING_DEPTH + 10),
            "}".repeat(MAX_NESTING_DEPTH + 10)
        );
        assert!(matches!(
            parse_type(&deep_ty),
            Err(ModelError::Limit { what, .. }) if what == "nesting depth"
        ));
        // Values: {{{…}}} likewise.
        let deep_val = format!(
            "{}1{}",
            "{".repeat(MAX_NESTING_DEPTH + 10),
            "}".repeat(MAX_NESTING_DEPTH + 10)
        );
        assert!(matches!(
            parse_value(&deep_val),
            Err(ModelError::Limit { what, .. }) if what == "nesting depth"
        ));
        // Even unbalanced deep opens must not recurse unboundedly.
        let open_only = "<a: ".repeat(100_000);
        assert!(parse_value(&open_only).is_err());
    }

    #[test]
    fn nesting_at_the_limit_is_accepted() {
        let ok = format!(
            "{}int{}",
            "{".repeat(MAX_NESTING_DEPTH),
            "}".repeat(MAX_NESTING_DEPTH)
        );
        assert!(parse_type(&ok).is_ok());
    }

    #[test]
    fn sibling_nesting_does_not_accumulate_depth() {
        // Depth must be released when a nested term closes: many shallow
        // siblings are fine even if their total bracket count is huge.
        let elems = vec!["{1}"; MAX_NESTING_DEPTH * 4].join(", ");
        assert!(parse_value(&format!("{{{elems}}}")).is_ok());
    }

    #[test]
    fn oversized_input_rejected() {
        let huge = "x".repeat(MAX_INPUT_LEN + 1);
        assert!(matches!(
            parse_value(&huge),
            Err(ModelError::Limit { what, .. }) if what == "input size (bytes)"
        ));
    }

    #[test]
    fn empty_record_value() {
        assert_eq!(
            parse_value("<>").unwrap(),
            Value::Record(RecordValue::new(vec![]).unwrap())
        );
    }
}
