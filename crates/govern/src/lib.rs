//! Resource governance for the decision procedures.
//!
//! Every decider in this workspace — the saturation engine, the nested
//! tableau chase, and the Appendix A construction plus Section 2.2 formula
//! evaluation — is worst-case exponential. A production service cannot let
//! an adversarial schema pin a core or blow memory, so each hot loop
//! checks a [`Budget`] cooperatively and reports exhaustion as data rather
//! than panicking or running away:
//!
//! * counter limits (pool entries, chase steps, chase nulls, assignment
//!   enumerations, key candidates) bound the memory- and time-dominating
//!   quantities of each procedure;
//! * a wall-clock deadline and a shared [`CancelToken`] bound latency; the
//!   loops poll them every few thousand iterations, so cancellation is
//!   prompt without a per-iteration clock read;
//! * an exceeded limit surfaces as a [`ResourceReport`] inside the
//!   procedure's error type, and query answers become a three-valued
//!   [`Verdict`] — `Exhausted` is an honest "ran out of resources", never
//!   a wrong `Implied`/`NotImplied`.
//!
//! This crate is dependency-free so every layer (model, logic, core,
//! chase, the facade) can share the same vocabulary.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared, thread-safe cancellation flag.
///
/// Clones observe the same flag; any holder may [`CancelToken::cancel`]
/// and every budgeted loop polling [`Budget::check_live`] stops promptly.
///
/// Tokens form a tree: [`CancelToken::child`] derives a token that also
/// observes its parent's cancellation but can be cancelled independently
/// without touching the parent. The parallel batch executor uses this to
/// give a worker pool its own stop signal layered over the caller's.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<CancelFlag>);

#[derive(Debug, Default)]
struct CancelFlag {
    flag: AtomicBool,
    parent: Option<CancelToken>,
}

impl CancelToken {
    /// A fresh, un-cancelled token with no parent.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that is cancelled when either it or `self` is cancelled.
    /// Cancelling the child never affects the parent.
    pub fn child(&self) -> CancelToken {
        CancelToken(Arc::new(CancelFlag {
            flag: AtomicBool::new(false),
            parent: Some(self.clone()),
        }))
    }

    /// Requests cancellation; all clones (and children) observe it.
    pub fn cancel(&self) {
        self.0.flag.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested, here or on an ancestor?
    pub fn is_cancelled(&self) -> bool {
        let mut cur = self;
        loop {
            if cur.0.flag.load(Ordering::Relaxed) {
                return true;
            }
            match &cur.0.parent {
                Some(parent) => cur = parent,
                None => return false,
            }
        }
    }
}

/// Which resource a budget check found exhausted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// Saturation pool entries per relation (`Engine` memory).
    PoolDeps,
    /// Chase unification steps (`tableau` time).
    ChaseSteps,
    /// Nulls allocated by tableau templates (`tableau` memory).
    ChaseNulls,
    /// Assignment enumerations — quantifier instantiations in
    /// `logic::eval` and trie-assignment scans in the chase and the
    /// satisfaction checker.
    Assignments,
    /// Candidate subsets enumerated by the key search.
    KeyCandidates,
    /// Wall-clock deadline.
    Deadline,
    /// Explicit cancellation via a [`CancelToken`].
    Cancelled,
}

impl ResourceKind {
    /// Short human noun for reports.
    pub fn noun(self) -> &'static str {
        match self {
            ResourceKind::PoolDeps => "saturation pool entries",
            ResourceKind::ChaseSteps => "chase steps",
            ResourceKind::ChaseNulls => "chase nulls",
            ResourceKind::Assignments => "assignment enumerations",
            ResourceKind::KeyCandidates => "key candidates",
            ResourceKind::Deadline => "wall-clock deadline",
            ResourceKind::Cancelled => "cancellation",
        }
    }
}

/// What ran out: the exhausted resource, its limit, and how much was used
/// when the loop gave up. Attached to `Exhausted` verdicts and errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResourceReport {
    /// The exhausted resource.
    pub kind: ResourceKind,
    /// The configured limit (0 for deadline/cancellation, where no
    /// counter applies).
    pub limit: u64,
    /// Usage at the moment the limit was hit.
    pub used: u64,
}

impl ResourceReport {
    /// A report for a counter limit.
    pub fn counter(kind: ResourceKind, limit: u64, used: u64) -> ResourceReport {
        ResourceReport { kind, limit, used }
    }
}

impl fmt::Display for ResourceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ResourceKind::Deadline => f.write_str("wall-clock deadline exceeded"),
            ResourceKind::Cancelled => f.write_str("cancelled by caller"),
            kind => write!(f, "{} limit of {} reached", kind.noun(), self.limit),
        }
    }
}

/// Cooperative resource limits for one query or engine build.
///
/// Counters are `u64::MAX` when unlimited. [`Budget::standard`] matches
/// the legacy hard-wired limits (100 000 pool entries, 100 000 chase
/// steps) with everything else unbounded; [`Budget::limited`] caps every
/// counter at `n` for graceful degradation under pressure.
#[derive(Clone, Debug)]
pub struct Budget {
    /// Max saturation pool entries per relation.
    pub max_pool_deps: u64,
    /// Max chase unification steps per run.
    pub max_chase_steps: u64,
    /// Max nulls allocated by tableau templates per run.
    pub max_chase_nulls: u64,
    /// Max assignment enumerations per evaluation/scan.
    pub max_assignments: u64,
    /// Max candidate subsets enumerated by the key search.
    pub max_key_candidates: u64,
    deadline: Option<Instant>,
    cancel: CancelToken,
}

impl Budget {
    /// No limits at all (counters at `u64::MAX`, no deadline).
    pub fn unlimited() -> Budget {
        Budget {
            max_pool_deps: u64::MAX,
            max_chase_steps: u64::MAX,
            max_chase_nulls: u64::MAX,
            max_assignments: u64::MAX,
            max_key_candidates: u64::MAX,
            deadline: None,
            cancel: CancelToken::new(),
        }
    }

    /// The default limits historically hard-wired into the engine and the
    /// chase: 100 000 pool entries per relation, 100 000 chase steps,
    /// everything else unbounded.
    pub fn standard() -> Budget {
        Budget {
            max_pool_deps: 100_000,
            max_chase_steps: 100_000,
            ..Budget::unlimited()
        }
    }

    /// Every counter capped at `n` — the "tiny budget" shape used for
    /// graceful degradation tests and the CLI `--budget` flag.
    pub fn limited(n: u64) -> Budget {
        Budget {
            max_pool_deps: n,
            max_chase_steps: n,
            max_chase_nulls: n,
            max_assignments: n,
            max_key_candidates: n,
            ..Budget::unlimited()
        }
    }

    /// Adds a wall-clock deadline `d` from now.
    pub fn with_timeout(mut self, d: Duration) -> Budget {
        self.deadline = Some(Instant::now() + d);
        self
    }

    /// Adds a wall-clock deadline `ms` milliseconds from now.
    pub fn with_timeout_ms(self, ms: u64) -> Budget {
        self.with_timeout(Duration::from_millis(ms))
    }

    /// Attaches an externally controlled cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Budget {
        self.cancel = token;
        self
    }

    /// The attached cancellation token (clone it to cancel from another
    /// thread).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// The absolute deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Polls the liveness conditions: cancellation first (cheap atomic
    /// load), then the deadline (clock read). Hot loops call this every
    /// few thousand iterations.
    pub fn check_live(&self) -> Result<(), ResourceReport> {
        if self.cancel.is_cancelled() {
            return Err(ResourceReport::counter(ResourceKind::Cancelled, 0, 0));
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(ResourceReport::counter(ResourceKind::Deadline, 0, 0));
            }
        }
        Ok(())
    }

    /// The limit configured for a counter kind (`u64::MAX` for the
    /// non-counter kinds).
    pub fn limit(&self, kind: ResourceKind) -> u64 {
        match kind {
            ResourceKind::PoolDeps => self.max_pool_deps,
            ResourceKind::ChaseSteps => self.max_chase_steps,
            ResourceKind::ChaseNulls => self.max_chase_nulls,
            ResourceKind::Assignments => self.max_assignments,
            ResourceKind::KeyCandidates => self.max_key_candidates,
            ResourceKind::Deadline | ResourceKind::Cancelled => u64::MAX,
        }
    }

    /// Checks a counter against its limit: `Err` when `used` exceeds the
    /// configured maximum. Callers pass the would-be count, so a limit of
    /// `n` admits exactly `n` units.
    pub fn check_counter(&self, kind: ResourceKind, used: u64) -> Result<(), ResourceReport> {
        let limit = self.limit(kind);
        if used > limit {
            Err(ResourceReport::counter(kind, limit, used))
        } else {
            Ok(())
        }
    }
}

impl Default for Budget {
    fn default() -> Budget {
        Budget::standard()
    }
}

/// A three-valued query answer: the classical verdict, or an honest
/// admission that resources ran out before one was reached.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// `Σ ⊨ σ` was established.
    Implied,
    /// A counterexample regime exists: `Σ ⊭ σ`.
    NotImplied,
    /// No decider reached an answer within the budget; the report says
    /// what ran out first.
    Exhausted(ResourceReport),
}

impl Verdict {
    /// Wraps a classical boolean verdict.
    pub fn from_bool(implied: bool) -> Verdict {
        if implied {
            Verdict::Implied
        } else {
            Verdict::NotImplied
        }
    }

    /// The classical verdict, if one was reached.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Verdict::Implied => Some(true),
            Verdict::NotImplied => Some(false),
            Verdict::Exhausted(_) => None,
        }
    }

    /// Did the query run out of resources?
    pub fn is_exhausted(&self) -> bool {
        matches!(self, Verdict::Exhausted(_))
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Implied => f.write_str("implied"),
            Verdict::NotImplied => f.write_str("not implied"),
            Verdict::Exhausted(r) => write!(f, "exhausted: {r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_shared() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!clone.is_cancelled());
        t.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn child_tokens_observe_parent_but_not_vice_versa() {
        let parent = CancelToken::new();
        let child = parent.child();
        let grandchild = child.child();
        assert!(!child.is_cancelled());

        // Cancelling a child leaves the parent (and siblings) alone.
        child.cancel();
        assert!(child.is_cancelled());
        assert!(grandchild.is_cancelled());
        assert!(!parent.is_cancelled());
        assert!(!parent.child().is_cancelled());

        // Cancelling the parent reaches every descendant.
        let other = parent.child();
        parent.cancel();
        assert!(other.is_cancelled());
        assert!(parent.is_cancelled());
    }

    #[test]
    fn standard_matches_legacy_limits() {
        let b = Budget::standard();
        assert_eq!(b.max_pool_deps, 100_000);
        assert_eq!(b.max_chase_steps, 100_000);
        assert_eq!(b.max_assignments, u64::MAX);
        assert!(b.check_live().is_ok());
    }

    #[test]
    fn counter_limits_admit_exactly_n() {
        let b = Budget::limited(3);
        assert!(b.check_counter(ResourceKind::ChaseSteps, 3).is_ok());
        let err = b.check_counter(ResourceKind::ChaseSteps, 4).unwrap_err();
        assert_eq!(err.kind, ResourceKind::ChaseSteps);
        assert_eq!(err.limit, 3);
        assert!(err.to_string().contains("chase steps"));
    }

    #[test]
    fn deadline_and_cancellation_trip_check_live() {
        let b = Budget::unlimited().with_timeout(Duration::from_secs(0));
        assert_eq!(
            b.check_live().unwrap_err().kind,
            ResourceKind::Deadline,
            "zero deadline is already past"
        );
        let token = CancelToken::new();
        let b = Budget::unlimited().with_cancel(token.clone());
        assert!(b.check_live().is_ok());
        token.cancel();
        assert_eq!(b.check_live().unwrap_err().kind, ResourceKind::Cancelled);
    }

    #[test]
    fn verdict_roundtrip() {
        assert_eq!(Verdict::from_bool(true), Verdict::Implied);
        assert_eq!(Verdict::from_bool(false).as_bool(), Some(false));
        let ex = Verdict::Exhausted(ResourceReport::counter(ResourceKind::PoolDeps, 5, 6));
        assert!(ex.is_exhausted());
        assert!(ex.as_bool().is_none());
        assert!(ex.to_string().contains("exhausted"));
    }
}
