//! Resource governance for the decision procedures.
//!
//! Every decider in this workspace — the saturation engine, the nested
//! tableau chase, and the Appendix A construction plus Section 2.2 formula
//! evaluation — is worst-case exponential. A production service cannot let
//! an adversarial schema pin a core or blow memory, so each hot loop
//! checks a [`Budget`] cooperatively and reports exhaustion as data rather
//! than panicking or running away:
//!
//! * counter limits (pool entries, chase steps, chase nulls, assignment
//!   enumerations, key candidates) bound the memory- and time-dominating
//!   quantities of each procedure;
//! * a wall-clock deadline and a shared [`CancelToken`] bound latency; the
//!   loops poll them every few thousand iterations, so cancellation is
//!   prompt without a per-iteration clock read;
//! * an exceeded limit surfaces as a [`ResourceReport`] inside the
//!   procedure's error type, and query answers become a three-valued
//!   [`Verdict`] — `Exhausted` is an honest "ran out of resources", never
//!   a wrong `Implied`/`NotImplied`.
//!
//! This crate is dependency-free so every layer (model, logic, core,
//! chase, the facade) can share the same vocabulary.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared, thread-safe cancellation flag.
///
/// Clones observe the same flag; any holder may [`CancelToken::cancel`]
/// and every budgeted loop polling [`Budget::check_live`] stops promptly.
///
/// Tokens form a tree: [`CancelToken::child`] derives a token that also
/// observes its parent's cancellation but can be cancelled independently
/// without touching the parent. The parallel batch executor uses this to
/// give a worker pool its own stop signal layered over the caller's.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<CancelFlag>);

#[derive(Debug, Default)]
struct CancelFlag {
    flag: AtomicBool,
    parent: Option<CancelToken>,
}

impl CancelToken {
    /// A fresh, un-cancelled token with no parent.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that is cancelled when either it or `self` is cancelled.
    /// Cancelling the child never affects the parent.
    pub fn child(&self) -> CancelToken {
        CancelToken(Arc::new(CancelFlag {
            flag: AtomicBool::new(false),
            parent: Some(self.clone()),
        }))
    }

    /// Requests cancellation; all clones (and children) observe it.
    pub fn cancel(&self) {
        self.0.flag.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested, here or on an ancestor?
    pub fn is_cancelled(&self) -> bool {
        let mut cur = self;
        loop {
            if cur.0.flag.load(Ordering::Relaxed) {
                return true;
            }
            match &cur.0.parent {
                Some(parent) => cur = parent,
                None => return false,
            }
        }
    }
}

/// Which resource a budget check found exhausted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// Saturation pool entries per relation (`Engine` memory).
    PoolDeps,
    /// Chase unification steps (`tableau` time).
    ChaseSteps,
    /// Nulls allocated by tableau templates (`tableau` memory).
    ChaseNulls,
    /// Assignment enumerations — quantifier instantiations in
    /// `logic::eval` and trie-assignment scans in the chase and the
    /// satisfaction checker.
    Assignments,
    /// Candidate subsets enumerated by the key search.
    KeyCandidates,
    /// Dense closure-matrix cells built when a relation is promoted to
    /// the specialized query tier (`nfd-core`'s Tier 2). Charged at
    /// promotion time so a tier build can never blow a deadline or
    /// memory budget unnoticed.
    DenseCells,
    /// Wall-clock deadline.
    Deadline,
    /// Explicit cancellation via a [`CancelToken`].
    Cancelled,
    /// A fault injected by a `fail_point!` site (chaos testing only;
    /// never produced in a build without the `failpoints` feature).
    Injected,
}

impl ResourceKind {
    /// Short human noun for reports.
    pub fn noun(self) -> &'static str {
        match self {
            ResourceKind::PoolDeps => "saturation pool entries",
            ResourceKind::ChaseSteps => "chase steps",
            ResourceKind::ChaseNulls => "chase nulls",
            ResourceKind::Assignments => "assignment enumerations",
            ResourceKind::KeyCandidates => "key candidates",
            ResourceKind::DenseCells => "dense closure-matrix cells",
            ResourceKind::Deadline => "wall-clock deadline",
            ResourceKind::Cancelled => "cancellation",
            ResourceKind::Injected => "injected fault",
        }
    }
}

/// What ran out: the exhausted resource, its limit, and how much was used
/// when the loop gave up. Attached to `Exhausted` verdicts and errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResourceReport {
    /// The exhausted resource.
    pub kind: ResourceKind,
    /// The configured limit: counter units for counter kinds, the
    /// configured timeout in milliseconds for `Deadline` (0 when the
    /// deadline was set as an absolute instant with no stored duration),
    /// and 0 for `Cancelled`/`Injected`, where no limit applies.
    pub limit: u64,
    /// Usage at the moment the limit was hit: counter units, or elapsed
    /// milliseconds for `Deadline`.
    pub used: u64,
}

impl ResourceReport {
    /// A report for a counter limit.
    pub fn counter(kind: ResourceKind, limit: u64, used: u64) -> ResourceReport {
        ResourceReport { kind, limit, used }
    }

    /// The report attached to faults injected by `fail_point!` sites.
    pub fn injected() -> ResourceReport {
        ResourceReport::counter(ResourceKind::Injected, 0, 0)
    }
}

impl fmt::Display for ResourceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ResourceKind::Deadline if self.limit > 0 => {
                write!(
                    f,
                    "wall-clock deadline of {} ms exceeded ({} ms elapsed)",
                    self.limit, self.used
                )
            }
            ResourceKind::Deadline => f.write_str("wall-clock deadline exceeded"),
            ResourceKind::Cancelled => f.write_str("cancelled by caller"),
            ResourceKind::Injected => f.write_str("injected fault (failpoint)"),
            kind => write!(f, "{} limit of {} reached", kind.noun(), self.limit),
        }
    }
}

/// Cooperative resource limits for one query or engine build.
///
/// Counters are `u64::MAX` when unlimited. [`Budget::standard`] matches
/// the legacy hard-wired limits (100 000 pool entries, 100 000 chase
/// steps) with everything else unbounded; [`Budget::limited`] caps every
/// counter at `n` for graceful degradation under pressure.
#[derive(Clone, Debug)]
pub struct Budget {
    /// Max saturation pool entries per relation.
    pub max_pool_deps: u64,
    /// Max chase unification steps per run.
    pub max_chase_steps: u64,
    /// Max nulls allocated by tableau templates per run.
    pub max_chase_nulls: u64,
    /// Max assignment enumerations per evaluation/scan.
    pub max_assignments: u64,
    /// Max candidate subsets enumerated by the key search.
    pub max_key_candidates: u64,
    /// Max dense closure-matrix cells built per tier promotion.
    pub max_dense_cells: u64,
    deadline: Option<Instant>,
    /// The duration the deadline was configured from, kept so exhaustion
    /// reports can say *which* timeout tripped ("deadline of 50 ms
    /// exceeded") and so [`Budget::escalate`] can re-arm a fresh, scaled
    /// deadline for a retry.
    timeout: Option<Duration>,
    cancel: CancelToken,
}

impl Budget {
    /// No limits at all (counters at `u64::MAX`, no deadline).
    pub fn unlimited() -> Budget {
        Budget {
            max_pool_deps: u64::MAX,
            max_chase_steps: u64::MAX,
            max_chase_nulls: u64::MAX,
            max_assignments: u64::MAX,
            max_key_candidates: u64::MAX,
            max_dense_cells: u64::MAX,
            deadline: None,
            timeout: None,
            cancel: CancelToken::new(),
        }
    }

    /// The default limits historically hard-wired into the engine and the
    /// chase: 100 000 pool entries per relation, 100 000 chase steps,
    /// everything else unbounded.
    pub fn standard() -> Budget {
        Budget {
            max_pool_deps: 100_000,
            max_chase_steps: 100_000,
            ..Budget::unlimited()
        }
    }

    /// Every counter capped at `n` — the "tiny budget" shape used for
    /// graceful degradation tests and the CLI `--budget` flag.
    pub fn limited(n: u64) -> Budget {
        Budget {
            max_pool_deps: n,
            max_chase_steps: n,
            max_chase_nulls: n,
            max_assignments: n,
            max_key_candidates: n,
            max_dense_cells: n,
            ..Budget::unlimited()
        }
    }

    /// Adds a wall-clock deadline `d` from now. A zero duration is
    /// honoured literally: the budget is already past its deadline and
    /// the first [`Budget::check_live`] reports exhaustion.
    pub fn with_timeout(mut self, d: Duration) -> Budget {
        self.deadline = Some(Instant::now() + d);
        self.timeout = Some(d);
        self
    }

    /// Adds a wall-clock deadline `ms` milliseconds from now.
    pub fn with_timeout_ms(self, ms: u64) -> Budget {
        self.with_timeout(Duration::from_millis(ms))
    }

    /// Attaches an externally controlled cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Budget {
        self.cancel = token;
        self
    }

    /// The attached cancellation token (clone it to cancel from another
    /// thread).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// The absolute deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Polls the liveness conditions: cancellation first (cheap atomic
    /// load), then the deadline (clock read). Hot loops call this every
    /// few thousand iterations.
    pub fn check_live(&self) -> Result<(), ResourceReport> {
        if self.cancel.is_cancelled() {
            return Err(ResourceReport::counter(ResourceKind::Cancelled, 0, 0));
        }
        if let Some(d) = self.deadline {
            let now = Instant::now();
            if now >= d {
                // Coherent report: limit = the configured timeout in ms,
                // used = elapsed ms (≥ limit by construction).
                let limit = self
                    .timeout
                    .map(|t| t.as_millis().min(u64::MAX as u128) as u64)
                    .unwrap_or(0);
                let over = now.duration_since(d).as_millis().min(u64::MAX as u128) as u64;
                return Err(ResourceReport::counter(
                    ResourceKind::Deadline,
                    limit,
                    limit.saturating_add(over),
                ));
            }
        }
        Ok(())
    }

    /// The limit configured for a counter kind (`u64::MAX` for the
    /// non-counter kinds).
    pub fn limit(&self, kind: ResourceKind) -> u64 {
        match kind {
            ResourceKind::PoolDeps => self.max_pool_deps,
            ResourceKind::ChaseSteps => self.max_chase_steps,
            ResourceKind::ChaseNulls => self.max_chase_nulls,
            ResourceKind::Assignments => self.max_assignments,
            ResourceKind::KeyCandidates => self.max_key_candidates,
            ResourceKind::DenseCells => self.max_dense_cells,
            ResourceKind::Deadline | ResourceKind::Cancelled | ResourceKind::Injected => u64::MAX,
        }
    }

    /// A scaled-up copy of this budget for a retry after exhaustion:
    /// every finite counter limit is multiplied by `factor` (and grows by
    /// at least one, so even a zero limit makes progress), and a timeout,
    /// if one was configured, is re-armed *from now* at `factor` times
    /// its previous duration — the original absolute deadline has by
    /// definition already passed when a retry is considered.
    ///
    /// Factors below 1 (or non-finite) are treated as 1: escalation never
    /// shrinks a budget. The cancellation token is shared with the
    /// original, so a caller's cancel still reaches every retry.
    pub fn escalate(&self, factor: f64) -> Budget {
        let factor = if factor.is_finite() && factor > 1.0 {
            factor
        } else {
            1.0
        };
        // `as u64` saturates on overflow, so huge limits stay huge
        // instead of wrapping.
        let scale = |v: u64| {
            if v == u64::MAX {
                v
            } else {
                ((v as f64 * factor) as u64).max(v.saturating_add(1))
            }
        };
        let mut next = self.clone();
        next.max_pool_deps = scale(self.max_pool_deps);
        next.max_chase_steps = scale(self.max_chase_steps);
        next.max_chase_nulls = scale(self.max_chase_nulls);
        next.max_assignments = scale(self.max_assignments);
        next.max_key_candidates = scale(self.max_key_candidates);
        next.max_dense_cells = scale(self.max_dense_cells);
        if let Some(t) = self.timeout {
            let ms = t.as_millis().min(u64::MAX as u128) as u64;
            return next.with_timeout(Duration::from_millis(scale(ms)));
        }
        next
    }

    /// Checks a counter against its limit: `Err` when `used` exceeds the
    /// configured maximum. Callers pass the would-be count, so a limit of
    /// `n` admits exactly `n` units.
    pub fn check_counter(&self, kind: ResourceKind, used: u64) -> Result<(), ResourceReport> {
        let limit = self.limit(kind);
        if used > limit {
            Err(ResourceReport::counter(kind, limit, used))
        } else {
            Ok(())
        }
    }
}

impl Default for Budget {
    fn default() -> Budget {
        Budget::standard()
    }
}

/// A three-valued query answer: the classical verdict, or an honest
/// admission that resources ran out before one was reached.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// `Σ ⊨ σ` was established.
    Implied,
    /// A counterexample regime exists: `Σ ⊭ σ`.
    NotImplied,
    /// No decider reached an answer within the budget; the report says
    /// what ran out first.
    Exhausted(ResourceReport),
}

impl Verdict {
    /// Wraps a classical boolean verdict.
    pub fn from_bool(implied: bool) -> Verdict {
        if implied {
            Verdict::Implied
        } else {
            Verdict::NotImplied
        }
    }

    /// The classical verdict, if one was reached.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Verdict::Implied => Some(true),
            Verdict::NotImplied => Some(false),
            Verdict::Exhausted(_) => None,
        }
    }

    /// Did the query run out of resources?
    pub fn is_exhausted(&self) -> bool {
        matches!(self, Verdict::Exhausted(_))
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Implied => f.write_str("implied"),
            Verdict::NotImplied => f.write_str("not implied"),
            Verdict::Exhausted(r) => write!(f, "exhausted: {r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_shared() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!clone.is_cancelled());
        t.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn child_tokens_observe_parent_but_not_vice_versa() {
        let parent = CancelToken::new();
        let child = parent.child();
        let grandchild = child.child();
        assert!(!child.is_cancelled());

        // Cancelling a child leaves the parent (and siblings) alone.
        child.cancel();
        assert!(child.is_cancelled());
        assert!(grandchild.is_cancelled());
        assert!(!parent.is_cancelled());
        assert!(!parent.child().is_cancelled());

        // Cancelling the parent reaches every descendant.
        let other = parent.child();
        parent.cancel();
        assert!(other.is_cancelled());
        assert!(parent.is_cancelled());
    }

    #[test]
    fn standard_matches_legacy_limits() {
        let b = Budget::standard();
        assert_eq!(b.max_pool_deps, 100_000);
        assert_eq!(b.max_chase_steps, 100_000);
        assert_eq!(b.max_assignments, u64::MAX);
        assert!(b.check_live().is_ok());
    }

    #[test]
    fn counter_limits_admit_exactly_n() {
        let b = Budget::limited(3);
        assert!(b.check_counter(ResourceKind::ChaseSteps, 3).is_ok());
        let err = b.check_counter(ResourceKind::ChaseSteps, 4).unwrap_err();
        assert_eq!(err.kind, ResourceKind::ChaseSteps);
        assert_eq!(err.limit, 3);
        assert!(err.to_string().contains("chase steps"));
    }

    #[test]
    fn deadline_and_cancellation_trip_check_live() {
        let b = Budget::unlimited().with_timeout(Duration::from_secs(0));
        assert_eq!(
            b.check_live().unwrap_err().kind,
            ResourceKind::Deadline,
            "zero deadline is already past"
        );
        let token = CancelToken::new();
        let b = Budget::unlimited().with_cancel(token.clone());
        assert!(b.check_live().is_ok());
        token.cancel();
        assert_eq!(b.check_live().unwrap_err().kind, ResourceKind::Cancelled);
    }

    #[test]
    fn zero_timeout_trips_first_check_with_a_labeled_report() {
        let b = Budget::unlimited().with_timeout_ms(0);
        let report = b.check_live().unwrap_err();
        assert_eq!(report.kind, ResourceKind::Deadline);
        assert_eq!(report.limit, 0, "the configured timeout was 0 ms");
        assert!(report.used >= report.limit);
        assert!(report.to_string().contains("wall-clock deadline"));
    }

    #[test]
    fn deadline_report_names_the_configured_timeout() {
        let b = Budget::unlimited().with_timeout_ms(25);
        assert!(b.check_live().is_ok(), "25 ms have not elapsed yet");
        std::thread::sleep(Duration::from_millis(30));
        let report = b.check_live().unwrap_err();
        assert_eq!(report.kind, ResourceKind::Deadline);
        assert_eq!(report.limit, 25);
        assert!(report.used >= 25, "elapsed ms at the trip: {}", report.used);
        assert!(report.to_string().contains("deadline of 25 ms"));
    }

    #[test]
    fn zero_limit_counters_trip_on_first_unit() {
        let b = Budget::limited(0);
        let report = b.check_counter(ResourceKind::PoolDeps, 1).unwrap_err();
        assert_eq!(report.kind, ResourceKind::PoolDeps);
        assert_eq!(report.limit, 0);
        assert_eq!(report.used, 1);
    }

    #[test]
    fn escalate_scales_counters_and_rearms_the_deadline() {
        let b = Budget::limited(10).with_timeout_ms(40);
        let up = b.escalate(4.0); // deadline re-armed from now: 160 ms
        assert_eq!(up.max_pool_deps, 40);
        assert_eq!(up.max_chase_steps, 40);
        std::thread::sleep(Duration::from_millis(60));
        assert!(b.check_live().is_err(), "original 40 ms deadline passed");
        assert!(
            up.check_live().is_ok(),
            "escalated deadline was re-armed and scaled"
        );

        // Progress from zero, saturation at the top, shared cancel token.
        assert_eq!(Budget::limited(0).escalate(4.0).max_assignments, 1);
        assert_eq!(Budget::unlimited().escalate(4.0).max_pool_deps, u64::MAX);
        let escalated = b.escalate(f64::NAN);
        assert_eq!(escalated.max_pool_deps, 11, "bad factors grow by one");
        b.cancel_token().cancel();
        assert!(escalated.cancel_token().is_cancelled());
    }

    #[test]
    fn injected_report_renders() {
        let r = ResourceReport::injected();
        assert_eq!(r.kind, ResourceKind::Injected);
        assert!(r.to_string().contains("injected fault"));
        assert_eq!(Budget::unlimited().limit(ResourceKind::Injected), u64::MAX);
    }

    #[test]
    fn verdict_roundtrip() {
        assert_eq!(Verdict::from_bool(true), Verdict::Implied);
        assert_eq!(Verdict::from_bool(false).as_bool(), Some(false));
        let ex = Verdict::Exhausted(ResourceReport::counter(ResourceKind::PoolDeps, 5, 6));
        assert!(ex.is_exhausted());
        assert!(ex.as_bool().is_none());
        assert!(ex.to_string().contains("exhausted"));
    }
}
