//! Compiled per-relation path tables: the shared dependency IR.
//!
//! Every reasoning layer (saturation engine, chase, closure, incremental
//! checker, counterexample construction) works over the same object — the
//! finite set `Paths(SC)` of a relation (Definition A.1) together with the
//! prefix (Definition 2.2) and *follows* (Definition 3.2) relations. A
//! [`PathTable`] interns each typed path of one relation to a dense
//! [`PathId`] and precomputes those relations as bitset matrices, so that
//! subsumption pruning, resolution, and query chaining become pure bitset
//! operations instead of repeated `Path` allocation and comparison.
//!
//! [`PathSet`] is the companion fixed-width bitset over a table's id space;
//! [`SchemaTables`] builds one shared (reference-counted) table per
//! relation of a schema, compiled once and reused by every decision
//! procedure and every query.

use crate::path::Path;
use crate::typing::{paths_of_record, PathTypeError};
use nfd_model::{Label, RecordType, Schema};
use std::collections::HashMap;
use std::sync::Arc;

/// Dense identifier of a path within one relation's [`PathTable`].
///
/// Ids are assigned in the order of
/// [`paths_of_record`] — shortest-first,
/// then declaration order — so they are stable for a given schema.
pub type PathId = u32;

/// A fixed-width bitset over one [`PathTable`]'s id space.
///
/// All sets drawn from the same table have the same width, so subset,
/// union and intersection are straight word-wise loops. Iteration yields
/// ids in ascending order, which doubles as the canonical sorted order of
/// an LHS.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct PathSet {
    bits: Box<[u64]>,
}

impl PathSet {
    /// The empty set over `words` 64-bit words (see [`PathTable::words`]).
    pub fn empty(words: usize) -> PathSet {
        PathSet {
            bits: vec![0; words].into_boxed_slice(),
        }
    }

    /// A set over `words` words containing exactly `ids`.
    pub fn from_ids(words: usize, ids: impl IntoIterator<Item = PathId>) -> PathSet {
        let mut s = PathSet::empty(words);
        for id in ids {
            s.insert(id);
        }
        s
    }

    /// Inserts `id`; returns whether it was newly added.
    pub fn insert(&mut self, id: PathId) -> bool {
        let (w, b) = (id as usize / 64, id as usize % 64);
        let fresh = self.bits[w] & (1 << b) == 0;
        self.bits[w] |= 1 << b;
        fresh
    }

    /// Removes `id`; returns whether it was present.
    pub fn remove(&mut self, id: PathId) -> bool {
        let (w, b) = (id as usize / 64, id as usize % 64);
        let had = self.bits[w] & (1 << b) != 0;
        self.bits[w] &= !(1 << b);
        had
    }

    /// Does the set contain `id`?
    pub fn contains(&self, id: PathId) -> bool {
        let (w, b) = (id as usize / 64, id as usize % 64);
        self.bits.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Is `self ⊆ other`?
    pub fn is_subset(&self, other: &PathSet) -> bool {
        self.bits
            .iter()
            .zip(other.bits.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// Do the sets share an element?
    pub fn intersects(&self, other: &PathSet) -> bool {
        self.bits
            .iter()
            .zip(other.bits.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// `self ∪= other`.
    pub fn union_with(&mut self, other: &PathSet) {
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a |= b;
        }
    }

    /// `self ∩= other`.
    pub fn intersect_with(&mut self, other: &PathSet) {
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a &= b;
        }
    }

    /// `self \= other`.
    pub fn difference_with(&mut self, other: &PathSet) {
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a &= !b;
        }
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The ids, in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = PathId> + '_ {
        self.bits.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let b = w.trailing_zeros();
                w &= w - 1;
                Some(wi as u32 * 64 + b)
            })
        })
    }

    /// The ids as a sorted `Vec`.
    pub fn to_vec(&self) -> Vec<PathId> {
        self.iter().collect()
    }

    /// The raw 64-bit words backing the set — the serialization surface
    /// used by compiled-session snapshots. Word `w` bit `b` is id
    /// `w * 64 + b`.
    pub fn as_words(&self) -> &[u64] {
        &self.bits
    }

    /// Rebuilds a set from raw words previously obtained via
    /// [`PathSet::as_words`]. The caller is responsible for validating the
    /// width and id range against the owning table (snapshot thaw does).
    pub fn from_words(words: Vec<u64>) -> PathSet {
        PathSet {
            bits: words.into_boxed_slice(),
        }
    }
}

impl std::fmt::Debug for PathSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// The compiled path table of one relation: every typed path interned to a
/// dense [`PathId`], with the prefix and follows relations as bitset
/// matrices and the record structure (parents, children, set-of-records
/// flags) resolved up front.
pub struct PathTable {
    relation: Label,
    paths: Vec<Path>,
    index: HashMap<Path, PathId>,
    words: usize,
    /// `parent[i]`: id of `paths[i]` minus its last label, when non-empty.
    parent: Vec<Option<PathId>>,
    /// Row `i`: `{j : paths[j] is a prefix of paths[i]}` (including `i`).
    prefixes_of: Vec<PathSet>,
    /// Row `i`: `{j : paths[i] is a proper prefix of paths[j]}`.
    extensions_of: Vec<PathSet>,
    /// Row `i`: `{j : paths[j] follows paths[i]}` (Definition 3.2).
    followers_of: Vec<PathSet>,
    /// Record-structure children: `children[i] = {j : parent[j] == i}`.
    children: Vec<Vec<PathId>>,
    /// Does `paths[i]` resolve to a set-of-records type?
    set_record: Vec<bool>,
}

impl PathTable {
    /// Compiles the table for `relation`'s element record type.
    pub fn from_record(relation: Label, rec: &RecordType) -> PathTable {
        let paths = paths_of_record(rec);
        let n = paths.len();
        let words = n.div_ceil(64).max(1);
        let index: HashMap<Path, PathId> = paths
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), u32::try_from(i).expect("path table fits u32")))
            .collect();
        let parent: Vec<Option<PathId>> = paths
            .iter()
            .map(|p| {
                let par = p.parent().expect("table paths are non-empty");
                if par.is_empty() {
                    None
                } else {
                    Some(index[&par])
                }
            })
            .collect();
        let mut prefixes_of = vec![PathSet::empty(words); n];
        let mut extensions_of = vec![PathSet::empty(words); n];
        let mut followers_of = vec![PathSet::empty(words); n];
        for (i, p) in paths.iter().enumerate() {
            for (j, q) in paths.iter().enumerate() {
                if q.is_prefix_of(p) {
                    prefixes_of[i].insert(j as u32);
                    if i != j {
                        extensions_of[j].insert(i as u32);
                    }
                }
                if q.follows(p) {
                    followers_of[i].insert(j as u32);
                }
            }
        }
        let mut children = vec![Vec::new(); n];
        for (j, par) in parent.iter().enumerate() {
            if let Some(i) = par {
                children[*i as usize].push(j as u32);
            }
        }
        let set_record: Vec<bool> = paths
            .iter()
            .map(|p| {
                crate::typing::resolve_in_record(rec, p)
                    .is_ok_and(|ty| ty.element_record().is_some())
            })
            .collect();
        PathTable {
            relation,
            paths,
            index,
            words,
            parent,
            prefixes_of,
            extensions_of,
            followers_of,
            children,
            set_record,
        }
    }

    /// Compiles the table for a named relation of `schema`.
    pub fn for_relation(schema: &Schema, relation: Label) -> Result<PathTable, PathTypeError> {
        let rec = schema
            .relation_type(relation)
            .map_err(|_| PathTypeError::UnknownRelation(relation))?
            .element_record()
            .ok_or(PathTypeError::BaseNotSet {
                path: relation.to_string(),
            })?;
        Ok(PathTable::from_record(relation, rec))
    }

    /// The relation this table describes.
    pub fn relation(&self) -> Label {
        self.relation
    }

    /// Number of interned paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Is the table empty (a relation of no attributes)?
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Width of this table's [`PathSet`]s in 64-bit words.
    pub fn words(&self) -> usize {
        self.words
    }

    /// A fresh empty set over this table's id space.
    pub fn empty_set(&self) -> PathSet {
        PathSet::empty(self.words)
    }

    /// The set of all ids of this table.
    pub fn full_set(&self) -> PathSet {
        PathSet::from_ids(self.words, 0..self.paths.len() as u32)
    }

    /// The path with id `id`.
    pub fn path(&self, id: PathId) -> &Path {
        &self.paths[id as usize]
    }

    /// All paths, in id order.
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// The id of `p`, when `p` is a path of this relation.
    pub fn id_of(&self, p: &Path) -> Option<PathId> {
        self.index.get(p).copied()
    }

    /// The id of `p` minus its last label (`None` for single-label paths,
    /// whose parent is the empty path).
    pub fn parent(&self, id: PathId) -> Option<PathId> {
        self.parent[id as usize]
    }

    /// Is `paths[a]` a prefix of `paths[b]` (Definition 2.2, reflexive)?
    pub fn is_prefix(&self, a: PathId, b: PathId) -> bool {
        self.prefixes_of[b as usize].contains(a)
    }

    /// Is `paths[a]` a proper prefix of `paths[b]`?
    pub fn is_proper_prefix(&self, a: PathId, b: PathId) -> bool {
        a != b && self.is_prefix(a, b)
    }

    /// Does `paths[a]` *follow* `paths[b]` (Definition 3.2)?
    pub fn follows(&self, a: PathId, b: PathId) -> bool {
        self.followers_of[b as usize].contains(a)
    }

    /// The prefixes of `paths[id]` within the table, including `id`.
    pub fn prefixes_of(&self, id: PathId) -> &PathSet {
        &self.prefixes_of[id as usize]
    }

    /// The ids that `paths[id]` is a proper prefix of.
    pub fn extensions_of(&self, id: PathId) -> &PathSet {
        &self.extensions_of[id as usize]
    }

    /// The ids whose paths follow `paths[id]`.
    pub fn followers_of(&self, id: PathId) -> &PathSet {
        &self.followers_of[id as usize]
    }

    /// The one-label extensions of `paths[id]` (its record attributes,
    /// when it is set-of-records typed).
    pub fn children(&self, id: PathId) -> &[PathId] {
        &self.children[id as usize]
    }

    /// Does `paths[id]` resolve to a set-of-records type?
    pub fn is_set_record(&self, id: PathId) -> bool {
        self.set_record[id as usize]
    }

    /// The proper prefixes of `paths[id]`, ascending by length — the parent
    /// chain, the table-level analogue of [`Path::prefixes`].
    pub fn ancestors(&self, id: PathId) -> Vec<PathId> {
        let mut chain = Vec::new();
        let mut cur = self.parent(id);
        while let Some(p) = cur {
            chain.push(p);
            cur = self.parent(p);
        }
        chain.reverse();
        chain
    }
}

impl std::fmt::Debug for PathTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PathTable")
            .field("relation", &self.relation)
            .field("len", &self.paths.len())
            .finish()
    }
}

/// The compiled path tables of a whole schema, one shared table per
/// relation. Build once, hand `Arc` clones to every decision procedure.
#[derive(Clone, Debug)]
pub struct SchemaTables {
    tables: HashMap<Label, Arc<PathTable>>,
}

impl SchemaTables {
    /// Compiles every relation of `schema`.
    pub fn new(schema: &Schema) -> Result<SchemaTables, PathTypeError> {
        let mut tables = HashMap::new();
        for relation in schema.relation_names() {
            tables.insert(
                relation,
                Arc::new(PathTable::for_relation(schema, relation)?),
            );
        }
        Ok(SchemaTables { tables })
    }

    /// The table of `relation`, if it exists in the schema.
    pub fn get(&self, relation: Label) -> Option<&Arc<PathTable>> {
        self.tables.get(&relation)
    }

    /// All `(relation, table)` pairs, in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (Label, &Arc<PathTable>)> {
        self.tables.iter().map(|(l, t)| (*l, t))
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Is the schema empty?
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn course() -> Schema {
        Schema::parse(
            "Course : { <cnum: string, time: int,
                         students: {<sid: int, age: int, grade: string>},
                         books: {<isbn: string, title: string>}> };",
        )
        .unwrap()
    }

    #[test]
    fn interning_matches_paths_of_record() {
        let schema = course();
        let t = PathTable::for_relation(&schema, Label::new("Course")).unwrap();
        assert_eq!(t.len(), 4 + 3 + 2); // top-level + students + books
        for (i, p) in t.paths().iter().enumerate() {
            assert_eq!(t.id_of(p), Some(i as u32));
            assert_eq!(t.path(i as u32), p);
        }
        assert_eq!(t.id_of(&Path::parse("no_such").unwrap()), None);
    }

    #[test]
    fn matrices_agree_with_path_predicates() {
        let schema = course();
        let t = PathTable::for_relation(&schema, Label::new("Course")).unwrap();
        for a in 0..t.len() as u32 {
            for b in 0..t.len() as u32 {
                let (pa, pb) = (t.path(a), t.path(b));
                assert_eq!(t.is_prefix(a, b), pa.is_prefix_of(pb), "{pa} ≤ {pb}");
                assert_eq!(t.is_proper_prefix(a, b), pa.is_proper_prefix_of(pb));
                assert_eq!(t.follows(a, b), pa.follows(pb), "{pa} follows {pb}");
                assert_eq!(t.extensions_of(a).contains(b), pa.is_proper_prefix_of(pb));
                assert_eq!(t.followers_of(b).contains(a), pa.follows(pb));
            }
        }
    }

    #[test]
    fn structure_fields() {
        let schema = course();
        let t = PathTable::for_relation(&schema, Label::new("Course")).unwrap();
        let students = t.id_of(&Path::parse("students").unwrap()).unwrap();
        let sid = t.id_of(&Path::parse("students:sid").unwrap()).unwrap();
        assert!(t.is_set_record(students));
        assert!(!t.is_set_record(sid));
        assert_eq!(t.parent(sid), Some(students));
        assert_eq!(t.parent(students), None);
        assert_eq!(t.children(students).len(), 3);
        assert_eq!(t.ancestors(sid), vec![students]);
    }

    #[test]
    fn path_set_algebra() {
        let mut a = PathSet::empty(2);
        assert!(a.is_empty());
        assert!(a.insert(3));
        assert!(!a.insert(3));
        assert!(a.insert(100));
        assert_eq!(a.len(), 2);
        assert_eq!(a.to_vec(), vec![3, 100]);
        let b = PathSet::from_ids(2, [3, 100, 7]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.intersects(&b));
        let mut c = a.clone();
        c.union_with(&b);
        assert_eq!(c.to_vec(), vec![3, 7, 100]);
        c.difference_with(&a);
        assert_eq!(c.to_vec(), vec![7]);
        assert!(c.remove(7));
        assert!(!c.remove(7));
        assert!(c.is_empty());
        assert!(!c.contains(7));
    }

    #[test]
    fn schema_tables_cover_all_relations() {
        let schema = Schema::parse("R : {<A: int>}; S : {<X: int, Y: int>};").unwrap();
        let tables = SchemaTables::new(&schema).unwrap();
        assert_eq!(tables.len(), 2);
        assert_eq!(tables.get(Label::new("R")).unwrap().len(), 1);
        assert_eq!(tables.get(Label::new("S")).unwrap().len(), 2);
        assert!(tables.get(Label::new("T")).is_none());
    }

    #[test]
    fn interned_tables_are_send_and_sync() {
        // The parallel batch executor shares compiled tables across
        // worker threads: everything here must be immutable-after-build
        // with no interior mutability. (`Label` interning goes through a
        // global `RwLock`, so labels stay `Send + Sync` too.)
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PathTable>();
        assert_send_sync::<SchemaTables>();
        assert_send_sync::<PathSet>();
        assert_send_sync::<Label>();

        // And shared reads really do agree across threads.
        let schema = Schema::parse("R : {<A: int, B: {<C: int>}>};").unwrap();
        let tables = SchemaTables::new(&schema).unwrap();
        let table = tables.get(Label::new("R")).unwrap();
        let expect: Vec<String> = (0..table.len() as PathId)
            .map(|id| table.path(id).to_string())
            .collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        (0..table.len() as PathId)
                            .map(|id| table.path(id).to_string())
                            .collect::<Vec<String>>()
                    })
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), expect);
            }
        });
    }
}
