//! # nfd-path — path expressions over nested relational types
//!
//! Implements Section 2.1 of *"Reasoning about Nested Functional
//! Dependencies"* (Hara & Davidson, PODS 1999):
//!
//! * [`Path`] — path expressions `A1:…:Ak` (Definition 2.1), where `:`
//!   denotes traversal into a set, with parsing, display, and the
//!   prefix / proper-prefix (Definition 2.2) and *follows* (Definition 3.2)
//!   relations;
//! * [`RootedPath`] — a path anchored at a relation name (`x0 = R y`), the
//!   base paths of NFDs;
//! * [`typing`] — well-typedness of paths with respect to a type, and
//!   enumeration of `Paths(SC)` (Definition A.1);
//! * [`trie`] — prefix tries over path sets, realizing the *coincidence*
//!   condition of Definition 2.4 (paths that share a prefix share the
//!   element choices along it);
//! * [`nav`] — navigation of values along paths: enumeration of base-path
//!   navigations and of trie-consistent assignments, the semantic engine
//!   behind both satisfaction checkers;
//! * [`table`] — compiled per-relation path tables: dense [`PathId`]s with
//!   the prefix/follows relations precomputed as bitset matrices, the
//!   shared IR of every decision procedure.

#![warn(missing_docs)]

pub mod nav;
pub mod path;
pub mod table;
pub mod trie;
pub mod typing;

pub use nav::{Assignment, BaseNav};
pub use path::{Path, RootedPath};
pub use table::{PathId, PathSet, PathTable, SchemaTables};
pub use trie::PathTrie;
pub use typing::PathTypeError;
