//! Navigation of values along paths.
//!
//! Two enumerations drive the semantics of NFDs (Definition 2.4 read
//! through the logic translation of Section 2.2):
//!
//! 1. **Base navigations** ([`for_each_base_nav`]): the base path
//!    `x0 = R:y1:…:yk` is walked with *one shared variable per interior
//!    label*; each complete walk ends at a set value, from which the
//!    quantified pair `v1, v2` is drawn.
//! 2. **Assignments** ([`for_each_assignment`]): below a chosen element
//!    `v`, the component paths `x1…xm` are evaluated with one element
//!    choice per internal trie node (the *coincidence* condition). An
//!    assignment is **total**: it fixes a value for every target path. If
//!    any traversed set is empty, no total assignment exists along that
//!    branch — the corresponding universally quantified formula is
//!    vacuously true, which is how the paper's "trivially true" clause and
//!    the Section 3.2 phenomena arise.

use crate::path::{Path, RootedPath};
use crate::trie::{PathTrie, TrieNode};
use nfd_model::{Instance, RecordValue, SetValue, Value};

/// A total assignment: one value per target path of a [`PathTrie`], indexed
/// compatibly with [`PathTrie::targets`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assignment {
    values: Vec<Value>,
}

impl Assignment {
    /// The value assigned to target `idx`.
    pub fn value(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// All values, in target order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Projects the assignment onto a subset of target indices (used to
    /// extract the LHS tuple of an NFD).
    pub fn project(&self, indices: &[usize]) -> Vec<Value> {
        indices.iter().map(|&i| self.values[i].clone()).collect()
    }
}

/// One interior walk of a base path, ending at a set value.
///
/// `choices` records the interior element picks (for witness reporting);
/// `set` is the final set from which `v1, v2` are drawn.
#[derive(Clone, Debug)]
pub struct BaseNav<'a> {
    /// The interior elements chosen, outermost first (empty when the base
    /// path is a bare relation name).
    pub choices: Vec<&'a RecordValue>,
    /// The set value at the end of the base path.
    pub set: &'a SetValue,
}

/// Enumerates every interior navigation of `base` over `instance`, calling
/// `f` with each complete walk. Walks blocked by an empty interior set are
/// simply absent (vacuous quantification).
///
/// Returns an error only if the instance lacks the relation or the walked
/// values have the wrong shape (impossible for instances validated against
/// a schema the path is well-typed in).
pub fn for_each_base_nav<'a, F>(
    instance: &'a Instance,
    base: &RootedPath,
    mut f: F,
) -> Result<(), NavError>
where
    F: FnMut(&BaseNav<'a>),
{
    let root = instance
        .relation(base.relation)
        .map_err(|_| NavError::UnknownRelation(base.relation.to_string()))?;
    let labels = base.path.labels();
    if labels.is_empty() {
        f(&BaseNav {
            choices: Vec::new(),
            set: root,
        });
        return Ok(());
    }
    let mut choices: Vec<&'a RecordValue> = Vec::with_capacity(labels.len());
    walk_base(root, labels, &mut choices, &mut f)?;
    Ok(())
}

fn walk_base<'a, F>(
    set: &'a SetValue,
    labels: &[nfd_model::Label],
    choices: &mut Vec<&'a RecordValue>,
    f: &mut F,
) -> Result<(), NavError>
where
    F: FnMut(&BaseNav<'a>),
{
    let (label, rest) = (labels[0], &labels[1..]);
    for elem in set.elems() {
        let rec = elem
            .as_record()
            .ok_or_else(|| NavError::NotARecord(label.to_string()))?;
        let v = rec
            .get(label)
            .ok_or_else(|| NavError::MissingField(label.to_string()))?;
        let inner = v
            .as_set()
            .ok_or_else(|| NavError::NotASet(label.to_string()))?;
        choices.push(rec);
        if rest.is_empty() {
            f(&BaseNav {
                choices: choices.clone(),
                set: inner,
            });
        } else {
            walk_base(inner, rest, choices, f)?;
        }
        choices.pop();
    }
    Ok(())
}

/// Errors raised during navigation; with validated instances and well-typed
/// paths these are unreachable, but the API does not assume that.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NavError {
    /// The instance has no such relation.
    UnknownRelation(String),
    /// Traversed into a set whose elements are not records.
    NotARecord(String),
    /// Projected a field that the record value lacks.
    MissingField(String),
    /// Traversed a label whose value is not a set.
    NotASet(String),
}

impl std::fmt::Display for NavError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NavError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            NavError::NotARecord(l) => write!(f, "elements under `{l}` are not records"),
            NavError::MissingField(l) => write!(f, "record value lacks field `{l}`"),
            NavError::NotASet(l) => write!(f, "value of `{l}` is not a set"),
        }
    }
}

impl std::error::Error for NavError {}

/// Enumerates every total, trie-consistent assignment of the trie's target
/// paths below the record `v`, calling `f` for each.
///
/// The cross product is taken over sibling subtrees; one element choice is
/// made per internal node. If a traversed set is empty the entire product
/// below it is empty: **no** assignment is produced for that combination of
/// outer choices.
pub fn for_each_assignment<F>(v: &RecordValue, trie: &PathTrie, mut f: F) -> Result<(), NavError>
where
    F: FnMut(&Assignment),
{
    let mut values: Vec<Option<Value>> = vec![None; trie.len()];
    let mut emit = |vals: &mut Vec<Option<Value>>| -> Result<(), NavError> {
        f(&Assignment {
            values: vals
                .iter()
                .map(|v| v.clone().expect("assignment is total at emit time"))
                .collect(),
        });
        Ok(())
    };
    with_siblings(v, trie.roots(), &mut values, &mut emit)
}

/// The continuation invoked once the current subtree is fully assigned.
/// Recursion through nesting levels is unbounded, so the continuation is a
/// trait object (a generic closure here would monomorphize without bound).
type Cont<'c> = &'c mut dyn FnMut(&mut Vec<Option<Value>>) -> Result<(), NavError>;

/// Handles the sibling nodes `nodes` under record `rec`: fills in target
/// values (no choice involved), then takes the cross product of element
/// choices over the internal siblings, calling `k` for each combination.
/// Restores `values` afterwards.
fn with_siblings(
    rec: &RecordValue,
    nodes: &[TrieNode],
    values: &mut Vec<Option<Value>>,
    k: Cont<'_>,
) -> Result<(), NavError> {
    let mut set_targets: Vec<usize> = Vec::new();
    for node in nodes {
        if let Some(idx) = node.target {
            let val = rec
                .get(node.label)
                .ok_or_else(|| NavError::MissingField(node.label.to_string()))?;
            values[idx] = Some(val.clone());
            set_targets.push(idx);
        }
    }
    let internal: Vec<&TrieNode> = nodes.iter().filter(|n| !n.children.is_empty()).collect();
    expand_internal(rec, &internal, 0, values, k)?;
    for idx in set_targets {
        values[idx] = None;
    }
    Ok(())
}

/// Expands internal sibling `i` of `internal`: one element choice per
/// iteration, each completed by recursing into the element's subtree and
/// then moving on to sibling `i + 1`.
fn expand_internal(
    rec: &RecordValue,
    internal: &[&TrieNode],
    i: usize,
    values: &mut Vec<Option<Value>>,
    k: Cont<'_>,
) -> Result<(), NavError> {
    if i == internal.len() {
        return k(values);
    }
    let node = internal[i];
    let val = rec
        .get(node.label)
        .ok_or_else(|| NavError::MissingField(node.label.to_string()))?;
    let set = val
        .as_set()
        .ok_or_else(|| NavError::NotASet(node.label.to_string()))?;
    for elem in set.elems() {
        let inner = elem
            .as_record()
            .ok_or_else(|| NavError::NotARecord(node.label.to_string()))?;
        // Split the borrow of `k` across the two nested uses via a local
        // trampoline closure.
        let mut continue_with_next =
            |values: &mut Vec<Option<Value>>| expand_internal(rec, internal, i + 1, values, k);
        with_siblings(inner, &node.children, values, &mut continue_with_next)?;
    }
    Ok(())
}

/// Collects all assignments into a vector (convenience for tests and small
/// inputs; the streaming form is [`for_each_assignment`]).
pub fn assignments(v: &RecordValue, trie: &PathTrie) -> Result<Vec<Assignment>, NavError> {
    let mut out = Vec::new();
    for_each_assignment(v, trie, |a| out.push(a.clone()))?;
    Ok(out)
}

/// All values reachable from `v` along `path` (one per branch choice),
/// ignoring trie consistency — the plain path semantics `p(v)` of
/// Section 2.1. Values blocked by empty sets are absent.
pub fn eval_path<'a>(v: &'a RecordValue, path: &Path) -> Vec<&'a Value> {
    let mut out = Vec::new();
    fn go<'a>(rec: &'a RecordValue, labels: &[nfd_model::Label], out: &mut Vec<&'a Value>) {
        let Some((&label, rest)) = labels.split_first() else {
            return;
        };
        let Some(val) = rec.get(label) else {
            return;
        };
        if rest.is_empty() {
            out.push(val);
        } else if let Some(set) = val.as_set() {
            for e in set.elems() {
                if let Some(r) = e.as_record() {
                    go(r, rest, out);
                }
            }
        }
    }
    go(v, path.labels(), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfd_model::{Instance, Label, Schema};

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    fn setup() -> (Schema, Instance) {
        let schema =
            Schema::parse("R : { <A: int, B: {<C: int, D: int>}, E: {<F: int>}> };").unwrap();
        let inst = Instance::parse(
            &schema,
            "R = { <A: 1,
                    B: {<C: 10, D: 11>, <C: 20, D: 21>},
                    E: {<F: 5>}>,
                   <A: 2, B: {}, E: {<F: 6>, <F: 7>}> };",
        )
        .unwrap();
        (schema, inst)
    }

    #[test]
    fn base_nav_bare_relation() {
        let (_, inst) = setup();
        let mut navs = 0;
        for_each_base_nav(&inst, &RootedPath::parse("R").unwrap(), |nav| {
            navs += 1;
            assert!(nav.choices.is_empty());
            assert_eq!(nav.set.len(), 2);
        })
        .unwrap();
        assert_eq!(navs, 1);
    }

    #[test]
    fn base_nav_one_level() {
        let (_, inst) = setup();
        // R:B — one navigation per tuple of R, ending at that tuple's B set.
        let mut sizes = Vec::new();
        for_each_base_nav(&inst, &RootedPath::parse("R:B").unwrap(), |nav| {
            assert_eq!(nav.choices.len(), 1);
            sizes.push(nav.set.len());
        })
        .unwrap();
        sizes.sort_unstable();
        assert_eq!(sizes, [0, 2]);
    }

    #[test]
    fn base_nav_unknown_relation() {
        let (_, inst) = setup();
        assert!(for_each_base_nav(&inst, &RootedPath::parse("Z").unwrap(), |_| {}).is_err());
    }

    fn first_tuple(inst: &Instance) -> &RecordValue {
        // Canonical order puts A:1 first.
        inst.relation(Label::new("R")).unwrap().elems()[0]
            .as_record()
            .unwrap()
    }

    #[test]
    fn assignments_cross_product() {
        let (_, inst) = setup();
        let v = first_tuple(&inst);
        // Paths B:C and E:F: 2 choices in B × 1 choice in E = 2 assignments.
        let trie = PathTrie::new([p("B:C"), p("E:F")]);
        let asg = assignments(v, &trie).unwrap();
        assert_eq!(asg.len(), 2);
        let mut cs: Vec<i64> = asg
            .iter()
            .map(|a| match a.value(0) {
                Value::Base(nfd_model::BaseValue::Int(i)) => *i,
                _ => panic!(),
            })
            .collect();
        cs.sort_unstable();
        assert_eq!(cs, [10, 20]);
    }

    #[test]
    fn coincidence_shared_prefix() {
        let (_, inst) = setup();
        let v = first_tuple(&inst);
        // B:C and B:D share the traversal of B: 2 assignments, and in each
        // the C and D come from the SAME element.
        let trie = PathTrie::new([p("B:C"), p("B:D")]);
        let asg = assignments(v, &trie).unwrap();
        assert_eq!(asg.len(), 2);
        for a in &asg {
            let c = a.value(0).as_base().unwrap();
            let d = a.value(1).as_base().unwrap();
            match (c, d) {
                (nfd_model::BaseValue::Int(c), nfd_model::BaseValue::Int(d)) => {
                    assert_eq!(*d, *c + 1, "C and D must come from the same element");
                }
                _ => panic!(),
            }
        }
    }

    #[test]
    fn empty_set_kills_whole_product() {
        let (_, inst) = setup();
        // Second tuple has B = {}: no assignment involving B:C exists, even
        // though E:F alone has choices.
        let v = inst.relation(Label::new("R")).unwrap().elems()[1]
            .as_record()
            .unwrap();
        let trie = PathTrie::new([p("B:C"), p("E:F")]);
        assert_eq!(assignments(v, &trie).unwrap().len(), 0);
        // E:F alone: two assignments.
        let trie = PathTrie::new([p("E:F")]);
        assert_eq!(assignments(v, &trie).unwrap().len(), 2);
    }

    #[test]
    fn target_and_internal_node() {
        let (_, inst) = setup();
        let v = first_tuple(&inst);
        // {B, B:C}: B is the whole set, B:C picks elements of the same set.
        let trie = PathTrie::new([p("B"), p("B:C")]);
        let asg = assignments(v, &trie).unwrap();
        assert_eq!(asg.len(), 2);
        for a in &asg {
            let b = a.value(0).as_set().unwrap();
            assert_eq!(b.len(), 2);
        }
    }

    #[test]
    fn base_path_target_only() {
        let (_, inst) = setup();
        let v = first_tuple(&inst);
        let trie = PathTrie::new([p("A")]);
        let asg = assignments(v, &trie).unwrap();
        assert_eq!(asg.len(), 1);
        assert_eq!(asg[0].value(0), &Value::int(1));
    }

    #[test]
    fn eval_path_all_branches() {
        let (_, inst) = setup();
        let v = first_tuple(&inst);
        let vals = eval_path(v, &p("B:C"));
        assert_eq!(vals.len(), 2);
        let vals = eval_path(v, &p("A"));
        assert_eq!(vals, vec![&Value::int(1)]);
        assert!(eval_path(v, &p("nope")).is_empty());
    }

    #[test]
    fn assignment_projection() {
        let (_, inst) = setup();
        let v = first_tuple(&inst);
        let trie = PathTrie::new([p("A"), p("E:F")]);
        let asg = assignments(v, &trie).unwrap();
        assert_eq!(asg.len(), 1);
        assert_eq!(asg[0].project(&[1]), vec![Value::int(5)]);
        assert_eq!(asg[0].values().len(), 2);
    }

    #[test]
    fn deep_nesting_three_levels() {
        let schema = Schema::parse("R : {<A: {<B: {<C: int>}, H: int>}>};").unwrap();
        let inst = Instance::parse(
            &schema,
            "R = { <A: {<B: {<C: 1>, <C: 2>}, H: 9>,
                       <B: {<C: 3>}, H: 8>}> };",
        )
        .unwrap();
        let v = inst.relation(Label::new("R")).unwrap().elems()[0]
            .as_record()
            .unwrap();
        let trie = PathTrie::new([p("A:B:C"), p("A:H")]);
        let asg = assignments(v, &trie).unwrap();
        // Element <B:{1,2},H:9> gives 2, element <B:{3},H:8> gives 1.
        assert_eq!(asg.len(), 3);
        // Coincidence: (C,H) pairs must be (1,9),(2,9),(3,8).
        let mut pairs: Vec<(Value, Value)> = asg
            .iter()
            .map(|a| (a.value(0).clone(), a.value(1).clone()))
            .collect();
        pairs.sort();
        assert_eq!(
            pairs,
            vec![
                (Value::int(1), Value::int(9)),
                (Value::int(2), Value::int(9)),
                (Value::int(3), Value::int(8)),
            ]
        );
    }
}
