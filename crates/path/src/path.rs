//! Path expressions and their syntactic relations.
//!
//! A [`Path`] is a (possibly empty) sequence of labels `A1:…:Ak`; the `:`
//! separating consecutive labels denotes traversal into the set value of the
//! preceding label (Definition 2.1). The empty path is `ε`.
//!
//! A [`RootedPath`] anchors a path at a relation name, the form `x0 = R y`
//! required of NFD base paths (Definition 2.3).

use nfd_model::{Label, ModelError};
use std::fmt;

/// A path expression `A1:…:Ak` (`k ≥ 0`; `k = 0` is the empty path `ε`).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Path {
    labels: Box<[Label]>,
}

impl Path {
    /// The empty path `ε`.
    pub fn empty() -> Path {
        Path {
            labels: Box::new([]),
        }
    }

    /// Builds a path from labels.
    pub fn new(labels: impl IntoIterator<Item = Label>) -> Path {
        Path {
            labels: labels.into_iter().collect(),
        }
    }

    /// Builds a path from `&str` label names: `Path::of(["students", "sid"])`.
    pub fn of<'a>(labels: impl IntoIterator<Item = &'a str>) -> Path {
        Path::new(labels.into_iter().map(Label::new))
    }

    /// Parses `"A:B:C"`; the empty string parses to `ε`.
    pub fn parse(text: &str) -> Result<Path, ModelError> {
        let text = text.trim();
        if text.is_empty() {
            return Ok(Path::empty());
        }
        let mut labels = Vec::new();
        for part in text.split(':') {
            let part = part.trim();
            if part.is_empty()
                || !part.chars().all(|c| c.is_alphanumeric() || c == '_')
                || part.chars().next().is_some_and(|c| c.is_ascii_digit())
            {
                return Err(ModelError::Parse {
                    msg: format!("invalid path segment `{part}` in `{text}`"),
                    line: 1,
                    col: 1,
                });
            }
            labels.push(Label::new(part));
        }
        Ok(Path::new(labels))
    }

    /// The labels of the path.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Number of labels (`|p|`).
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Is this the empty path `ε`?
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// First label, if any.
    pub fn first(&self) -> Option<Label> {
        self.labels.first().copied()
    }

    /// Last label, if any.
    pub fn last(&self) -> Option<Label> {
        self.labels.last().copied()
    }

    /// The path without its last label (`A1:…:Ak-1`); `None` for `ε`.
    pub fn parent(&self) -> Option<Path> {
        if self.is_empty() {
            None
        } else {
            Some(Path::new(
                self.labels[..self.labels.len() - 1].iter().copied(),
            ))
        }
    }

    /// The path without its first label; `None` for `ε`.
    pub fn tail(&self) -> Option<Path> {
        if self.is_empty() {
            None
        } else {
            Some(Path::new(self.labels[1..].iter().copied()))
        }
    }

    /// Concatenation `self : other` (written `x:X` in the paper's rules).
    pub fn join(&self, other: &Path) -> Path {
        Path::new(self.labels.iter().chain(other.labels.iter()).copied())
    }

    /// Extends the path by one label.
    pub fn child(&self, label: Label) -> Path {
        Path::new(self.labels.iter().copied().chain(std::iter::once(label)))
    }

    /// Definition 2.2: `self` is a **prefix** of `other` iff
    /// `other = self · p'` (every path is a prefix of itself; `ε` is a
    /// prefix of every path).
    pub fn is_prefix_of(&self, other: &Path) -> bool {
        self.len() <= other.len() && self.labels[..] == other.labels[..self.len()]
    }

    /// Definition 2.2: proper prefix (`self` is a prefix of `other` and
    /// `self ≠ other`).
    pub fn is_proper_prefix_of(&self, other: &Path) -> bool {
        self.len() < other.len() && self.is_prefix_of(other)
    }

    /// Definition 3.2: `self` **follows** `other` iff `self = p·A` and `p`
    /// is a *proper* prefix of `other`. Intuitively, `self` only traverses
    /// set-valued attributes that `other` also traverses.
    ///
    /// Examples from the paper: `A` follows any path of length ≥ 1;
    /// `A:B` follows `A:B` and `A:C:D`, but neither `A` nor `F:G`.
    pub fn follows(&self, other: &Path) -> bool {
        match self.parent() {
            Some(p) => p.is_proper_prefix_of(other),
            None => false, // ε follows nothing (it has no last label)
        }
    }

    /// The longest common prefix of two paths.
    pub fn common_prefix(&self, other: &Path) -> Path {
        let n = self
            .labels
            .iter()
            .zip(other.labels.iter())
            .take_while(|(a, b)| a == b)
            .count();
        Path::new(self.labels[..n].iter().copied())
    }

    /// If `prefix` is a prefix of `self`, the remainder `p'` with
    /// `self = prefix · p'`.
    pub fn strip_prefix(&self, prefix: &Path) -> Option<Path> {
        if prefix.is_prefix_of(self) {
            Some(Path::new(self.labels[prefix.len()..].iter().copied()))
        } else {
            None
        }
    }

    /// All non-empty prefixes, shortest first (including `self`).
    pub fn prefixes(&self) -> impl Iterator<Item = Path> + '_ {
        (1..=self.len()).map(move |k| Path::new(self.labels[..k].iter().copied()))
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("ε");
        }
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                f.write_str(":")?;
            }
            write!(f, "{l}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Path({self})")
    }
}

/// A path anchored at a relation: `x0 = R y` (Definition 2.3). The base
/// paths of NFDs and the elements of `Paths(SC)` (Definition A.1) have this
/// shape.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RootedPath {
    /// The relation name `R`.
    pub relation: Label,
    /// The remainder `y` (relative to the element records of `R`).
    pub path: Path,
}

impl RootedPath {
    /// Builds `R:y`.
    pub fn new(relation: Label, path: Path) -> RootedPath {
        RootedPath { relation, path }
    }

    /// A bare relation name (`y = ε`).
    pub fn relation_only(relation: Label) -> RootedPath {
        RootedPath {
            relation,
            path: Path::empty(),
        }
    }

    /// Parses `"R:A:B"`: the first segment is the relation name.
    pub fn parse(text: &str) -> Result<RootedPath, ModelError> {
        let p = Path::parse(text)?;
        let Some(relation) = p.first() else {
            return Err(ModelError::Parse {
                msg: "a rooted path needs at least a relation name".into(),
                line: 1,
                col: 1,
            });
        };
        Ok(RootedPath {
            relation,
            path: p.tail().expect("nonempty"),
        })
    }

    /// Total number of labels including the relation name.
    pub fn len(&self) -> usize {
        1 + self.path.len()
    }

    /// Never empty: there is always at least the relation name.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Extends the relative part by one label.
    pub fn child(&self, label: Label) -> RootedPath {
        RootedPath {
            relation: self.relation,
            path: self.path.child(label),
        }
    }

    /// Concatenates a relative path.
    pub fn join(&self, rel: &Path) -> RootedPath {
        RootedPath {
            relation: self.relation,
            path: self.path.join(rel),
        }
    }

    /// Prefix relation lifted to rooted paths (same relation, relative
    /// prefix).
    pub fn is_prefix_of(&self, other: &RootedPath) -> bool {
        self.relation == other.relation && self.path.is_prefix_of(&other.path)
    }

    /// Proper-prefix relation lifted to rooted paths.
    pub fn is_proper_prefix_of(&self, other: &RootedPath) -> bool {
        self.relation == other.relation && self.path.is_proper_prefix_of(&other.path)
    }
}

impl fmt::Display for RootedPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.relation)?;
        if !self.path.is_empty() {
            write!(f, ":{}", self.path)?;
        }
        Ok(())
    }
}

impl fmt::Debug for RootedPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RootedPath({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in ["A", "A:B", "students:sid", "a_1:b2:c"] {
            assert_eq!(p(s).to_string(), s);
        }
        assert_eq!(Path::empty().to_string(), "ε");
        assert_eq!(p(""), Path::empty());
        assert_eq!(p(" A : B "), p("A:B"));
    }

    #[test]
    fn parse_rejects_bad_segments() {
        assert!(Path::parse("A::B").is_err());
        assert!(Path::parse(":A").is_err());
        assert!(Path::parse("A:").is_err());
        assert!(Path::parse("1abc").is_err());
        assert!(Path::parse("a-b").is_err());
    }

    #[test]
    fn prefix_relation() {
        assert!(p("A").is_prefix_of(&p("A:B")));
        assert!(p("A:B").is_prefix_of(&p("A:B")));
        assert!(!p("A:B").is_proper_prefix_of(&p("A:B")));
        assert!(p("A").is_proper_prefix_of(&p("A:B")));
        assert!(!p("B").is_prefix_of(&p("A:B")));
        assert!(Path::empty().is_prefix_of(&p("A")));
        assert!(Path::empty().is_proper_prefix_of(&p("A")));
    }

    #[test]
    fn follows_matches_paper_examples() {
        // "A path A follows any path p, |p| ≥ 1."
        assert!(p("A").follows(&p("Z")));
        assert!(p("A").follows(&p("X:Y")));
        // "A path A:B follows A:B, A:C:D, but not A, E, and F:G."
        assert!(p("A:B").follows(&p("A:B")));
        assert!(p("A:B").follows(&p("A:C:D")));
        assert!(!p("A:B").follows(&p("A")));
        assert!(!p("A:B").follows(&p("E")));
        assert!(!p("A:B").follows(&p("F:G")));
        // ε follows nothing.
        assert!(!Path::empty().follows(&p("A")));
    }

    #[test]
    fn common_prefix_and_strip() {
        assert_eq!(p("A:B:C").common_prefix(&p("A:B:D")), p("A:B"));
        assert_eq!(p("A").common_prefix(&p("B")), Path::empty());
        assert_eq!(p("A:B:C").strip_prefix(&p("A")), Some(p("B:C")));
        assert_eq!(p("A:B").strip_prefix(&p("A:B")), Some(Path::empty()));
        assert_eq!(p("A:B").strip_prefix(&p("B")), None);
    }

    #[test]
    fn join_child_parent_tail() {
        assert_eq!(p("A").join(&p("B:C")), p("A:B:C"));
        assert_eq!(p("A").child(Label::new("B")), p("A:B"));
        assert_eq!(p("A:B").parent(), Some(p("A")));
        assert_eq!(p("A").parent(), Some(Path::empty()));
        assert_eq!(Path::empty().parent(), None);
        assert_eq!(p("A:B:C").tail(), Some(p("B:C")));
    }

    #[test]
    fn prefixes_iterator() {
        let pres: Vec<Path> = p("A:B:C").prefixes().collect();
        assert_eq!(pres, vec![p("A"), p("A:B"), p("A:B:C")]);
        assert_eq!(Path::empty().prefixes().count(), 0);
    }

    #[test]
    fn rooted_paths() {
        let r = RootedPath::parse("Course:students:sid").unwrap();
        assert_eq!(r.relation, Label::new("Course"));
        assert_eq!(r.path, p("students:sid"));
        assert_eq!(r.to_string(), "Course:students:sid");
        assert_eq!(RootedPath::relation_only(Label::new("R")).to_string(), "R");
        assert!(RootedPath::parse("").is_err());
    }

    #[test]
    fn rooted_prefixes() {
        let a = RootedPath::parse("R:A").unwrap();
        let ab = RootedPath::parse("R:A:B").unwrap();
        let s = RootedPath::parse("S:A").unwrap();
        assert!(a.is_prefix_of(&ab));
        assert!(a.is_proper_prefix_of(&ab));
        assert!(!s.is_prefix_of(&ab));
        assert!(RootedPath::relation_only(Label::new("R")).is_prefix_of(&a));
    }

    #[test]
    fn ordering_is_lexicographic_on_labels() {
        // Only consistency matters (used for canonical forms).
        let mut v = [p("B"), p("A:B"), p("A")];
        v.sort();
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }
}
