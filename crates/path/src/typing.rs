//! Well-typedness of path expressions (Definition 2.1) and enumeration of
//! the paths of a schema (Definition A.1).
//!
//! A path `A1:…:Ak` is resolved against a type by alternating projection
//! (label) and set traversal (`:`): each interior label must be a
//! set-of-records attribute so that traversal can continue; the last label
//! may be base- or set-typed.

use crate::path::{Path, RootedPath};
use nfd_model::{Label, RecordType, Schema, Type};
use std::fmt;

/// Errors raised while typing a path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PathTypeError {
    /// The path mentions a label the current record type does not declare.
    NoSuchLabel {
        /// The offending label.
        label: Label,
        /// The path being resolved.
        path: String,
    },
    /// An interior label of the path is not set-of-records typed, so
    /// traversal cannot continue past it.
    NotTraversable {
        /// The offending label.
        label: Label,
        /// The path being resolved.
        path: String,
    },
    /// The relation is not part of the schema.
    UnknownRelation(Label),
    /// A base path must resolve to a set type (its value supplies the
    /// quantified tuples `v1, v2` of Definition 2.4).
    BaseNotSet {
        /// The offending rooted path.
        path: String,
    },
}

impl fmt::Display for PathTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathTypeError::NoSuchLabel { label, path } => {
                write!(f, "label `{label}` in path `{path}` does not exist")
            }
            PathTypeError::NotTraversable { label, path } => write!(
                f,
                "cannot traverse past `{label}` in path `{path}`: it is not a set of records"
            ),
            PathTypeError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            PathTypeError::BaseNotSet { path } => {
                write!(f, "base path `{path}` does not resolve to a set type")
            }
        }
    }
}

impl std::error::Error for PathTypeError {}

/// Resolves `path` starting from a record type: the first label projects a
/// field of `rec`; each subsequent label traverses into the preceding
/// (set-of-records) field. Returns the type of the last label.
///
/// The empty path is not resolvable from a record (the paper's NFD
/// components always have `k ≥ 1` labels); callers handle `ε` themselves.
pub fn resolve_in_record<'t>(rec: &'t RecordType, path: &Path) -> Result<&'t Type, PathTypeError> {
    let mut labels = path.labels().iter();
    let Some(&first) = labels.next() else {
        // ε has no "type of the last label"; report as a missing label.
        return Err(PathTypeError::NoSuchLabel {
            label: Label::new("ε"),
            path: path.to_string(),
        });
    };
    let mut cur: &Type = rec.field_type(first).ok_or(PathTypeError::NoSuchLabel {
        label: first,
        path: path.to_string(),
    })?;
    let mut prev = first;
    for &label in labels {
        let inner = cur.element_record().ok_or(PathTypeError::NotTraversable {
            label: prev,
            path: path.to_string(),
        })?;
        cur = inner.field_type(label).ok_or(PathTypeError::NoSuchLabel {
            label,
            path: path.to_string(),
        })?;
        prev = label;
    }
    Ok(cur)
}

/// Is `path` well-typed with respect to the record type `rec`
/// (Definition 2.1)? `ε` is well-typed with respect to everything.
pub fn is_well_typed(rec: &RecordType, path: &Path) -> bool {
    path.is_empty() || resolve_in_record(rec, path).is_ok()
}

/// Resolves a rooted path `R:y` against a schema: the relation name selects
/// `τ^R` and `y` resolves inside its element records. A bare relation name
/// resolves to `τ^R` itself.
pub fn resolve_rooted<'s>(
    schema: &'s Schema,
    rooted: &RootedPath,
) -> Result<&'s Type, PathTypeError> {
    let ty = schema
        .relation_type(rooted.relation)
        .map_err(|_| PathTypeError::UnknownRelation(rooted.relation))?;
    if rooted.path.is_empty() {
        return Ok(ty);
    }
    let rec = ty.element_record().ok_or(PathTypeError::NotTraversable {
        label: rooted.relation,
        path: rooted.to_string(),
    })?;
    resolve_in_record(rec, &rooted.path)
}

/// The element record type at the end of a base path: a base path must
/// resolve to a set-of-records type whose elements are what the NFD's
/// component paths are typed against.
pub fn base_element_record<'s>(
    schema: &'s Schema,
    base: &RootedPath,
) -> Result<&'s RecordType, PathTypeError> {
    let ty = resolve_rooted(schema, base)?;
    ty.element_record().ok_or(PathTypeError::BaseNotSet {
        path: base.to_string(),
    })
}

/// All non-empty paths well-typed with respect to a record type, in
/// shortest-first (then declaration) order. These are the relative versions
/// of `Paths(SC)` (Definition A.1).
pub fn paths_of_record(rec: &RecordType) -> Vec<Path> {
    let mut out = Vec::new();
    let mut frontier: Vec<(Path, &RecordType)> = vec![(Path::empty(), rec)];
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for (prefix, r) in frontier {
            for f in r.fields() {
                let p = prefix.child(f.label);
                out.push(p.clone());
                if let Some(inner) = f.ty.element_record() {
                    next.push((p, inner));
                }
            }
        }
        frontier = next;
    }
    out
}

/// `Paths_SC(R)` (Definition A.1): all rooted paths `R:p'` of the schema,
/// including the bare relation name.
pub fn paths_of_relation(
    schema: &Schema,
    relation: Label,
) -> Result<Vec<RootedPath>, PathTypeError> {
    let ty = schema
        .relation_type(relation)
        .map_err(|_| PathTypeError::UnknownRelation(relation))?;
    let mut out = vec![RootedPath::relation_only(relation)];
    if let Some(rec) = ty.element_record() {
        out.extend(
            paths_of_record(rec)
                .into_iter()
                .map(|p| RootedPath::new(relation, p)),
        );
    }
    Ok(out)
}

/// `Paths(SC)` (Definition A.1): all rooted paths of the schema.
pub fn paths_of_schema(schema: &Schema) -> Vec<RootedPath> {
    schema
        .relation_names()
        .flat_map(|r| paths_of_relation(schema, r).expect("relation exists"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::parse(
            "Course : { <cnum: string, time: int,
                         students: {<sid: int, age: int, grade: string>},
                         books: {<isbn: string, title: string>}> };",
        )
        .unwrap()
    }

    fn course_rec(s: &Schema) -> &RecordType {
        s.relation_type(Label::new("Course"))
            .unwrap()
            .element_record()
            .unwrap()
    }

    #[test]
    fn resolve_base_and_nested() {
        let s = schema();
        let rec = course_rec(&s);
        let t = resolve_in_record(rec, &Path::of(["cnum"])).unwrap();
        assert!(t.is_base());
        let t = resolve_in_record(rec, &Path::of(["students"])).unwrap();
        assert!(t.is_set());
        let t = resolve_in_record(rec, &Path::of(["students", "sid"])).unwrap();
        assert!(t.is_base());
    }

    #[test]
    fn paper_welltyped_example() {
        // "A:B is well-typed wrt <A:{<B:int, C:int>}>, but not wrt <A:int>."
        let s = Schema::parse("R : {<A: {<B: int, C: int>}>}; S : {<A: int>};").unwrap();
        let r = s
            .relation_type(Label::new("R"))
            .unwrap()
            .element_record()
            .unwrap();
        let t = s
            .relation_type(Label::new("S"))
            .unwrap()
            .element_record()
            .unwrap();
        assert!(is_well_typed(r, &Path::of(["A", "B"])));
        assert!(!is_well_typed(t, &Path::of(["A", "B"])));
        assert!(is_well_typed(t, &Path::of(["A"])));
        assert!(is_well_typed(t, &Path::empty()));
    }

    #[test]
    fn resolve_errors() {
        let s = schema();
        let rec = course_rec(&s);
        assert!(matches!(
            resolve_in_record(rec, &Path::of(["nope"])),
            Err(PathTypeError::NoSuchLabel { .. })
        ));
        assert!(matches!(
            resolve_in_record(rec, &Path::of(["cnum", "x"])),
            Err(PathTypeError::NotTraversable { .. })
        ));
        assert!(matches!(
            resolve_in_record(rec, &Path::of(["students", "nope"])),
            Err(PathTypeError::NoSuchLabel { .. })
        ));
    }

    #[test]
    fn resolve_rooted_paths() {
        let s = schema();
        let t = resolve_rooted(&s, &RootedPath::parse("Course").unwrap()).unwrap();
        assert!(t.is_set_of_records());
        let t = resolve_rooted(&s, &RootedPath::parse("Course:students").unwrap()).unwrap();
        assert!(t.is_set());
        assert!(matches!(
            resolve_rooted(&s, &RootedPath::parse("Nope:x").unwrap()),
            Err(PathTypeError::UnknownRelation(_))
        ));
    }

    #[test]
    fn base_element_record_requires_set() {
        let s = schema();
        let rec = base_element_record(&s, &RootedPath::parse("Course:students").unwrap()).unwrap();
        assert!(rec.field_type(Label::new("sid")).is_some());
        assert!(matches!(
            base_element_record(&s, &RootedPath::parse("Course:cnum").unwrap()),
            Err(PathTypeError::BaseNotSet { .. })
        ));
    }

    #[test]
    fn paths_enumeration_matches_schema() {
        let s = schema();
        let rec = course_rec(&s);
        let ps: Vec<String> = paths_of_record(rec).iter().map(Path::to_string).collect();
        assert_eq!(
            ps,
            [
                "cnum",
                "time",
                "students",
                "books", // depth 1
                "students:sid",
                "students:age",
                "students:grade",
                "books:isbn",
                "books:title",
            ]
        );
        let rooted = paths_of_relation(&s, Label::new("Course")).unwrap();
        assert_eq!(rooted.len(), 10); // the 9 above plus the bare relation
        assert_eq!(rooted[0].to_string(), "Course");
        assert_eq!(paths_of_schema(&s).len(), 10);
    }

    #[test]
    fn base_sets_terminate_enumeration() {
        let s = Schema::parse("R : {<A: {int}, B: int>};").unwrap();
        let rec = s
            .relation_type(Label::new("R"))
            .unwrap()
            .element_record()
            .unwrap();
        let ps: Vec<String> = paths_of_record(rec).iter().map(Path::to_string).collect();
        assert_eq!(ps, ["A", "B"]);
        // A is a set of base values: not traversable.
        assert!(matches!(
            resolve_in_record(rec, &Path::of(["A", "x"])),
            Err(PathTypeError::NotTraversable { .. })
        ));
    }
}
