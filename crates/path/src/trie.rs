//! Prefix tries over sets of paths.
//!
//! The satisfaction condition of Definition 2.4 requires that when two
//! component paths `xi, xj` of an NFD share a common prefix `x`, their
//! values are obtained by *coinciding* choices along `x`. A [`PathTrie`]
//! makes this structural: shared prefixes become shared trie nodes, and one
//! element choice is made per set-valued node, exactly as the logic
//! translation of Section 2.2 introduces one quantified variable per label.

use crate::path::Path;
use nfd_model::Label;

/// A node of a [`PathTrie`]; identified by the path from the root.
#[derive(Clone, Debug)]
pub struct TrieNode {
    /// Label of this step.
    pub label: Label,
    /// If the path ending here is one of the trie's target paths, its index
    /// in [`PathTrie::targets`].
    pub target: Option<usize>,
    /// Children (paths extending through this node). Non-empty children
    /// means this node's value is traversed into, so it must be a set of
    /// records.
    pub children: Vec<TrieNode>,
}

/// A trie over a set of non-empty paths (the `x1…xm` of an NFD).
#[derive(Clone, Debug)]
pub struct PathTrie {
    roots: Vec<TrieNode>,
    targets: Vec<Path>,
}

impl PathTrie {
    /// Builds a trie from target paths. Duplicate paths collapse onto one
    /// target slot. Empty paths are ignored (NFD components have ≥ 1
    /// label).
    pub fn new(paths: impl IntoIterator<Item = Path>) -> PathTrie {
        let mut trie = PathTrie {
            roots: Vec::new(),
            targets: Vec::new(),
        };
        for p in paths {
            if p.is_empty() {
                continue;
            }
            trie.insert(&p);
        }
        trie
    }

    fn insert(&mut self, path: &Path) {
        if self.target_index(path).is_some() {
            return;
        }
        let idx = self.targets.len();
        self.targets.push(path.clone());
        let mut nodes = &mut self.roots;
        let labels = path.labels();
        for (i, &label) in labels.iter().enumerate() {
            let pos = match nodes.iter().position(|n| n.label == label) {
                Some(p) => p,
                None => {
                    nodes.push(TrieNode {
                        label,
                        target: None,
                        children: Vec::new(),
                    });
                    nodes.len() - 1
                }
            };
            if i + 1 == labels.len() {
                nodes[pos].target = Some(idx);
                return;
            }
            nodes = &mut nodes[pos].children;
        }
    }

    /// The target paths, in insertion order. Assignment values are indexed
    /// compatibly with this list.
    pub fn targets(&self) -> &[Path] {
        &self.targets
    }

    /// Index of `path` among the targets, if present.
    pub fn target_index(&self, path: &Path) -> Option<usize> {
        self.targets.iter().position(|t| t == path)
    }

    /// Root nodes (one per distinct first label).
    pub fn roots(&self) -> &[TrieNode] {
        &self.roots
    }

    /// Number of target paths.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Is the trie empty (no target paths)?
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Number of *traversed* (internal) nodes — each contributes one
    /// quantified variable in the logic translation.
    pub fn internal_node_count(&self) -> usize {
        fn count(nodes: &[TrieNode]) -> usize {
            nodes
                .iter()
                .map(|n| usize::from(!n.children.is_empty()) + count(&n.children))
                .sum()
        }
        count(&self.roots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    #[test]
    fn shared_prefixes_share_nodes() {
        let t = PathTrie::new([p("students:sid"), p("students:age"), p("cnum")]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.roots().len(), 2); // students, cnum
        let students = t
            .roots()
            .iter()
            .find(|n| n.label == Label::new("students"))
            .unwrap();
        assert_eq!(students.children.len(), 2);
        assert!(students.target.is_none());
        assert_eq!(t.internal_node_count(), 1);
    }

    #[test]
    fn node_can_be_target_and_internal() {
        // X = {A, A:B}: A is compared as a set AND traversed.
        let t = PathTrie::new([p("A"), p("A:B")]);
        let a = &t.roots()[0];
        assert_eq!(a.target, Some(0));
        assert_eq!(a.children.len(), 1);
        assert_eq!(a.children[0].target, Some(1));
    }

    #[test]
    fn duplicates_collapse() {
        let t = PathTrie::new([p("A:B"), p("A:B")]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.target_index(&p("A:B")), Some(0));
    }

    #[test]
    fn empty_paths_ignored() {
        let t = PathTrie::new([Path::empty(), p("A")]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn target_order_is_insertion_order() {
        let t = PathTrie::new([p("B"), p("A"), p("C:D")]);
        assert_eq!(
            t.targets().iter().map(Path::to_string).collect::<Vec<_>>(),
            ["B", "A", "C:D"]
        );
        assert_eq!(t.target_index(&p("C:D")), Some(2));
        assert_eq!(t.target_index(&p("C")), None);
    }
}
