//! # nfd-relational — the classical FD baseline
//!
//! Nested functional dependencies generalize classical functional
//! dependencies: on a flat (1NF) schema, an NFD `R:[A1,…,Ak → B]` *is* the
//! FD `A1…Ak → B`, and the eight NFD-rules collapse to Armstrong's axioms
//! (push-in, pull-out, locality, singleton and prefix become inapplicable —
//! there is nothing nested to move through).
//!
//! This crate implements that baseline independently and classically:
//!
//! * [`Fd`] — functional dependencies over a set of attributes;
//! * [`closure`] — the linear-time attribute-closure algorithm
//!   (Beeri–Bernstein), the flat analogue of the paper's `(x0, X, Σ)*`;
//! * [`implies`] — the implication test `Σ ⊨ X → Y`;
//! * [`armstrong`] — Armstrong's axioms as syntactic transformers (the
//!   flat analogues of `nfd-core::rules`);
//! * [`candidate_keys`] and [`minimal_cover`] — the standard design-theory
//!   algorithms built on closure.
//!
//! The test suites of this repository use it two ways: differential
//! testing (the NFD engine restricted to flat schemas must agree with this
//! crate on every random instance of the implication problem) and as the
//! benchmark baseline measuring what the generality of NFDs costs.

#![warn(missing_docs)]

pub mod armstrong;

use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// An attribute, identified by name.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Attribute(pub String);

impl Attribute {
    /// Builds an attribute from a name.
    pub fn new(name: impl Into<String>) -> Attribute {
        Attribute(name.into())
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Attribute {
    fn from(s: &str) -> Attribute {
        Attribute::new(s)
    }
}

/// A set of attributes, kept sorted (attribute sets are the LHS/RHS of
/// FDs and the unit the closure algorithm manipulates).
pub type AttrSet = BTreeSet<Attribute>;

/// Builds an [`AttrSet`] from names: `attrs(["A", "B"])`.
pub fn attrs<'a>(names: impl IntoIterator<Item = &'a str>) -> AttrSet {
    names.into_iter().map(Attribute::from).collect()
}

/// A functional dependency `X → Y`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd {
    /// Determining attributes.
    pub lhs: AttrSet,
    /// Determined attributes.
    pub rhs: AttrSet,
}

impl Fd {
    /// Builds `X → Y`.
    pub fn new(lhs: AttrSet, rhs: AttrSet) -> Fd {
        Fd { lhs, rhs }
    }

    /// Builds `X → Y` from names.
    pub fn of<'a>(
        lhs: impl IntoIterator<Item = &'a str>,
        rhs: impl IntoIterator<Item = &'a str>,
    ) -> Fd {
        Fd::new(attrs(lhs), attrs(rhs))
    }

    /// Is the FD trivial (`Y ⊆ X`)?
    pub fn is_trivial(&self) -> bool {
        self.rhs.is_subset(&self.lhs)
    }

    /// Splits into FDs with singleton RHS (the decomposition rule — which,
    /// as Section 3.2 of the paper notes, is exactly what fails for NFDs
    /// once empty sets are allowed).
    pub fn split(&self) -> Vec<Fd> {
        self.rhs
            .iter()
            .map(|a| Fd::new(self.lhs.clone(), [a.clone()].into_iter().collect()))
            .collect()
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let join = |s: &AttrSet| s.iter().map(|a| a.0.as_str()).collect::<Vec<_>>().join(",");
        write!(f, "{} -> {}", join(&self.lhs), join(&self.rhs))
    }
}

/// The attribute closure `X⁺` under Σ, via the linear-time counting
/// algorithm of Beeri and Bernstein: each FD keeps a count of LHS
/// attributes not yet in the closure; when a count hits zero the RHS joins.
pub fn closure(sigma: &[Fd], x: &AttrSet) -> AttrSet {
    let mut result: AttrSet = x.clone();
    // count[i] = number of attributes of sigma[i].lhs not yet in result.
    let mut count: Vec<usize> = sigma.iter().map(|fd| fd.lhs.len()).collect();
    // For each attribute, the FDs whose LHS mentions it.
    let mut uses: HashMap<&Attribute, Vec<usize>> = HashMap::new();
    for (i, fd) in sigma.iter().enumerate() {
        for a in &fd.lhs {
            uses.entry(a).or_default().push(i);
        }
    }
    let mut queue: Vec<Attribute> = x.iter().cloned().collect();
    // FDs with empty LHS fire immediately.
    for (i, fd) in sigma.iter().enumerate() {
        if count[i] == 0 {
            for a in &fd.rhs {
                if result.insert(a.clone()) {
                    queue.push(a.clone());
                }
            }
        }
    }
    while let Some(a) = queue.pop() {
        if let Some(indices) = uses.get(&a) {
            for &i in indices {
                count[i] -= 1;
                if count[i] == 0 {
                    for b in &sigma[i].rhs {
                        if result.insert(b.clone()) {
                            queue.push(b.clone());
                        }
                    }
                }
            }
        }
    }
    result
}

/// Does Σ logically imply `fd`? (`fd.rhs ⊆ fd.lhs⁺`.)
pub fn implies(sigma: &[Fd], fd: &Fd) -> bool {
    fd.rhs.is_subset(&closure(sigma, &fd.lhs))
}

/// Are two FD sets equivalent (each implies every member of the other)?
pub fn equivalent(a: &[Fd], b: &[Fd]) -> bool {
    a.iter().all(|fd| implies(b, fd)) && b.iter().all(|fd| implies(a, fd))
}

/// All candidate keys of a relation with attributes `universe` under Σ,
/// by the standard prune-and-minimize search. Exponential in the worst
/// case, as the problem demands.
pub fn candidate_keys(universe: &AttrSet, sigma: &[Fd]) -> Vec<AttrSet> {
    // Attributes that appear on no RHS must be in every key.
    let mut rhs_attrs: AttrSet = AttrSet::new();
    for fd in sigma {
        for a in &fd.rhs {
            if !fd.lhs.contains(a) {
                rhs_attrs.insert(a.clone());
            }
        }
    }
    let core: AttrSet = universe.difference(&rhs_attrs).cloned().collect();
    let optional: Vec<Attribute> = universe.intersection(&rhs_attrs).cloned().collect();
    let is_superkey = |s: &AttrSet| closure(sigma, s).is_superset(universe);

    if is_superkey(&core) {
        return vec![core];
    }
    let mut keys: Vec<AttrSet> = Vec::new();
    // Breadth-first over subset sizes guarantees minimality w.r.t. size…
    for size in 1..=optional.len() {
        for combo in combinations(&optional, size) {
            let mut cand = core.clone();
            cand.extend(combo.iter().cloned());
            if !is_superkey(&cand) {
                continue;
            }
            // …and the explicit superset check guarantees minimality
            // w.r.t. inclusion.
            if keys.iter().any(|k| k.is_subset(&cand)) {
                continue;
            }
            keys.push(cand);
        }
    }
    keys.sort();
    keys
}

fn combinations(items: &[Attribute], k: usize) -> Vec<Vec<Attribute>> {
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(k);
    fn go(
        items: &[Attribute],
        k: usize,
        start: usize,
        current: &mut Vec<Attribute>,
        out: &mut Vec<Vec<Attribute>>,
    ) {
        if current.len() == k {
            out.push(current.clone());
            return;
        }
        for i in start..items.len() {
            current.push(items[i].clone());
            go(items, k, i + 1, current, out);
            current.pop();
        }
    }
    go(items, k, 0, &mut current, &mut out);
    out
}

/// A minimal cover of Σ: singleton RHS, no extraneous LHS attributes, no
/// redundant FDs. Equivalent to Σ.
pub fn minimal_cover(sigma: &[Fd]) -> Vec<Fd> {
    // 1. Singleton right-hand sides.
    let mut fds: Vec<Fd> = sigma.iter().flat_map(Fd::split).collect();
    fds.sort();
    fds.dedup();
    // 2. Remove extraneous LHS attributes.
    let mut i = 0;
    while i < fds.len() {
        let mut changed = true;
        while changed {
            changed = false;
            let lhs: Vec<Attribute> = fds[i].lhs.iter().cloned().collect();
            for a in lhs {
                if fds[i].lhs.len() <= 1 {
                    break;
                }
                let mut reduced = fds[i].lhs.clone();
                reduced.remove(&a);
                if closure(&fds, &reduced).is_superset(&fds[i].rhs) {
                    fds[i].lhs = reduced;
                    changed = true;
                }
            }
        }
        i += 1;
    }
    fds.sort();
    fds.dedup();
    // 3. Remove redundant FDs.
    let mut i = 0;
    while i < fds.len() {
        let fd = fds[i].clone();
        let rest: Vec<Fd> = fds
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, f)| f.clone())
            .collect();
        if implies(&rest, &fd) {
            fds.remove(i);
        } else {
            i += 1;
        }
    }
    fds
}

/// Is `X` a superkey of the relation with attributes `universe`?
pub fn is_superkey(universe: &AttrSet, sigma: &[Fd], x: &AttrSet) -> bool {
    closure(sigma, x).is_superset(universe)
}

/// Is the schema in Boyce–Codd normal form (every non-trivial FD has a
/// superkey LHS)?
pub fn is_bcnf(universe: &AttrSet, sigma: &[Fd]) -> bool {
    sigma
        .iter()
        .filter(|fd| !fd.is_trivial())
        .all(|fd| is_superkey(universe, sigma, &fd.lhs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_textbook_example() {
        // R(A,B,C,D,E,F), A→BC, B→E, CD→EF (Ullman).
        let sigma = vec![
            Fd::of(["A"], ["B", "C"]),
            Fd::of(["B"], ["E"]),
            Fd::of(["C", "D"], ["E", "F"]),
        ];
        let c = closure(&sigma, &attrs(["A", "D"]));
        assert_eq!(c, attrs(["A", "B", "C", "D", "E", "F"]));
        assert!(implies(&sigma, &Fd::of(["A", "D"], ["F"])));
        assert!(!implies(&sigma, &Fd::of(["A"], ["F"])));
    }

    #[test]
    fn empty_lhs_fd_is_a_constant() {
        let sigma = vec![Fd::of([], ["A"]), Fd::of(["A"], ["B"])];
        let c = closure(&sigma, &attrs([]));
        assert_eq!(c, attrs(["A", "B"]));
    }

    #[test]
    fn trivial_and_split() {
        let fd = Fd::of(["A", "B"], ["A"]);
        assert!(fd.is_trivial());
        let fd2 = Fd::of(["A"], ["B", "C"]);
        assert_eq!(
            fd2.split(),
            vec![Fd::of(["A"], ["B"]), Fd::of(["A"], ["C"])]
        );
    }

    #[test]
    fn candidate_keys_simple() {
        // R(A,B,C): A→B, B→C. Key: {A}.
        let sigma = vec![Fd::of(["A"], ["B"]), Fd::of(["B"], ["C"])];
        let keys = candidate_keys(&attrs(["A", "B", "C"]), &sigma);
        assert_eq!(keys, vec![attrs(["A"])]);
    }

    #[test]
    fn candidate_keys_cyclic() {
        // R(A,B): A→B, B→A. Keys: {A} and {B}.
        let sigma = vec![Fd::of(["A"], ["B"]), Fd::of(["B"], ["A"])];
        let keys = candidate_keys(&attrs(["A", "B"]), &sigma);
        assert_eq!(keys, vec![attrs(["A"]), attrs(["B"])]);
    }

    #[test]
    fn candidate_keys_no_fds() {
        let keys = candidate_keys(&attrs(["A", "B"]), &[]);
        assert_eq!(keys, vec![attrs(["A", "B"])]);
    }

    #[test]
    fn minimal_cover_removes_redundancy() {
        // A→B, B→C, A→C: the last is redundant.
        let sigma = vec![
            Fd::of(["A"], ["B"]),
            Fd::of(["B"], ["C"]),
            Fd::of(["A"], ["C"]),
        ];
        let cover = minimal_cover(&sigma);
        assert_eq!(cover.len(), 2);
        assert!(equivalent(&cover, &sigma));
    }

    #[test]
    fn minimal_cover_trims_extraneous_lhs() {
        // AB→C with A→B: B is extraneous.
        let sigma = vec![Fd::of(["A", "B"], ["C"]), Fd::of(["A"], ["B"])];
        let cover = minimal_cover(&sigma);
        assert!(cover.contains(&Fd::of(["A"], ["C"])));
        assert!(equivalent(&cover, &sigma));
    }

    #[test]
    fn bcnf_check() {
        let universe = attrs(["A", "B", "C"]);
        // A→B with key A…C? A+ = AB ≠ universe: not a superkey → not BCNF.
        assert!(!is_bcnf(&universe, &[Fd::of(["A"], ["B"])]));
        // A→BC: A is a superkey → BCNF.
        assert!(is_bcnf(&universe, &[Fd::of(["A"], ["B", "C"])]));
    }

    #[test]
    fn equivalence() {
        let a = vec![Fd::of(["A"], ["B", "C"])];
        let b = vec![Fd::of(["A"], ["B"]), Fd::of(["A"], ["C"])];
        assert!(equivalent(&a, &b));
        let c = vec![Fd::of(["A"], ["B"])];
        assert!(!equivalent(&a, &c));
    }

    #[test]
    fn display() {
        assert_eq!(Fd::of(["A", "B"], ["C"]).to_string(), "A,B -> C");
    }
}
