//! Armstrong's axioms as syntactic transformers.
//!
//! These are the flat counterparts of the first three NFD-rules
//! (reflexivity, augmentation, transitivity); the derived rules (union,
//! decomposition, pseudo-transitivity) are included because the paper
//! leans on them when discussing what *fails* for NFDs with empty sets
//! (Section 3.2: "the decomposition rule follows from reflexivity and
//! transitivity and cannot therefore be uniformly applied").

use crate::{AttrSet, Fd};

/// **Reflexivity**: if `Y ⊆ X` then `X → Y`.
pub fn reflexivity(x: &AttrSet, y: &AttrSet) -> Option<Fd> {
    y.is_subset(x).then(|| Fd::new(x.clone(), y.clone()))
}

/// **Augmentation**: from `X → Y` conclude `XZ → YZ`.
pub fn augmentation(fd: &Fd, z: &AttrSet) -> Fd {
    Fd::new(
        fd.lhs.union(z).cloned().collect(),
        fd.rhs.union(z).cloned().collect(),
    )
}

/// **Transitivity**: from `X → Y` and `Y → Z` conclude `X → Z`.
pub fn transitivity(xy: &Fd, yz: &Fd) -> Option<Fd> {
    yz.lhs
        .is_subset(&xy.rhs)
        .then(|| Fd::new(xy.lhs.clone(), yz.rhs.clone()))
}

/// **Union** (derived): from `X → Y` and `X → Z` conclude `X → YZ`.
pub fn union(a: &Fd, b: &Fd) -> Option<Fd> {
    (a.lhs == b.lhs).then(|| Fd::new(a.lhs.clone(), a.rhs.union(&b.rhs).cloned().collect()))
}

/// **Decomposition** (derived): from `X → Y` and `Z ⊆ Y` conclude `X → Z`.
pub fn decomposition(fd: &Fd, z: &AttrSet) -> Option<Fd> {
    z.is_subset(&fd.rhs)
        .then(|| Fd::new(fd.lhs.clone(), z.clone()))
}

/// **Pseudo-transitivity** (derived): from `X → Y` and `WY → Z` conclude
/// `WX → Z`.
pub fn pseudo_transitivity(xy: &Fd, wyz: &Fd) -> Option<Fd> {
    if !xy.rhs.is_subset(&wyz.lhs) {
        return None;
    }
    let w: AttrSet = wyz.lhs.difference(&xy.rhs).cloned().collect();
    Some(Fd::new(
        w.union(&xy.lhs).cloned().collect(),
        wyz.rhs.clone(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs;

    #[test]
    fn reflexivity_requires_subset() {
        assert_eq!(
            reflexivity(&attrs(["A", "B"]), &attrs(["A"])),
            Some(Fd::of(["A", "B"], ["A"]))
        );
        assert_eq!(reflexivity(&attrs(["A"]), &attrs(["B"])), None);
    }

    #[test]
    fn augmentation_adds_both_sides() {
        let fd = Fd::of(["A"], ["B"]);
        assert_eq!(
            augmentation(&fd, &attrs(["C"])),
            Fd::of(["A", "C"], ["B", "C"])
        );
    }

    #[test]
    fn transitivity_chains() {
        let ab = Fd::of(["A"], ["B"]);
        let bc = Fd::of(["B"], ["C"]);
        assert_eq!(transitivity(&ab, &bc), Some(Fd::of(["A"], ["C"])));
        assert_eq!(transitivity(&bc, &ab), None);
    }

    #[test]
    fn union_and_decomposition() {
        let ab = Fd::of(["A"], ["B"]);
        let ac = Fd::of(["A"], ["C"]);
        assert_eq!(union(&ab, &ac), Some(Fd::of(["A"], ["B", "C"])));
        let abc = Fd::of(["A"], ["B", "C"]);
        assert_eq!(
            decomposition(&abc, &attrs(["B"])),
            Some(Fd::of(["A"], ["B"]))
        );
        assert_eq!(decomposition(&abc, &attrs(["D"])), None);
    }

    #[test]
    fn pseudo_transitivity_combines() {
        // A→B, CB→D ⟹ CA→D.
        let ab = Fd::of(["A"], ["B"]);
        let cbd = Fd::of(["C", "B"], ["D"]);
        assert_eq!(
            pseudo_transitivity(&ab, &cbd),
            Some(Fd::of(["A", "C"], ["D"]))
        );
        // B not in the middle LHS: inapplicable.
        let cd = Fd::of(["C"], ["D"]);
        assert_eq!(pseudo_transitivity(&ab, &cd), None);
    }

    /// Soundness of each axiom against the closure-based decision
    /// procedure.
    #[test]
    fn axioms_agree_with_closure() {
        let sigma = vec![Fd::of(["A"], ["B"]), Fd::of(["B", "C"], ["D"])];
        let derived = pseudo_transitivity(&sigma[0], &sigma[1]).unwrap();
        assert!(crate::implies(&sigma, &derived));
    }
}
