//! The saturation-based implication engine.
//!
//! Deciding `Σ ⊨ σ` is the paper's central question; Theorem 3.1 shows the
//! eight NFD-rules are sound and complete for it (without empty sets). The
//! engine decides implication by working in the *simple form* of
//! Section 3.2 (base paths normalized to relation names via push-in /
//! pull-out) and saturating the dependency pool under the remaining rules:
//!
//! * **prefix-weakening** — each LHS path `x1:A` may be shortened to `x1`
//!   when `x1` is not a prefix of the RHS;
//! * **full-locality** — for every proper prefix `x` of the RHS, the
//!   out-of-subtree LHS paths may be replaced by `x` itself;
//! * **resolution** — transitivity composed at the pool level: a dependency
//!   producing `p` may discharge `p` from another dependency's LHS;
//! * **singleton introduction** — when the pool proves `x → x:Ai` for
//!   every attribute of a set-of-records path `x`, the singleton rule's
//!   conclusion `x:A1,…,x:An → x` joins the pool.
//!
//! A query `Σ ⊢ R:[X → y]` then chains over the saturated pool: starting
//! from `C = X` (reflexivity), any pool dependency whose LHS is contained
//! in `C` contributes its RHS (transitivity + augmentation), until `y`
//! appears or the closure is stable. Subsumption pruning (same RHS, ⊆ LHS)
//! keeps the pool an antichain.
//!
//! The engine works over the compiled dependency IR of
//! [`nfd_path::table`]: each relation's paths are interned once into a
//! shared [`PathTable`], LHS sets are [`PathSet`] bitsets, and the prefix /
//! follows relations are precomputed matrices — so subsumption, resolution
//! and query chaining are word-wise bitset operations. The empty-set
//! policy is compiled too: the `non_empty` / `defined` path sets are fixed
//! at construction, and each pool entry precomputes the subset of its LHS
//! that the modified-transitivity gate requires to sit in the query's `X`
//! (`need_x`), turning the per-step gate into a single subset test.
//!
//! Every pool entry records provenance, so any positive answer can be
//! replayed as a numbered derivation over the original eight rules (see
//! [`crate::proof`]). Completeness is cross-checked in the test suite
//! against the Appendix A construction: whenever the engine answers *no*,
//! the constructed instance satisfies Σ and violates the goal.
//!
//! Under [`EmptySetPolicy::Annotated`], resolution, query chaining, prefix
//! and locality apply only through their Section 3.2 gates; the engine is
//! then sound for instances with empty sets (completeness in that regime
//! is the paper's stated future work).

use crate::dense::DenseClosure;
use crate::emptyset::EmptySetPolicy;
use crate::error::CoreError;
use crate::kernel::{self, ChainScratch, ClosureCache, DepIndex};
use crate::nfd::Nfd;
use crate::select::{CostFeatures, QueryTrace, RelSelect, SelectState, Tier, TierPreference};
use crate::simple;
use nfd_faults::fail_point;
use nfd_govern::{Budget, ResourceKind};
use nfd_model::{Label, Schema};
use nfd_path::table::{PathId, PathSet, PathTable, SchemaTables};
use nfd_path::{Path, RootedPath};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Provenance of a pool dependency — enough to replay a rule-level proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Prov {
    /// Normalized form of the `i`-th NFD of Σ.
    Given(usize),
    /// Prefix-weakening of pool entry `dep`, shortening the LHS path with
    /// index `shortened`.
    Prefix {
        /// Pool index of the premise.
        dep: usize,
        /// Path id (in the relation's path table) that was shortened.
        shortened: PathId,
    },
    /// Full-locality of pool entry `dep` at prefix `x`.
    FullLocality {
        /// Pool index of the premise.
        dep: usize,
        /// Path id of the localized prefix.
        x: PathId,
    },
    /// Resolution: `supplier`'s RHS discharged path `on` from `target`'s
    /// LHS (transitivity composed with reflexivity/augmentation).
    Resolve {
        /// Pool index of the dependency whose LHS was rewritten.
        target: usize,
        /// Pool index of the dependency supplying the discharged path.
        supplier: usize,
        /// Path id that was discharged.
        on: PathId,
    },
    /// Singleton introduction at set-valued path `x` (premises are the
    /// closure facts `x → x:Ai`, replayed on demand).
    Singleton {
        /// Path id of the singleton set.
        x: PathId,
    },
}

/// A compiled dependency in the saturated pool (simple form, LHS as a
/// bitset over the relation's [`PathTable`]).
#[derive(Clone, Debug)]
pub struct CDep {
    /// LHS path ids.
    pub lhs: PathSet,
    /// RHS path id.
    pub rhs: PathId,
    /// How this dependency was obtained.
    pub prov: Prov,
    /// Subsumed by a later entry with the same RHS and smaller LHS; kept
    /// for provenance but skipped by queries.
    pub subsumed: bool,
    /// The LHS paths that fail the compiled modified-transitivity gate
    /// (`lhs \ followers(rhs) \ defined`): a chain step through this entry
    /// is legal iff `need_x ⊆ X`. Empty under
    /// [`EmptySetPolicy::Forbidden`].
    pub(crate) need_x: PathSet,
}

/// One pool dependency as exported by [`Engine::export_pools`] — the
/// portable form of a [`CDep`]. `need_x` is deliberately absent: it is a
/// pure function of `(lhs, rhs, policy)` and is recomputed on thaw, so a
/// snapshot can never smuggle in an inconsistent gate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrozenDep {
    /// LHS path ids.
    pub lhs: PathSet,
    /// RHS path id.
    pub rhs: PathId,
    /// How the dependency was derived (validated for well-foundedness on
    /// thaw).
    pub prov: Prov,
    /// Subsumption flag at export time — thaw replays the pool and
    /// requires the replayed flags to match exactly.
    pub subsumed: bool,
}

/// One relation's saturated pool in portable form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrozenPool {
    /// The relation the pool belongs to.
    pub relation: Label,
    /// Pool entries in pool order.
    pub deps: Vec<FrozenDep>,
    /// Set-of-records paths whose singleton rule has fired.
    pub singletons: Vec<PathId>,
}

/// Compiles an empty-set policy to the `(non_empty, defined)` path sets
/// of a relation — shared with the naive oracle so both engines reason
/// under byte-identical gates.
pub(crate) fn compile_policy(
    relation: Label,
    table: &PathTable,
    policy: &EmptySetPolicy,
) -> (PathSet, PathSet) {
    match policy {
        EmptySetPolicy::Forbidden => (table.full_set(), table.full_set()),
        EmptySetPolicy::Annotated(_) => {
            let non_empty = PathSet::from_ids(
                table.words(),
                (0..table.len() as PathId)
                    .filter(|&id| policy.is_non_empty(relation, table.path(id))),
            );
            let defined = PathSet::from_ids(
                table.words(),
                (0..table.len() as PathId).filter(|&id| {
                    let mut proper = table.prefixes_of(id).clone();
                    proper.remove(id);
                    proper.is_subset(&non_empty)
                }),
            );
            (non_empty, defined)
        }
    }
}

/// Per-relation saturation state over the shared compiled path table.
pub(crate) struct RelEngine {
    pub(crate) relation: Label,
    /// The relation's compiled path table — the id space of the pool.
    pub(crate) table: Arc<PathTable>,
    pub(crate) deps: Vec<CDep>,
    /// Occurrence indices over `deps`, maintained in lock-step by
    /// [`RelEngine::add`]: RHS buckets for subsumption, LHS occurrences
    /// for resolution candidates and the counting chain kernel.
    pub(crate) index: DepIndex,
    seen: HashSet<(PathSet, PathId)>,
    /// Set-of-records paths whose singleton rule has fired.
    pub(crate) singletons_granted: Vec<PathId>,
    /// Ids declared non-empty by the policy (all ids under `Forbidden`).
    non_empty: PathSet,
    /// Ids whose every proper prefix is non-empty (all ids under
    /// `Forbidden`); the compiled form of [`EmptySetPolicy::is_defined`].
    defined: PathSet,
}

impl RelEngine {
    fn new(relation: Label, table: Arc<PathTable>, policy: &EmptySetPolicy) -> RelEngine {
        let (non_empty, defined) = compile_policy(relation, &table, policy);
        let index = DepIndex::new(table.len());
        RelEngine {
            relation,
            table,
            deps: Vec::new(),
            index,
            seen: HashSet::new(),
            singletons_granted: Vec::new(),
            non_empty,
            defined,
        }
    }

    fn path_id(&self, p: &Path) -> Result<PathId, CoreError> {
        self.table.id_of(p).ok_or_else(|| {
            CoreError::Nav(format!(
                "path `{p}` is not a path of relation `{}`",
                self.relation
            ))
        })
    }

    fn intern_lhs(&self, lhs: &[Path]) -> Result<PathSet, CoreError> {
        let mut set = self.table.empty_set();
        for p in lhs {
            set.insert(self.path_id(p)?);
        }
        Ok(set)
    }

    /// Adds a dependency unless trivial, already seen, or subsumed; marks
    /// older entries this one subsumes. Returns whether it was added.
    fn add(
        &mut self,
        lhs: PathSet,
        rhs: PathId,
        prov: Prov,
        budget: &Budget,
    ) -> Result<bool, CoreError> {
        if lhs.contains(rhs) {
            return Ok(false); // reflexivity instance: never useful in the pool
        }
        if !self.seen.insert((lhs.clone(), rhs)) {
            return Ok(false);
        }
        // Subsumption only relates entries with the same RHS, so both the
        // forward check and the backward marking scan just the RHS bucket
        // (in pool order — the same entries the naive full scan touched).
        for &j in self.index.same_rhs(rhs) {
            let d = &self.deps[j];
            if !d.subsumed && d.lhs.is_subset(&lhs) {
                return Ok(false);
            }
        }
        for &j in self.index.same_rhs(rhs) {
            let d = &mut self.deps[j];
            if !d.subsumed && lhs.is_subset(&d.lhs) {
                d.subsumed = true;
            }
        }
        budget.check_counter(ResourceKind::PoolDeps, self.deps.len() as u64 + 1)?;
        let mut need_x = lhs.clone();
        need_x.difference_with(self.table.followers_of(rhs));
        need_x.difference_with(&self.defined);
        self.index.push(&lhs, rhs);
        self.deps.push(CDep {
            lhs,
            rhs,
            prov,
            subsumed: false,
            need_x,
        });
        debug_assert_eq!(self.index.len(), self.deps.len());
        Ok(true)
    }

    /// Saturates the pool under prefix-weakening, full-locality and
    /// resolution (all through the compiled policy gates). Polls the
    /// budget's liveness conditions (deadline, cancellation) every few
    /// thousand resolution pairs so a runaway saturation stops promptly.
    fn saturate(&mut self, budget: &Budget) -> Result<(), CoreError> {
        fail_point!(
            "engine::saturate",
            Err(CoreError::Exhausted(nfd_govern::ResourceReport::injected())),
            budget.cancel_token()
        );
        let mut i = 0;
        let mut tick: u32 = 0;
        let mut cands: Vec<usize> = Vec::new();
        while i < self.deps.len() {
            budget.check_live().map_err(CoreError::Exhausted)?;
            if self.deps[i].subsumed {
                i += 1;
                continue;
            }
            self.unary_conclusions(i, budget)?;
            // Resolution frontier: entry `i` is the worklist head and an
            // earlier entry `j` can interact with it only if `rhs(j) ∈
            // lhs(i)` (j supplies i) or `rhs(i) ∈ lhs(j)` (i supplies j).
            // The occurrence indices produce exactly those `j`s; replaying
            // them in ascending order — the order the naive all-pairs scan
            // considered them — grows the pool through the identical add
            // sequence, because `resolve_pair` is a no-op on every skipped
            // pair. LHS/RHS are immutable after `add`, so the candidate
            // list stays exact while the loop itself appends new entries;
            // only the `subsumed` flag moves, and it is re-read per pair.
            cands.clear();
            for p in self.deps[i].lhs.iter() {
                cands.extend(self.index.same_rhs(p).iter().copied().filter(|&j| j < i));
            }
            let rhs_i = self.deps[i].rhs;
            cands.extend(
                self.index
                    .with_lhs_containing(rhs_i)
                    .iter()
                    .copied()
                    .filter(|&j| j < i),
            );
            cands.sort_unstable();
            cands.dedup();
            for &j in &cands {
                tick = tick.wrapping_add(1);
                if tick.is_multiple_of(4096) {
                    budget.check_live().map_err(CoreError::Exhausted)?;
                }
                if self.deps[j].subsumed {
                    continue;
                }
                self.resolve_pair(i, j, budget)?;
                self.resolve_pair(j, i, budget)?;
            }
            i += 1;
        }
        Ok(())
    }

    /// Prefix-weakening and full-locality conclusions of `deps[i]`.
    fn unary_conclusions(&mut self, i: usize, budget: &Budget) -> Result<(), CoreError> {
        let table = Arc::clone(&self.table);
        let (lhs, rhs) = (self.deps[i].lhs.clone(), self.deps[i].rhs);

        // prefix: shorten any LHS path x1:A to x1 (x1 not a prefix of the
        // RHS; under empty sets, x1 must be non-empty and reachable).
        for pid in lhs.iter() {
            let Some(x1) = table.parent(pid) else {
                continue; // single-label path: parent is the empty path
            };
            if table.is_prefix(x1, rhs) {
                continue;
            }
            if !(self.non_empty.contains(x1) && self.defined.contains(x1)) {
                continue;
            }
            let mut new_lhs = lhs.clone();
            new_lhs.remove(pid);
            new_lhs.insert(x1);
            self.add(
                new_lhs,
                rhs,
                Prov::Prefix {
                    dep: i,
                    shortened: pid,
                },
                budget,
            )?;
        }

        // full-locality: for each proper prefix x of the RHS, keep only the
        // x-prefixed LHS paths plus x itself; the dismissed paths must pass
        // the locality gate (follow the RHS or be defined) under empty sets.
        for x_id in table.ancestors(rhs) {
            let mut kept = lhs.clone();
            kept.intersect_with(table.extensions_of(x_id));
            let mut dismissed = lhs.clone();
            dismissed.difference_with(&kept);
            dismissed.remove(x_id);
            dismissed.difference_with(table.followers_of(rhs));
            dismissed.difference_with(&self.defined);
            if !dismissed.is_empty() {
                continue;
            }
            kept.insert(x_id);
            self.add(kept, rhs, Prov::FullLocality { dep: i, x: x_id }, budget)?;
        }
        Ok(())
    }

    /// Resolution: if `deps[supplier].rhs ∈ deps[target].lhs`, replace it
    /// by `deps[supplier].lhs`.
    fn resolve_pair(
        &mut self,
        target: usize,
        supplier: usize,
        budget: &Budget,
    ) -> Result<(), CoreError> {
        let on = self.deps[supplier].rhs;
        if !self.deps[target].lhs.contains(on) {
            return Ok(());
        }
        let t_rhs = self.deps[target].rhs;
        // Modified transitivity gate on the discharged path (it is the
        // intermediate value not present in the final LHS).
        if !(self.table.follows(on, t_rhs) || self.defined.contains(on)) {
            return Ok(());
        }
        let mut new_lhs = self.deps[target].lhs.clone();
        new_lhs.remove(on);
        new_lhs.union_with(&self.deps[supplier].lhs);
        self.add(
            new_lhs,
            t_rhs,
            Prov::Resolve {
                target,
                supplier,
                on,
            },
            budget,
        )?;
        Ok(())
    }

    /// Query-level chaining: the closure `C(X)` of a set of path ids under
    /// the saturated pool, with the modified-transitivity gate. Optionally
    /// records which pool entry produced each path (for proofs).
    pub(crate) fn chain(
        &self,
        x: &[PathId],
        fired: Option<&mut HashMap<PathId, usize>>,
    ) -> PathSet {
        self.chain_bounded(x, fired, self.deps.len())
    }

    /// [`RelEngine::chain`] restricted to pool entries with index `< max`
    /// — used by proof reconstruction, where provenance is well-founded by
    /// pool index. Subsumed entries are still sound and must stay usable
    /// here: proof reconstruction bounds `max` below the index of the
    /// entry that subsumed them.
    ///
    /// Runs on the counting kernel ([`kernel::chain_counting`]), which
    /// replays the historical pass scan's firing order exactly, so the
    /// `fired` maps — and therefore the reconstructed proofs — are
    /// identical to the naive implementation's.
    pub(crate) fn chain_bounded(
        &self,
        x: &[PathId],
        fired: Option<&mut HashMap<PathId, usize>>,
        max: usize,
    ) -> PathSet {
        let mut scratch = ChainScratch::default();
        self.chain_bounded_scratch(x, fired, max, &mut scratch)
    }

    /// [`RelEngine::chain`] with caller-owned scratch buffers — the
    /// allocation-free variant for tight loops (singleton rounds,
    /// candidate-key sweeps) that chain many times over one pool.
    pub(crate) fn chain_scratch(&self, x: &[PathId], scratch: &mut ChainScratch) -> PathSet {
        self.chain_bounded_scratch(x, None, self.deps.len(), scratch)
    }

    fn chain_bounded_scratch(
        &self,
        x: &[PathId],
        fired: Option<&mut HashMap<PathId, usize>>,
        max: usize,
        scratch: &mut ChainScratch,
    ) -> PathSet {
        kernel::chain_counting(
            &self.deps,
            &self.index,
            self.table.words(),
            x,
            fired,
            max,
            scratch,
        )
    }

    /// One round of singleton introduction; returns whether any new
    /// singleton conclusion joined the pool.
    fn singleton_round(&mut self, budget: &Budget) -> Result<bool, CoreError> {
        fail_point!(
            "engine::singleton",
            Err(CoreError::Exhausted(nfd_govern::ResourceReport::injected())),
            budget.cancel_token()
        );
        let table = Arc::clone(&self.table);
        let mut added = false;
        budget.check_live().map_err(CoreError::Exhausted)?;
        // One scratch for the whole round: every candidate's chain reuses
        // the counter/ready buffers instead of reallocating from scratch.
        let mut scratch = ChainScratch::default();
        for x_id in 0..table.len() as PathId {
            if self.singletons_granted.contains(&x_id) {
                continue;
            }
            if !table.is_set_record(x_id) {
                continue;
            }
            let attrs = table.children(x_id);
            if attrs.is_empty() {
                continue;
            }
            let c = self.chain_scratch(&[x_id], &mut scratch);
            if attrs.iter().all(|&a| c.contains(a)) {
                let lhs = PathSet::from_ids(table.words(), attrs.iter().copied());
                self.add(lhs, x_id, Prov::Singleton { x: x_id }, budget)?;
                self.singletons_granted.push(x_id);
                added = true;
            }
        }
        Ok(added)
    }
}

/// The implication engine for a schema and a set Σ of NFDs.
///
/// Construction validates and normalizes Σ and saturates one pool per
/// relation over the schema's compiled [`SchemaTables`]; queries are then
/// cheap. See the module docs for the algorithm.
pub struct Engine<'s> {
    schema: &'s Schema,
    tables: SchemaTables,
    /// The original Σ (used for proof display).
    pub sigma: Vec<Nfd>,
    pub(crate) rels: HashMap<Label, RelEngine>,
    policy: EmptySetPolicy,
    budget: Budget,
    /// Optional shared closure cache (attached by sessions); `None` for
    /// stand-alone engines, whose queries always chain directly.
    cache: Option<Arc<ClosureCache>>,
    /// Optional tier-selection layer (attached by sessions); `None` for
    /// stand-alone engines, whose queries keep the historical
    /// cache-then-counting-kernel routing.
    select: Option<EngineSelect>,
}

/// The attached tier-selection layer: the session-shared promotion state
/// plus, per relation, the promotion handle and the static tier-0/1 cost
/// pick. The pick is computed once at attach time — the pool is immutable
/// between saturations, and the Σ-mutation path
/// (`Engine::rebuild_relation`) recomputes the touched relation's entry —
/// so the [`CostFeatures`] a handle was picked from always describe the
/// pool it routes for.
struct EngineSelect {
    state: Arc<SelectState>,
    rels: HashMap<Label, (Arc<RelSelect>, Tier)>,
}

/// The static cost-model features of a saturated relation pool.
fn rel_features(rel: &RelEngine) -> CostFeatures {
    let mut active_deps = 0usize;
    let mut lhs_paths = 0usize;
    for d in rel.deps.iter().filter(|d| !d.subsumed) {
        active_deps += 1;
        lhs_paths += d.lhs.len();
    }
    CostFeatures {
        active_deps,
        lhs_paths,
        words: rel.table.words(),
        table_len: rel.table.len(),
    }
}

impl<'s> Engine<'s> {
    /// Builds an engine under [`EmptySetPolicy::Forbidden`] (Theorem 3.1's
    /// regime) with the standard resource budget.
    pub fn new(schema: &'s Schema, sigma: &[Nfd]) -> Result<Engine<'s>, CoreError> {
        Engine::with_policy(schema, sigma, EmptySetPolicy::Forbidden)
    }

    /// Builds an engine under the given empty-set policy.
    pub fn with_policy(
        schema: &'s Schema,
        sigma: &[Nfd],
        policy: EmptySetPolicy,
    ) -> Result<Engine<'s>, CoreError> {
        Engine::with_budget(schema, sigma, policy, Budget::standard())
    }

    /// Builds an engine with an explicit resource [`Budget`]. Exhausting
    /// it is a [`CoreError::Exhausted`], not an incorrect answer.
    pub fn with_budget(
        schema: &'s Schema,
        sigma: &[Nfd],
        policy: EmptySetPolicy,
        budget: Budget,
    ) -> Result<Engine<'s>, CoreError> {
        let tables = SchemaTables::new(schema).map_err(|e| CoreError::Nav(e.to_string()))?;
        Engine::with_tables(schema, tables, sigma, policy, budget)
    }

    /// Builds an engine over pre-compiled path tables, sharing them with
    /// the caller instead of recompiling — the amortization hook used by
    /// query sessions. The tables must have been compiled from `schema`.
    pub fn with_tables(
        schema: &'s Schema,
        tables: SchemaTables,
        sigma: &[Nfd],
        policy: EmptySetPolicy,
        budget: Budget,
    ) -> Result<Engine<'s>, CoreError> {
        fail_point!(
            "engine::build",
            Err(CoreError::Exhausted(nfd_govern::ResourceReport::injected())),
            budget.cancel_token()
        );
        let mut rels: HashMap<Label, RelEngine> = HashMap::new();
        for name in schema.relation_names() {
            let table = tables
                .get(name)
                .ok_or_else(|| CoreError::Nav(format!("unknown relation `{name}`")))?;
            rels.insert(name, RelEngine::new(name, Arc::clone(table), &policy));
        }
        for (i, nfd) in sigma.iter().enumerate() {
            nfd.validate(schema)?;
            let s = simple::to_simple(nfd);
            let rel = rels.get_mut(&s.base.relation).ok_or_else(|| {
                CoreError::Nav(format!(
                    "NFD #{i} names relation `{}` which is not in the schema",
                    s.base.relation
                ))
            })?;
            let lhs = rel.intern_lhs(s.lhs())?;
            let rhs = rel.path_id(&s.rhs)?;
            rel.add(lhs, rhs, Prov::Given(i), &budget)?;
        }
        // Saturate each relation, interleaving singleton rounds until the
        // whole system is stable.
        for rel in rels.values_mut() {
            loop {
                rel.saturate(&budget)?;
                if !rel.singleton_round(&budget)? {
                    break;
                }
            }
        }
        Ok(Engine {
            schema,
            tables,
            sigma: sigma.to_vec(),
            rels,
            policy,
            budget,
            cache: None,
            select: None,
        })
    }

    /// Exports every relation's saturated pool in portable form, sorted
    /// by relation name — the compiled payload of a session snapshot.
    pub fn export_pools(&self) -> Vec<FrozenPool> {
        let mut out: Vec<FrozenPool> = self
            .rels
            .values()
            .map(|r| FrozenPool {
                relation: r.relation,
                deps: r
                    .deps
                    .iter()
                    .map(|d| FrozenDep {
                        lhs: d.lhs.clone(),
                        rhs: d.rhs,
                        prov: d.prov.clone(),
                        subsumed: d.subsumed,
                    })
                    .collect(),
                singletons: r.singletons_granted.clone(),
            })
            .collect();
        out.sort_by_key(|p| p.relation.to_string());
        out
    }

    /// Rebuilds an engine from pools exported by
    /// [`Engine::export_pools`], skipping the saturation fixpoint — the
    /// thaw path of compiled-session snapshots.
    ///
    /// This is a *validated replay*, not a blind install: every frozen
    /// entry is pushed through the same [`RelEngine::add`] a fresh build
    /// uses, in pool order. `add` is deterministic and its subsumption
    /// bookkeeping depends only on the entries accepted so far, so an
    /// honest export replays to a bit-identical pool (same entries, same
    /// `seen` set, same occurrence indices, same subsumption flags, same
    /// recomputed `need_x` gates). Any deviation — an entry `add`
    /// rejects, a replayed subsumption flag differing from the frozen
    /// one, an out-of-range id or premise index — is a typed
    /// [`CoreError::Internal`], and the caller falls back to a fresh
    /// compile. The budget is charged exactly as a fresh build's pool
    /// growth would be, so thawing under a tighter budget reports
    /// honest exhaustion.
    pub fn from_frozen(
        schema: &'s Schema,
        tables: SchemaTables,
        sigma: &[Nfd],
        policy: EmptySetPolicy,
        budget: Budget,
        pools: Vec<FrozenPool>,
    ) -> Result<Engine<'s>, CoreError> {
        let mut rels: HashMap<Label, RelEngine> = HashMap::new();
        for name in schema.relation_names() {
            let table = tables
                .get(name)
                .ok_or_else(|| CoreError::Nav(format!("unknown relation `{name}`")))?;
            rels.insert(name, RelEngine::new(name, Arc::clone(table), &policy));
        }
        for pool in pools {
            let rel = rels.get_mut(&pool.relation).ok_or_else(|| {
                CoreError::Internal(format!(
                    "frozen pool names relation `{}` which is not in the schema",
                    pool.relation
                ))
            })?;
            if !rel.deps.is_empty() {
                return Err(CoreError::Internal(format!(
                    "duplicate frozen pool for relation `{}`",
                    pool.relation
                )));
            }
            let relation = rel.relation;
            let table_len = rel.table.len() as PathId;
            let words = rel.table.words();
            let expected_flags: Vec<bool> = pool.deps.iter().map(|d| d.subsumed).collect();
            for (i, fd) in pool.deps.into_iter().enumerate() {
                let ctx = move |what: &str| {
                    CoreError::Internal(format!("frozen pool of `{relation}`, entry {i}: {what}"))
                };
                if fd.lhs.as_words().len() != words {
                    return Err(ctx("LHS bitset width does not match the path table"));
                }
                if fd.rhs >= table_len || fd.lhs.iter().any(|p| p >= table_len) {
                    return Err(ctx("path id out of range for the relation"));
                }
                let well_founded = match &fd.prov {
                    Prov::Given(k) => *k < sigma.len(),
                    Prov::Prefix { dep, shortened } => *dep < i && *shortened < table_len,
                    Prov::FullLocality { dep, x } => *dep < i && *x < table_len,
                    Prov::Resolve {
                        target,
                        supplier,
                        on,
                    } => *target < i && *supplier < i && *on < table_len,
                    Prov::Singleton { x } => *x < table_len,
                };
                if !well_founded {
                    return Err(ctx("provenance is not well-founded"));
                }
                if !rel.add(fd.lhs, fd.rhs, fd.prov, &budget)? {
                    return Err(ctx(
                        "replay rejected the entry (reflexive, duplicate, or subsumed)",
                    ));
                }
            }
            for (i, expected) in expected_flags.iter().enumerate() {
                if rel.deps[i].subsumed != *expected {
                    return Err(CoreError::Internal(format!(
                        "frozen pool of `{}`, entry {i}: replayed subsumption flag \
                         disagrees with the snapshot",
                        rel.relation
                    )));
                }
            }
            if pool.singletons.iter().any(|&x| x >= table_len) {
                return Err(CoreError::Internal(format!(
                    "frozen pool of `{}`: singleton id out of range",
                    rel.relation
                )));
            }
            rel.singletons_granted = pool.singletons;
        }
        Ok(Engine {
            schema,
            tables,
            sigma: sigma.to_vec(),
            rels,
            policy,
            budget,
            cache: None,
            select: None,
        })
    }

    /// Attaches a shared closure cache; subsequent `implies`/`closure`
    /// queries consult it before chaining. The cache must be scoped to
    /// this engine's `(Σ, policy)` compilation — sessions guarantee that
    /// by creating one cache per configuration (see
    /// [`ClosureCache`]'s soundness notes).
    pub fn with_closure_cache(mut self, cache: Arc<ClosureCache>) -> Engine<'s> {
        self.cache = Some(cache);
        self
    }

    /// Attaches a tier-selection layer; subsequent queries route through
    /// its cost model and promotion state instead of always running the
    /// counting kernel. Like the closure cache, the state must be scoped
    /// to this engine's `(Σ, policy)` compilation — engine builds are
    /// deterministic, so promotion state (including built dense closures)
    /// carries soundly across a session's rebuilt query engines.
    pub fn with_engine_select(mut self, state: Arc<SelectState>) -> Engine<'s> {
        let mut rels = HashMap::new();
        for (name, rel) in &self.rels {
            let pick = state.model().pick(&rel_features(rel));
            rels.insert(*name, (state.rel(*name), pick));
        }
        self.select = Some(EngineSelect { state, rels });
        self
    }

    /// Replays the [`Engine::with_tables`] build sequence for one
    /// relation against the engine's *current* `sigma`, swapping the
    /// fresh pool in only on success — the commit step of
    /// [`Engine::add_dep`](crate::delta) / `remove_dep`. The fresh
    /// [`RelEngine`] sees the identical add order a from-scratch build
    /// would (its `Prov::Given` entries in Σ order, then saturation
    /// interleaved with singleton rounds), relation pools never interact,
    /// and builds are deterministic — so the committed pool, subsumption
    /// flags and provenance are bit-identical to a full rebuild's. On
    /// success the attached closure cache and tier-selection state are
    /// invalidated for this relation only (every other relation stays
    /// warm); on error `self` is unchanged.
    pub(crate) fn rebuild_relation(&mut self, relation: Label) -> Result<(), CoreError> {
        let table = Arc::clone(
            self.tables
                .get(relation)
                .ok_or_else(|| CoreError::Nav(format!("unknown relation `{relation}`")))?,
        );
        let mut rel = RelEngine::new(relation, table, &self.policy);
        for (i, nfd) in self.sigma.iter().enumerate() {
            let s = simple::to_simple(nfd);
            if s.base.relation != relation {
                continue;
            }
            let lhs = rel.intern_lhs(s.lhs())?;
            let rhs = rel.path_id(&s.rhs)?;
            rel.add(lhs, rhs, Prov::Given(i), &self.budget)?;
        }
        loop {
            rel.saturate(&self.budget)?;
            if !rel.singleton_round(&self.budget)? {
                break;
            }
        }
        if let Some(cache) = &self.cache {
            cache.invalidate_relation(relation);
        }
        if let Some(sel) = &mut self.select {
            sel.state.invalidate_relation(relation);
            let pick = sel.state.model().pick(&rel_features(&rel));
            sel.rels.insert(relation, (sel.state.rel(relation), pick));
        }
        self.rels.insert(relation, rel);
        Ok(())
    }

    /// The schema the engine reasons over.
    pub fn schema(&self) -> &Schema {
        self.schema
    }

    /// The compiled path tables the engine (and its proofs) work over.
    pub fn tables(&self) -> &SchemaTables {
        &self.tables
    }

    /// The empty-set policy in force.
    pub fn policy(&self) -> &EmptySetPolicy {
        &self.policy
    }

    /// Total pool size across relations (a work measure for benches).
    pub fn pool_size(&self) -> usize {
        self.rels.values().map(|r| r.deps.len()).sum()
    }

    pub(crate) fn rel(&self, relation: Label) -> Result<&RelEngine, CoreError> {
        self.rels
            .get(&relation)
            .ok_or_else(|| CoreError::WrongRelation {
                expected: self
                    .rels
                    .keys()
                    .map(|k| k.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
                found: relation.to_string(),
            })
    }

    /// Normalizes a goal to simple form and returns `(relation, X ids,
    /// rhs id)`.
    pub(crate) fn normalize_goal(
        &self,
        goal: &Nfd,
    ) -> Result<(Label, Vec<PathId>, PathId), CoreError> {
        goal.validate(self.schema)?;
        let s = simple::to_simple(goal);
        let rel = self.rel(s.base.relation)?;
        let lhs = rel.intern_lhs(s.lhs())?;
        let rhs = rel.path_id(&s.rhs)?;
        Ok((s.base.relation, lhs.to_vec(), rhs))
    }

    /// Does Σ logically imply `goal` (over instances consistent with the
    /// engine's empty-set policy)?
    pub fn implies(&self, goal: &Nfd) -> Result<bool, CoreError> {
        self.implies_traced(goal).map(|(v, _)| v)
    }

    /// [`Engine::implies`] plus whether the verdict came from the
    /// attached closure cache — sessions surface the flag in
    /// `Decision.cache_hits`. The failpoint and liveness poll sit ahead
    /// of the cache lookup, so injected faults and cancellation behave
    /// identically whether or not the closure is cached.
    pub fn implies_traced(&self, goal: &Nfd) -> Result<(bool, bool), CoreError> {
        self.implies_queried(goal).map(|(v, t)| (v, t.cache_hit))
    }

    /// [`Engine::implies`] plus the full [`QueryTrace`] — which tier
    /// served the query (`None` when reflexivity decided it without
    /// chaining) and whether the closure came from the cache. Sessions
    /// surface the trace as `Decision.tier`.
    pub fn implies_queried(&self, goal: &Nfd) -> Result<(bool, QueryTrace), CoreError> {
        fail_point!(
            "engine::implies",
            Err(CoreError::Exhausted(nfd_govern::ResourceReport::injected())),
            self.budget.cancel_token()
        );
        self.budget.check_live().map_err(CoreError::Exhausted)?;
        let (relation, lhs, rhs) = self.normalize_goal(goal)?;
        if lhs.contains(&rhs) {
            // Reflexivity: no chaining ran, so no tier was selected.
            return Ok((
                true,
                QueryTrace {
                    tier: None,
                    cache_hit: false,
                },
            ));
        }
        let rel = self.rel(relation)?;
        let (c, trace) = self.chained_goal(rel, &lhs, Some(rhs))?;
        Ok((c.contains(rhs), trace))
    }

    /// Routes one closure query through the tier-selection layer. With no
    /// layer attached this is exactly the historical path
    /// ([`Engine::chained_indexed`], reported as [`Tier::Indexed`]).
    ///
    /// Routing order, mirroring hotness: a promoted (or forced) dense
    /// closure answers first — its word-union query is hotter than a
    /// cache probe, and bypassing the cache keeps dense timings
    /// insensitive to cache pressure. Otherwise the cache is consulted,
    /// then the cost model's static tier-0/1 pick (or the forced tier)
    /// chains. `goal` enables tier 0's early exit on uncached implication
    /// queries; early-exited closures are partial and are never cached.
    ///
    /// Every tier computes the same least fixpoint (see
    /// [`crate::dense`] and [`kernel::chain_scan`] for the arguments), so
    /// routing can change latency but never a verdict.
    fn chained_goal(
        &self,
        rel: &RelEngine,
        x_ids: &[PathId],
        goal: Option<PathId>,
    ) -> Result<(PathSet, QueryTrace), CoreError> {
        let handle_pick = self
            .select
            .as_ref()
            .and_then(|sel| sel.rels.get(&rel.relation).map(|hp| (sel, hp)));
        let Some((sel, (handle, pick))) = handle_pick else {
            let (c, hit) = self.chained_indexed(rel, x_ids);
            return Ok((
                c,
                QueryTrace {
                    tier: Some(Tier::Indexed),
                    cache_hit: hit,
                },
            ));
        };
        let queries = handle.record_query();
        let preference = sel.state.preference();
        let forced_dense = preference == TierPreference::Fixed(Tier::Dense);
        let auto_promote = preference == TierPreference::Auto
            && sel.state.model().should_promote(queries)
            && !handle.dense_failed();
        if forced_dense || auto_promote {
            if let Some(d) = self.dense_handle(rel, handle, forced_dense)? {
                return Ok((
                    d.closure(x_ids),
                    QueryTrace {
                        tier: Some(Tier::Dense),
                        cache_hit: false,
                    },
                ));
            }
        }
        let tier = match preference {
            TierPreference::Fixed(Tier::Naive) => Tier::Naive,
            TierPreference::Fixed(Tier::Indexed) => Tier::Indexed,
            // A failed auto promotion (or a forced-dense build that could
            // not happen) falls back to the static cost pick.
            TierPreference::Auto | TierPreference::Fixed(Tier::Dense) => *pick,
        };
        if tier != Tier::Naive {
            let (c, hit) = self.chained_indexed(rel, x_ids);
            return Ok((
                c,
                QueryTrace {
                    tier: Some(Tier::Indexed),
                    cache_hit: hit,
                },
            ));
        }
        let Some(cache) = &self.cache else {
            // No cache: nothing to poison, so the scan may stop at the
            // goal (the partial closure is dropped after the verdict).
            let c = kernel::chain_scan(&rel.deps, rel.table.words(), x_ids, goal);
            return Ok((
                c,
                QueryTrace {
                    tier: Some(Tier::Naive),
                    cache_hit: false,
                },
            ));
        };
        let key = PathSet::from_ids(rel.table.words(), x_ids.iter().copied());
        if let Some(hit) = cache.get(rel.relation, &key) {
            return Ok((
                hit,
                QueryTrace {
                    tier: Some(Tier::Naive),
                    cache_hit: true,
                },
            ));
        }
        let c = kernel::chain_scan(&rel.deps, rel.table.words(), x_ids, None);
        cache.insert(rel.relation, key, c.clone());
        Ok((
            c,
            QueryTrace {
                tier: Some(Tier::Naive),
                cache_hit: false,
            },
        ))
    }

    /// The promoted dense closure for `rel`, building (and charging the
    /// budget for) it on first use. Under `forced` every build error
    /// propagates — the caller asked for this tier and deserves the
    /// honest exhaustion report. Under auto promotion a
    /// [`ResourceKind::DenseCells`] exhaustion instead latches the
    /// relation as unpromotable and degrades gracefully to the cost pick
    /// (`Ok(None)`); liveness faults (deadline, cancellation) still
    /// propagate, since every query path must observe them.
    fn dense_handle(
        &self,
        rel: &RelEngine,
        handle: &RelSelect,
        forced: bool,
    ) -> Result<Option<Arc<DenseClosure>>, CoreError> {
        if let Some(d) = handle.dense() {
            return Ok(Some(d));
        }
        match DenseClosure::build(&rel.table, &rel.deps, &self.budget) {
            Ok(d) => {
                let d = Arc::new(d);
                handle.set_dense(Arc::clone(&d));
                Ok(Some(d))
            }
            Err(e) => {
                if !forced {
                    if let CoreError::Exhausted(report) = &e {
                        if report.kind == ResourceKind::DenseCells {
                            handle.mark_dense_failed();
                            return Ok(None);
                        }
                    }
                }
                Err(e)
            }
        }
    }

    /// The closure of `x_ids` through the cache when one is attached —
    /// the tier-1 path, and the engine's historical behaviour. Sound
    /// because `C(X)` is a pure function of the saturated pool and
    /// `X`, and chaining consumes no budget counters — a hit skips work
    /// but can never change a verdict or a counter-limited outcome.
    fn chained_indexed(&self, rel: &RelEngine, x_ids: &[PathId]) -> (PathSet, bool) {
        let Some(cache) = &self.cache else {
            return (rel.chain(x_ids, None), false);
        };
        let key = PathSet::from_ids(rel.table.words(), x_ids.iter().copied());
        if let Some(hit) = cache.get(rel.relation, &key) {
            return (hit, true);
        }
        let c = rel.chain(x_ids, None);
        cache.insert(rel.relation, key, c.clone());
        (c, false)
    }

    /// The closure `(x0, X, Σ)*` of Appendix A: all rooted paths `x0:q`
    /// with `x0:[X → q]` derivable. Sorted by (length, path) for stable
    /// output.
    pub fn closure(&self, base: &RootedPath, lhs: &[Path]) -> Result<Vec<RootedPath>, CoreError> {
        self.closure_traced(base, lhs).map(|(c, _)| c)
    }

    /// [`Engine::closure`] plus the [`QueryTrace`] of the chaining run —
    /// which tier served it and whether the closure came from the cache.
    pub fn closure_traced(
        &self,
        base: &RootedPath,
        lhs: &[Path],
    ) -> Result<(Vec<RootedPath>, QueryTrace), CoreError> {
        // Normalize through a synthetic goal: the closure is the set of
        // RHS paths the normalized LHS chains to, restricted to paths
        // below x0.
        fail_point!(
            "engine::closure",
            Err(CoreError::Exhausted(nfd_govern::ResourceReport::injected())),
            self.budget.cancel_token()
        );
        self.budget.check_live().map_err(CoreError::Exhausted)?;
        let rel = self.rel(base.relation)?;
        let prefix = &base.path;
        let mut x_ids: Vec<PathId> = Vec::new();
        let mut prefix_id = None;
        if !prefix.is_empty() {
            let id = rel.path_id(prefix)?;
            prefix_id = Some(id);
            x_ids.push(id);
        }
        for p in lhs {
            if p.is_empty() {
                return Err(CoreError::EmptyComponentPath);
            }
            x_ids.push(rel.path_id(&prefix.join(p))?);
        }
        x_ids.sort_unstable();
        x_ids.dedup();
        let (mut c, trace) = self.chained_goal(rel, &x_ids, None)?;
        // Only paths strictly below x0 belong to the closure (q ≥ 1
        // labels relative to x0).
        if let Some(id) = prefix_id {
            c.intersect_with(rel.table.extensions_of(id));
        }
        let mut out: Vec<RootedPath> = c
            .iter()
            .map(|i| RootedPath::new(base.relation, rel.table.path(i).clone()))
            .collect();
        out.sort_by(|a, b| {
            let ka: Vec<&str> = a.path.labels().iter().map(|l| l.as_str()).collect();
            let kb: Vec<&str> = b.path.labels().iter().map(|l| l.as_str()).collect();
            (a.path.len(), ka).cmp(&(b.path.len(), kb))
        });
        Ok((out, trace))
    }

    /// Pre-flight for an analysis sweep (candidate keys) over `rel`:
    /// builds the dense closure up front when the preference forces it
    /// (propagating build errors honestly) or when auto promotion is
    /// already due, so the sweep itself can stay infallible. Auto builds
    /// degrade like any auto promotion: cell exhaustion latches the
    /// relation and the sweep falls back to the cost pick.
    pub(crate) fn prepare_analysis(&self, rel: &RelEngine) -> Result<(), CoreError> {
        let Some(sel) = &self.select else {
            return Ok(());
        };
        let Some((handle, _)) = sel.rels.get(&rel.relation) else {
            return Ok(());
        };
        match sel.state.preference() {
            TierPreference::Fixed(Tier::Dense) => {
                self.dense_handle(rel, handle, true)?;
            }
            TierPreference::Auto => {
                let queries = sel.state.queries(rel.relation);
                if sel.state.model().should_promote(queries) && !handle.dense_failed() {
                    self.dense_handle(rel, handle, false)?;
                }
            }
            TierPreference::Fixed(_) => {}
        }
        Ok(())
    }

    /// One chaining step of an analysis sweep, routed by tier: a built
    /// dense closure answers directly, a (forced or picked) tier 0 runs
    /// the pass scan, and everything else uses the counting kernel with
    /// the sweep's reusable scratch. Infallible by design — fallible
    /// setup happens once in [`Engine::prepare_analysis`] — and each call
    /// counts toward the relation's promotion threshold, so a hot keys
    /// sweep warms the same state `implies` promotes on.
    pub(crate) fn analysis_chain(
        &self,
        rel: &RelEngine,
        x: &[PathId],
        scratch: &mut ChainScratch,
    ) -> PathSet {
        if let Some(sel) = &self.select {
            if let Some((handle, pick)) = sel.rels.get(&rel.relation) {
                handle.record_query();
                if let Some(d) = handle.dense() {
                    return d.closure(x);
                }
                let tier = match sel.state.preference() {
                    TierPreference::Fixed(t) => t,
                    TierPreference::Auto => *pick,
                };
                if tier == Tier::Naive {
                    return kernel::chain_scan(&rel.deps, rel.table.words(), x, None);
                }
            }
        }
        rel.chain_scratch(x, scratch)
    }

    /// The resource budget the engine was built under; queries made
    /// through this engine observe the same deadline and cancellation
    /// token.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Snapshot of every relation's pool in pool order, sorted by
    /// relation name — compared against `NaiveEngine::pool_dump` by the
    /// differential suite.
    #[doc(hidden)]
    pub fn pool_dump(&self) -> crate::naive::PoolDump {
        let mut out: crate::naive::PoolDump = self
            .rels
            .values()
            .map(|r| {
                (
                    r.relation.to_string(),
                    crate::naive::dump_pool_entries(&r.deps),
                )
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Verdict, closure ids and sorted `fired` provenance pairs for a
    /// goal. Identical dumps from the naive oracle and this engine imply
    /// identical reconstructed proofs: the proof builder is a
    /// deterministic function of the pool and the fired maps.
    #[doc(hidden)]
    pub fn chain_dump(&self, goal: &Nfd) -> Result<crate::naive::ChainDump, CoreError> {
        let (relation, lhs, rhs) = self.normalize_goal(goal)?;
        let rel = self.rel(relation)?;
        let mut fired: HashMap<PathId, usize> = HashMap::new();
        let c = rel.chain(&lhs, Some(&mut fired));
        let verdict = lhs.contains(&rhs) || c.contains(rhs);
        let mut fired: Vec<(PathId, usize)> = fired.into_iter().collect();
        fired.sort_unstable();
        Ok((verdict, c.to_vec(), fired))
    }

    /// Validates the engine's structural invariants; used by the test
    /// suite after saturation. Checks, per relation:
    ///
    /// 1. no pool entry is reflexive (RHS ∈ LHS);
    /// 2. the *active* (non-subsumed) entries form an antichain per RHS
    ///    (no active entry's LHS contains another active entry's LHS with
    ///    the same RHS);
    /// 3. provenance is well-founded: every premise index is smaller than
    ///    the entry's own index;
    /// 4. every `Given` provenance points into Σ.
    pub fn check_invariants(&self) -> Result<(), String> {
        for rel in self.rels.values() {
            for (i, d) in rel.deps.iter().enumerate() {
                if d.lhs.contains(d.rhs) {
                    return Err(format!(
                        "relation {}: pool entry {i} is reflexive",
                        rel.relation
                    ));
                }
                let premise_indices: Vec<usize> = match &d.prov {
                    Prov::Given(k) => {
                        if *k >= self.sigma.len() {
                            return Err(format!(
                                "relation {}: entry {i} cites Σ[{k}] out of range",
                                rel.relation
                            ));
                        }
                        vec![]
                    }
                    Prov::Prefix { dep, .. } | Prov::FullLocality { dep, .. } => vec![*dep],
                    Prov::Resolve {
                        target, supplier, ..
                    } => vec![*target, *supplier],
                    Prov::Singleton { .. } => vec![],
                };
                for p in premise_indices {
                    if p >= i {
                        return Err(format!(
                            "relation {}: entry {i} cites premise {p} (not well-founded)",
                            rel.relation
                        ));
                    }
                }
            }
            let active: Vec<&CDep> = rel.deps.iter().filter(|d| !d.subsumed).collect();
            for (i, a) in active.iter().enumerate() {
                for (j, b) in active.iter().enumerate() {
                    if i != j && a.rhs == b.rhs && a.lhs == b.lhs {
                        return Err(format!(
                            "relation {}: duplicate active entries for rhs {}",
                            rel.relation, a.rhs
                        ));
                    }
                    if i != j && a.rhs == b.rhs && a.lhs.is_subset(&b.lhs) {
                        return Err(format!(
                            "relation {}: active pool is not an antichain at rhs {}",
                            rel.relation, a.rhs
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfd::parse_set;

    fn worked_example() -> (Schema, Vec<Nfd>) {
        let schema =
            Schema::parse("R : { <A: {<B: {<C: int>}, E: {<F: int, G: int>}>}, D: int> };")
                .unwrap();
        let sigma = parse_set(
            &schema,
            "R:[A:B:C, D -> A:E:F];
             R:A:[B -> E:G];",
        )
        .unwrap();
        (schema, sigma)
    }

    #[test]
    fn section_3_1_worked_example() {
        let (schema, sigma) = worked_example();
        let engine = Engine::new(&schema, &sigma).unwrap();
        let goal = Nfd::parse(&schema, "R:A:[B -> E]").unwrap();
        assert!(engine.implies(&goal).unwrap());
    }

    #[test]
    fn section_3_1_intermediate_steps_all_derivable() {
        let (schema, sigma) = worked_example();
        let engine = Engine::new(&schema, &sigma).unwrap();
        // The paper's eight numbered steps.
        for step in [
            "R:A:[B:C -> E:F]",
            "R:A:[B -> E:F]",
            "R:A:E:[ -> F]",
            "R:A:[E -> E:F]",
            "R:A:E:[ -> G]",
            "R:A:[E -> E:G]",
            "R:A:[E:F, E:G -> E]",
            "R:A:[B -> E]",
        ] {
            let nfd = Nfd::parse(&schema, step).unwrap();
            assert!(
                engine.implies(&nfd).unwrap(),
                "step {step} should be derivable"
            );
        }
    }

    #[test]
    fn non_implied_goals_rejected() {
        let (schema, sigma) = worked_example();
        let engine = Engine::new(&schema, &sigma).unwrap();
        for goal in [
            "R:[D -> A]",
            "R:A:[E:G -> B]",
            "R:[A -> D]",
            "R:A:[B -> B:C]",
        ] {
            let nfd = Nfd::parse(&schema, goal).unwrap();
            assert!(
                !engine.implies(&nfd).unwrap(),
                "{goal} should NOT be derivable"
            );
        }
    }

    #[test]
    fn reflexivity_and_augmentation_hold() {
        let (schema, _) = worked_example();
        let engine = Engine::new(&schema, &[]).unwrap();
        assert!(engine
            .implies(&Nfd::parse(&schema, "R:[D, A -> D]").unwrap())
            .unwrap());
        assert!(!engine
            .implies(&Nfd::parse(&schema, "R:[D -> A]").unwrap())
            .unwrap());
    }

    /// Example A.1's closure, exactly as printed in the paper.
    #[test]
    fn example_a1_closure() {
        let schema = Schema::parse(
            "R : { <A: int, B: {<C: int>}, D: int, E: {<F: int, G: int>},
                   H: {<J: int, L: int>}, I: int, M: {<N: int, O: int>}> };",
        )
        .unwrap();
        let sigma = parse_set(
            &schema,
            "R:[A -> B:C]; R:[B:C -> D]; R:[D -> E:F];
             R:[A -> E:G]; R:[B:C -> H]; R:[I -> H:J];",
        )
        .unwrap();
        let engine = Engine::new(&schema, &sigma).unwrap();
        let closure = engine
            .closure(
                &RootedPath::parse("R").unwrap(),
                &[Path::parse("B").unwrap()],
            )
            .unwrap();
        let shown: Vec<String> = closure.iter().map(|r| r.to_string()).collect();
        assert_eq!(shown, ["R:B", "R:D", "R:H", "R:B:C", "R:E:F", "R:H:J"]);
    }

    /// Example A.2's closure, exactly as printed in the paper.
    #[test]
    fn example_a2_closure() {
        let schema =
            Schema::parse("R : { <A: {<B: {<C: int, D: int, E: {<F: int, G: int>}>}>}, H: int> };")
                .unwrap();
        let sigma = parse_set(
            &schema,
            "R:[A:B:C -> A:B]; R:[A:B:C -> A:B:E:F]; R:[H -> A:B:D];",
        )
        .unwrap();
        let engine = Engine::new(&schema, &sigma).unwrap();
        let closure = engine
            .closure(
                &RootedPath::parse("R").unwrap(),
                &[Path::parse("A:B:C").unwrap()],
            )
            .unwrap();
        let shown: Vec<String> = closure.iter().map(|r| r.to_string()).collect();
        assert_eq!(shown, ["R:A:B", "R:A:B:C", "R:A:B:D", "R:A:B:E:F"]);
    }

    /// The Section 1 motivating inference: from the five Course NFDs,
    /// sid and time determine the set of books.
    #[test]
    fn intro_books_inference() {
        let schema = Schema::parse(
            "Course : { <cnum: string, time: int,
                         students: {<sid: int, age: int, grade: string>},
                         books: {<isbn: string, title: string>}> };",
        )
        .unwrap();
        let sigma = parse_set(
            &schema,
            "Course:[cnum -> time]; Course:[cnum -> students]; Course:[cnum -> books];
             Course:[books:isbn -> books:title];
             Course:students:[sid -> grade];
             Course:[students:sid -> students:age];
             Course:[time, students:sid -> cnum];",
        )
        .unwrap();
        let engine = Engine::new(&schema, &sigma).unwrap();
        let goal = Nfd::parse(&schema, "Course:[time, students:sid -> books]").unwrap();
        assert!(engine.implies(&goal).unwrap());
        // But sid alone does not determine books.
        let weaker = Nfd::parse(&schema, "Course:[students:sid -> books]").unwrap();
        assert!(!engine.implies(&weaker).unwrap());
    }

    /// Singleton reasoning (Section 2.1): D → A:B and D → A:C make the
    /// whole set A determined by D.
    #[test]
    fn singleton_set_inference() {
        let schema = Schema::parse("R : { <A: {<B: int, C: int>}, D: int> };").unwrap();
        let sigma = parse_set(&schema, "R:[D -> A:B]; R:[D -> A:C];").unwrap();
        let engine = Engine::new(&schema, &sigma).unwrap();
        assert!(engine
            .implies(&Nfd::parse(&schema, "R:[D -> A]").unwrap())
            .unwrap());
        // With only one attribute determined, A is not.
        let sigma2 = parse_set(&schema, "R:[D -> A:B];").unwrap();
        let engine2 = Engine::new(&schema, &sigma2).unwrap();
        assert!(!engine2
            .implies(&Nfd::parse(&schema, "R:[D -> A]").unwrap())
            .unwrap());
    }

    /// Example 3.1: full-locality derives what locality cannot.
    #[test]
    fn example_3_1_full_locality() {
        let schema =
            Schema::parse("R : { <A: {<B: {<C: int, E: {<W: int>}>}, D: int>}> };").unwrap();
        let f1 = Nfd::parse(&schema, "R:[A:B:C, A:D -> A:B:E:W]").unwrap();
        let engine = Engine::new(&schema, &[f1]).unwrap();
        let strong = Nfd::parse(&schema, "R:[A:B, A:B:C -> A:B:E:W]").unwrap();
        assert!(engine.implies(&strong).unwrap());
    }

    /// Empty-set mode: Example 3.2's inference chain must be refused
    /// without an annotation and accepted with one.
    #[test]
    fn example_3_2_modified_transitivity() {
        let schema = Schema::parse("R : { <A: int, B: {<C: int>}, D: int, E: int> };").unwrap();
        let sigma = parse_set(&schema, "R:[A -> B:C]; R:[B:C -> D];").unwrap();
        let goal = Nfd::parse(&schema, "R:[A -> D]").unwrap();

        // Theorem 3.1 regime: derivable.
        let strict = Engine::new(&schema, &sigma).unwrap();
        assert!(strict.implies(&goal).unwrap());

        // Pessimistic empty-set regime: refused.
        let pess = Engine::with_policy(&schema, &sigma, EmptySetPolicy::pessimistic()).unwrap();
        assert!(!pess.implies(&goal).unwrap());

        // Declaring B non-empty restores the inference.
        let ann = Engine::with_policy(
            &schema,
            &sigma,
            EmptySetPolicy::non_empty([RootedPath::parse("R:B").unwrap()]),
        )
        .unwrap();
        assert!(ann.implies(&goal).unwrap());
    }

    /// Empty-set mode: the modified prefix rule (Section 3.2).
    #[test]
    fn example_3_2_modified_prefix() {
        let schema = Schema::parse("R : { <A: int, B: {<C: int>}, D: int, E: int> };").unwrap();
        let sigma = parse_set(&schema, "R:[B:C -> E];").unwrap();
        let goal = Nfd::parse(&schema, "R:[B -> E]").unwrap();

        let strict = Engine::new(&schema, &sigma).unwrap();
        assert!(strict.implies(&goal).unwrap());

        let pess = Engine::with_policy(&schema, &sigma, EmptySetPolicy::pessimistic()).unwrap();
        assert!(!pess.implies(&goal).unwrap());

        let ann = Engine::with_policy(
            &schema,
            &sigma,
            EmptySetPolicy::non_empty([RootedPath::parse("R:B").unwrap()]),
        )
        .unwrap();
        assert!(ann.implies(&goal).unwrap());
    }

    #[test]
    fn multi_relation_engine() {
        let schema = Schema::parse("R : {<A: int, B: int>}; S : {<X: int, Y: int>};").unwrap();
        let sigma = parse_set(&schema, "R:[A -> B]; S:[X -> Y];").unwrap();
        let engine = Engine::new(&schema, &sigma).unwrap();
        assert!(engine
            .implies(&Nfd::parse(&schema, "R:[A -> B]").unwrap())
            .unwrap());
        assert!(engine
            .implies(&Nfd::parse(&schema, "S:[X -> Y]").unwrap())
            .unwrap());
        // Dependencies do not leak across relations.
        assert!(!engine
            .implies(&Nfd::parse(&schema, "S:[Y -> X]").unwrap())
            .unwrap());
    }

    #[test]
    fn budget_exceeded_reports_error() {
        let (schema, sigma) = worked_example();
        match Engine::with_budget(
            &schema,
            &sigma,
            EmptySetPolicy::Forbidden,
            Budget::limited(2),
        ) {
            Err(CoreError::Exhausted(r)) => {
                assert_eq!(r.kind, ResourceKind::PoolDeps);
                assert_eq!(r.limit, 2);
            }
            Err(other) => panic!("unexpected error {other}"),
            Ok(_) => panic!("expected the saturation budget to be exceeded"),
        }
    }

    #[test]
    fn cancelled_token_stops_construction() {
        let (schema, sigma) = worked_example();
        let budget = Budget::unlimited();
        budget.cancel_token().cancel();
        match Engine::with_budget(&schema, &sigma, EmptySetPolicy::Forbidden, budget) {
            Err(CoreError::Exhausted(r)) => {
                assert_eq!(r.kind, nfd_govern::ResourceKind::Cancelled)
            }
            other => panic!("expected cancellation, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn flat_schema_behaves_like_armstrong() {
        let schema = Schema::parse("R : {<A: int, B: int, C: int, D: int>};").unwrap();
        let sigma = parse_set(&schema, "R:[A -> B]; R:[B -> C];").unwrap();
        let engine = Engine::new(&schema, &sigma).unwrap();
        assert!(engine
            .implies(&Nfd::parse(&schema, "R:[A -> C]").unwrap())
            .unwrap());
        assert!(engine
            .implies(&Nfd::parse(&schema, "R:[A, D -> C]").unwrap())
            .unwrap());
        assert!(!engine
            .implies(&Nfd::parse(&schema, "R:[B -> A]").unwrap())
            .unwrap());
        assert!(!engine
            .implies(&Nfd::parse(&schema, "R:[A -> D]").unwrap())
            .unwrap());
    }

    /// Engines built over shared pre-compiled tables answer exactly like
    /// freshly built ones.
    #[test]
    fn with_tables_matches_fresh_build() {
        let (schema, sigma) = worked_example();
        let tables = SchemaTables::new(&schema).unwrap();
        let fresh = Engine::new(&schema, &sigma).unwrap();
        let shared = Engine::with_tables(
            &schema,
            tables,
            &sigma,
            EmptySetPolicy::Forbidden,
            Budget::standard(),
        )
        .unwrap();
        for goal in ["R:A:[B -> E]", "R:[D -> A]", "R:A:[E -> E:G]"] {
            let nfd = Nfd::parse(&schema, goal).unwrap();
            assert_eq!(
                fresh.implies(&nfd).unwrap(),
                shared.implies(&nfd).unwrap(),
                "{goal}"
            );
        }
        assert_eq!(fresh.pool_size(), shared.pool_size());
    }

    /// The compiled `need_x` gate: under the pessimistic policy, chaining
    /// through an undefined intermediate is only allowed when the query's
    /// X contains it.
    #[test]
    fn need_x_gate_matches_policy() {
        let schema = Schema::parse("R : { <A: int, B: {<C: int>}, D: int> };").unwrap();
        let sigma = parse_set(&schema, "R:[A -> B:C]; R:[B:C -> D];").unwrap();
        let pess = Engine::with_policy(&schema, &sigma, EmptySetPolicy::pessimistic()).unwrap();
        // A → D blocked (intermediate B:C undefined)…
        assert!(!pess
            .implies(&Nfd::parse(&schema, "R:[A -> D]").unwrap())
            .unwrap());
        // …but B:C → D fine when B:C is in X itself.
        assert!(pess
            .implies(&Nfd::parse(&schema, "R:[B:C -> D]").unwrap())
            .unwrap());
        assert!(pess
            .implies(&Nfd::parse(&schema, "R:[A, B:C -> D]").unwrap())
            .unwrap());
    }
}
