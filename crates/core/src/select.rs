//! Engine tier selection — the cost model and promotion state behind
//! adaptive routing of closure queries.
//!
//! No single saturation strategy dominates: the retained naive pass scan
//! (`Tier 0`) is fastest on one-shot queries over small flat pools, the
//! indexed counting kernel (`Tier 1`, [`crate::kernel`]) wins on wide Σ
//! with overlapping LHS sets, and repeatedly-queried relations are best
//! served by precomputed dense closure rows (`Tier 2`,
//! [`crate::dense`]). This module supplies the pieces the engine routes
//! through:
//!
//! * [`Tier`] / [`TierPreference`] — the three tiers and the
//!   `auto`-or-forced override exposed by the CLI's `--engine` flag;
//! * [`CostModel`] — the static features (pool size, LHS overlap,
//!   path-table width) that pick between tiers 0 and 1, plus the
//!   observed-query-count threshold that promotes a relation to tier 2;
//! * [`SelectState`] — shared, per-relation promotion state (query
//!   counters, the built [`DenseClosure`](crate::dense::DenseClosure),
//!   a demotion latch for relations whose dense build exhausted its
//!   budget). Sessions share one `SelectState` across every query engine
//!   rebuilt over the same `(Σ, policy)` compilation — sound for the same
//!   reason the shared closure cache is: engine builds are deterministic,
//!   so every rebuild saturates the identical pool and a dense closure
//!   built against one rebuild is exact for all of them.
//!
//! Promotion uses hysteresis, not oscillation: a relation is promoted
//! after [`CostModel::promote_after`] queries, the build cost is charged
//! to the engine's [`Budget`](nfd_govern::Budget) (as
//! [`ResourceKind::DenseCells`](nfd_govern::ResourceKind)), and the
//! relation is never demoted — dense rows stay exact for the lifetime of
//! the compilation, and `Session::reconfigure` swaps in a fresh
//! `SelectState` (resetting counters and dropping the rows) exactly when
//! the compilation changes.
//!
//! Every tier computes the same least fixpoint `C(X)`, so tier choice can
//! change latency but never a verdict, a closure, or a proof — the
//! `tier_differential` suite holds all three tiers bit-identical.

use crate::dense::DenseClosure;
use nfd_model::Label;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One of the three closure-query engine tiers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Tier 0 — the retained naive pass scan (best for one-shot queries
    /// over small flat pools).
    Naive,
    /// Tier 1 — the indexed counting kernel of [`crate::kernel`].
    Indexed,
    /// Tier 2 — precomputed dense closure rows ([`crate::dense`]).
    Dense,
}

impl Tier {
    /// The stable lowercase name used by the CLI and reports.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Naive => "naive",
            Tier::Indexed => "indexed",
            Tier::Dense => "dense",
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The routing override: let the cost model pick, or force one tier —
/// the engine-level form of the CLI's `--engine {auto,naive,indexed,
/// dense}` flag, used for debugging and differential testing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TierPreference {
    /// Route each query through the cost model (the default).
    #[default]
    Auto,
    /// Serve every query from the given tier. Forcing [`Tier::Dense`]
    /// builds the rows on first use and surfaces the build's budget
    /// exhaustion honestly instead of falling back.
    Fixed(Tier),
}

impl TierPreference {
    /// Parses the CLI spelling: `auto`, `naive`, `indexed` or `dense`.
    pub fn parse(text: &str) -> Result<TierPreference, String> {
        match text {
            "auto" => Ok(TierPreference::Auto),
            "naive" => Ok(TierPreference::Fixed(Tier::Naive)),
            "indexed" => Ok(TierPreference::Fixed(Tier::Indexed)),
            "dense" => Ok(TierPreference::Fixed(Tier::Dense)),
            other => Err(format!(
                "engine must be `auto`, `naive`, `indexed` or `dense`, got `{other}`"
            )),
        }
    }
}

impl std::fmt::Display for TierPreference {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TierPreference::Auto => f.write_str("auto"),
            TierPreference::Fixed(t) => f.write_str(t.name()),
        }
    }
}

/// What one routed query did: which tier served it and whether the
/// shared closure cache answered before any chaining ran. Sessions thread
/// this through `Decision.tier`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryTrace {
    /// The tier the router selected, or `None` when no chaining was
    /// needed at all (the goal followed by reflexivity).
    pub tier: Option<Tier>,
    /// Whether the closure came from the attached [`ClosureCache`]
    /// (tiers 0/1 only; dense rows sit above the cache).
    ///
    /// [`ClosureCache`]: crate::kernel::ClosureCache
    pub cache_hit: bool,
}

/// The static per-relation features the cost model picks tiers from. All
/// are fixed once saturation completes, so the pick is computed once per
/// `(relation, compilation)` — queries pay nothing for the model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostFeatures {
    /// Active (non-subsumed) pool entries — the Σ width after saturation.
    pub active_deps: usize,
    /// Total LHS paths over the active entries; `lhs_paths /
    /// active_deps` is the mean LHS size, the LHS-overlap proxy.
    pub lhs_paths: usize,
    /// Bitset words per [`PathSet`](nfd_path::table::PathSet) — the
    /// per-entry cost of one scan step.
    pub words: usize,
    /// Interned paths in the relation's table.
    pub table_len: usize,
}

/// The tier-0/1 cost model plus the tier-2 promotion threshold.
///
/// The pass scan does `passes × active_deps` subset tests of `words`
/// words each with no setup; the counting kernel pays a per-query setup
/// proportional to `lhs_paths` (counter seeding through the occurrence
/// index) but then touches each entry O(|LHS|) times total. Measured on
/// the B14 workloads (see EXPERIMENTS.md), the scan wins exactly on
/// small, flat, narrow pools — few entries, one-or-two-path LHS sets,
/// single-word bitsets — and loses progressively as any of those grow.
/// The thresholds below draw that boundary; the calibration suite
/// (`tests/tier_calibration.rs`) keeps them honest against the measured
/// workload shapes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Largest active pool the scan tier is considered for.
    pub scan_max_deps: usize,
    /// Widest bitset (words) the scan tier is considered for.
    pub scan_max_words: usize,
    /// Largest mean LHS size (scaled ×8 to stay integral) the scan tier
    /// is considered for; above it, counter seeding amortizes better
    /// than repeated subset tests.
    pub scan_max_mean_lhs_x8: usize,
    /// Queries observed on a relation before it is promoted to the dense
    /// tier (under [`TierPreference::Auto`]). The observed-query-count
    /// feature: promotion pays a build proportional to `table_len²`, so
    /// it must be amortized over a hot relation, not a one-shot query.
    pub promote_after: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            scan_max_deps: 2048,
            scan_max_words: 4,
            scan_max_mean_lhs_x8: 17, // mean |LHS| ≤ 2.125
            promote_after: 8,
        }
    }
}

impl CostModel {
    /// Picks the tier that should serve one-shot queries on a relation
    /// with the given features (tier 2 is a promotion decision, not a
    /// per-query one — see [`CostModel::should_promote`]).
    pub fn pick(&self, f: &CostFeatures) -> Tier {
        let mean_lhs_x8 = (f.lhs_paths * 8).checked_div(f.active_deps).unwrap_or(0);
        if f.active_deps <= self.scan_max_deps
            && f.words <= self.scan_max_words
            && mean_lhs_x8 <= self.scan_max_mean_lhs_x8
        {
            Tier::Naive
        } else {
            Tier::Indexed
        }
    }

    /// Has a relation seen enough queries to justify the dense build?
    pub fn should_promote(&self, queries: u64) -> bool {
        queries >= self.promote_after
    }
}

/// Per-relation promotion state: the observed query counter, the built
/// dense closure (if promoted), and the latch marking a relation whose
/// auto-promotion build exhausted its cell budget (so it is not retried
/// every query).
#[derive(Debug, Default)]
pub(crate) struct RelSelect {
    queries: AtomicU64,
    dense: Mutex<Option<Arc<DenseClosure>>>,
    dense_failed: AtomicBool,
}

impl RelSelect {
    /// Counts one query; returns the new total.
    pub(crate) fn record_query(&self) -> u64 {
        self.queries.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The built dense closure, if this relation has been promoted.
    pub(crate) fn dense(&self) -> Option<Arc<DenseClosure>> {
        let guard = match self.dense.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.clone()
    }

    /// Stores a freshly built dense closure. Racing builders may both
    /// store — builds are deterministic over the same pool, so either
    /// value is exact and the last write wins harmlessly.
    pub(crate) fn set_dense(&self, d: Arc<DenseClosure>) {
        let mut guard = match self.dense.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        *guard = Some(d);
    }

    /// Latches this relation as unpromotable (its dense build ran out of
    /// cell budget); auto routing stops re-attempting the build.
    pub(crate) fn mark_dense_failed(&self) {
        self.dense_failed.store(true, Ordering::Relaxed);
    }

    /// Whether a previous auto-promotion build was abandoned.
    pub(crate) fn dense_failed(&self) -> bool {
        self.dense_failed.load(Ordering::Relaxed)
    }
}

/// Shared tier-selection state for one `(Σ, policy)` compilation: the
/// routing preference, the cost model, and per-relation promotion state.
///
/// A session creates one `SelectState` and attaches it (via
/// `Engine::with_engine_select`) to its resident engine and to every
/// query engine rebuilt over the cached tables, so promotion counters
/// survive rebuilds — the hysteresis the tiered design needs. Like the
/// shared [`ClosureCache`](crate::kernel::ClosureCache), the state is
/// scoped to one compilation; `reconfigure` replaces it wholesale.
#[derive(Debug)]
pub struct SelectState {
    preference: TierPreference,
    model: CostModel,
    rels: Mutex<HashMap<Label, Arc<RelSelect>>>,
}

impl SelectState {
    /// A fresh state (no queries observed, nothing promoted) routing by
    /// `preference` under the default [`CostModel`].
    pub fn new(preference: TierPreference) -> SelectState {
        SelectState::with_model(preference, CostModel::default())
    }

    /// [`SelectState::new`] with an explicit cost model (calibration
    /// tests pin thresholds through this).
    pub fn with_model(preference: TierPreference, model: CostModel) -> SelectState {
        SelectState {
            preference,
            model,
            rels: Mutex::new(HashMap::new()),
        }
    }

    /// The routing preference this state was created with.
    pub fn preference(&self) -> TierPreference {
        self.preference
    }

    /// The cost model in force.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// The promotion handle for `relation`, created on first use.
    pub(crate) fn rel(&self, relation: Label) -> Arc<RelSelect> {
        let mut rels = match self.rels.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        Arc::clone(rels.entry(relation).or_default())
    }

    /// Replaces `relation`'s promotion handle with a fresh one, dropping
    /// any built dense closure and resetting the query counter and the
    /// demotion latch. Scoped invalidation for live Σ mutation: after
    /// `Engine::add_dep`/`remove_dep` rebuild a relation, dense rows
    /// built over the old pool are stale for it, while every other
    /// relation's promotion state stays warm. Engines attached to this
    /// state must re-fetch the handle (see `Engine` internals) — the old
    /// `Arc` they hold is detached, never consulted for the new pool.
    pub fn invalidate_relation(&self, relation: Label) {
        let mut rels = match self.rels.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        rels.remove(&relation);
    }

    /// Queries observed on `relation` so far (observability for tests
    /// and reports).
    pub fn queries(&self, relation: Label) -> u64 {
        self.rel(relation).queries.load(Ordering::Relaxed)
    }

    /// Whether `relation` has been promoted to the dense tier.
    pub fn dense_built(&self, relation: Label) -> bool {
        self.rel(relation).dense().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preference_parses_cli_spellings() {
        assert_eq!(TierPreference::parse("auto"), Ok(TierPreference::Auto));
        assert_eq!(
            TierPreference::parse("naive"),
            Ok(TierPreference::Fixed(Tier::Naive))
        );
        assert_eq!(
            TierPreference::parse("indexed"),
            Ok(TierPreference::Fixed(Tier::Indexed))
        );
        assert_eq!(
            TierPreference::parse("dense"),
            Ok(TierPreference::Fixed(Tier::Dense))
        );
        assert!(TierPreference::parse("turbo").is_err());
        assert_eq!(TierPreference::Fixed(Tier::Dense).to_string(), "dense");
    }

    #[test]
    fn cost_model_picks_scan_for_small_flat_pools() {
        let m = CostModel::default();
        let flat = CostFeatures {
            active_deps: 500,
            lhs_paths: 500,
            words: 1,
            table_len: 32,
        };
        assert_eq!(m.pick(&flat), Tier::Naive);
        let wide = CostFeatures {
            active_deps: 5000,
            lhs_paths: 40_000,
            words: 8,
            table_len: 400,
        };
        assert_eq!(m.pick(&wide), Tier::Indexed);
        // Heavy LHS overlap alone flips the pick even on a small pool.
        let overlapping = CostFeatures {
            active_deps: 400,
            lhs_paths: 4000,
            words: 1,
            table_len: 64,
        };
        assert_eq!(m.pick(&overlapping), Tier::Indexed);
    }

    #[test]
    fn promotion_counts_and_latch() {
        let state = SelectState::new(TierPreference::Auto);
        let r = Label::new("R");
        assert_eq!(state.queries(r), 0);
        let handle = state.rel(r);
        for _ in 0..5 {
            handle.record_query();
        }
        assert_eq!(state.queries(r), 5);
        assert!(!state.model().should_promote(5));
        assert!(state.model().should_promote(8));
        assert!(!handle.dense_failed());
        handle.mark_dense_failed();
        assert!(handle.dense_failed());
        assert!(!state.dense_built(r));
    }
}
