//! Nested functional dependencies (Definition 2.3).
//!
//! An NFD over a schema is `x0:[x1,…,xm-1 → xm]` where the base path
//! `x0 = R y` is rooted at a relation, and each component `xi` is a
//! non-empty path well-typed with respect to the element records of `x0`.
//!
//! The concrete syntax mirrors the paper:
//!
//! ```text
//! Course:[cnum -> time]                      # key component
//! Course:[students:sid -> students:age]      # inter-set ("global")
//! Course:students:[sid -> grade]             # intra-set ("local")
//! R:[ -> A]                                  # degenerate: A is constant
//! ```

use crate::error::CoreError;
use nfd_model::{ModelError, Schema};
use nfd_path::typing::{base_element_record, resolve_in_record};
use nfd_path::{Path, RootedPath};
use std::fmt;

/// A nested functional dependency `x0:[x1,…,xm-1 → xm]`.
///
/// The LHS is kept sorted and deduplicated, so NFDs compare as the paper
/// intends (`X` is a *set* of paths).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Nfd {
    /// The base path `x0 = R y`.
    pub base: RootedPath,
    /// The determining paths `x1 … xm-1` (possibly empty — the degenerate
    /// "constant" form).
    lhs: Vec<Path>,
    /// The determined path `xm`.
    pub rhs: Path,
}

impl Nfd {
    /// Builds an NFD without schema validation (use [`Nfd::validate`] or
    /// [`Nfd::parse`] for checked construction). Component paths must be
    /// non-empty.
    pub fn new(
        base: RootedPath,
        lhs: impl IntoIterator<Item = Path>,
        rhs: Path,
    ) -> Result<Nfd, CoreError> {
        let mut lhs: Vec<Path> = lhs.into_iter().collect();
        if rhs.is_empty() || lhs.iter().any(Path::is_empty) {
            return Err(CoreError::EmptyComponentPath);
        }
        lhs.sort();
        lhs.dedup();
        Ok(Nfd { base, lhs, rhs })
    }

    /// The determining paths, sorted and deduplicated.
    pub fn lhs(&self) -> &[Path] {
        &self.lhs
    }

    /// Checks that the NFD is well-formed over `schema` (Definition 2.3):
    /// the base resolves to a set of records and each component path
    /// resolves in its element record.
    pub fn validate(&self, schema: &Schema) -> Result<(), CoreError> {
        let rec = base_element_record(schema, &self.base)?;
        for p in self.lhs.iter().chain(std::iter::once(&self.rhs)) {
            resolve_in_record(rec, p)?;
        }
        Ok(())
    }

    /// Parses an NFD in the paper's syntax and validates it against
    /// `schema`, e.g. `Course:[students:sid -> students:age]` or
    /// `Course:students:[sid -> grade]`. An empty LHS (`R:[ -> A]`) is the
    /// degenerate constant form.
    pub fn parse(schema: &Schema, text: &str) -> Result<Nfd, CoreError> {
        let nfd = Self::parse_unchecked(text)?;
        nfd.validate(schema)?;
        Ok(nfd)
    }

    /// Parses without schema validation.
    pub fn parse_unchecked(text: &str) -> Result<Nfd, CoreError> {
        let text = text.trim();
        let open = text
            .find('[')
            .ok_or_else(|| CoreError::Parse(format!("missing `[` in `{text}`")))?;
        if !text.ends_with(']') {
            return Err(CoreError::Parse(format!(
                "missing trailing `]` in `{text}`"
            )));
        }
        let base_text = text[..open].trim().trim_end_matches(':').trim();
        let base = RootedPath::parse(base_text)
            .map_err(|e| CoreError::Parse(format!("bad base path `{base_text}`: {e}")))?;
        let inner = &text[open + 1..text.len() - 1];
        let arrow = inner
            .find("->")
            .ok_or_else(|| CoreError::Parse(format!("missing `->` in `{text}`")))?;
        let lhs_text = inner[..arrow].trim();
        let rhs_text = inner[arrow + 2..].trim();
        let mut lhs = Vec::new();
        if !lhs_text.is_empty() && lhs_text != "∅" {
            for part in lhs_text.split(',') {
                let p = Path::parse(part)
                    .map_err(|e| CoreError::Parse(format!("bad LHS path `{part}`: {e}")))?;
                if p.is_empty() {
                    return Err(CoreError::Parse(format!("empty LHS path in `{text}`")));
                }
                lhs.push(p);
            }
        }
        let rhs = Path::parse(rhs_text)
            .map_err(|e| CoreError::Parse(format!("bad RHS path `{rhs_text}`: {e}")))?;
        if rhs.is_empty() {
            return Err(CoreError::Parse(format!("empty RHS path in `{text}`")));
        }
        Nfd::new(base, lhs, rhs)
    }

    /// Is the RHS among the LHS paths? Such NFDs are instances of
    /// reflexivity and hold on every instance.
    pub fn is_trivial(&self) -> bool {
        self.lhs.contains(&self.rhs)
    }

    /// Is the LHS empty (the degenerate `x0:[∅ → xm]` form, asserting that
    /// `xm` is constant across the base)?
    pub fn is_constant_form(&self) -> bool {
        self.lhs.is_empty()
    }

    /// All component paths (LHS then RHS).
    pub fn component_paths(&self) -> impl Iterator<Item = &Path> {
        self.lhs.iter().chain(std::iter::once(&self.rhs))
    }

    /// Is this a "local" dependency in the paper's sense — base path longer
    /// than a bare relation name (Section 2.3)?
    pub fn is_local(&self) -> bool {
        !self.base.path.is_empty()
    }

    /// Translates this NFD to its Section 2.2 logic formula.
    pub fn to_formula(&self, schema: &Schema) -> Result<nfd_logic::Formula, CoreError> {
        nfd_logic::translate_nfd(schema, &self.base, &self.lhs, &self.rhs).map_err(|e| match e {
            nfd_logic::TranslateError::EmptyComponentPath => CoreError::EmptyComponentPath,
            nfd_logic::TranslateError::Type(t) => CoreError::Type(t),
        })
    }
}

impl fmt::Display for Nfd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:[", self.base)?;
        for (i, p) in self.lhs.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, " -> {}]", self.rhs)
    }
}

impl fmt::Debug for Nfd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Nfd({self})")
    }
}

/// Parses a `;`-separated list of NFDs (blank entries ignored; `#` starts
/// a line comment), validating each against `schema`. Convenient for
/// writing Σ in tests and examples.
pub fn parse_set(schema: &Schema, text: &str) -> Result<Vec<Nfd>, CoreError> {
    let cleaned: String = text
        .lines()
        .map(|l| l.split('#').next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n");
    cleaned
        .split(';')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| Nfd::parse(schema, s))
        .collect()
}

impl From<ModelError> for CoreError {
    fn from(e: ModelError) -> Self {
        CoreError::Parse(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::parse(
            "Course : { <cnum: string, time: int,
                         students: {<sid: int, age: int, grade: string>},
                         books: {<isbn: string, title: string>}> };",
        )
        .unwrap()
    }

    #[test]
    fn parse_the_five_course_nfds() {
        let s = schema();
        // Examples 2.1–2.5 of the paper.
        for text in [
            "Course:[cnum -> time]",
            "Course:[cnum -> students]",
            "Course:[cnum -> books]",
            "Course:[books:isbn -> books:title]",
            "Course:students:[sid -> grade]",
            "Course:[students:sid -> students:age]",
            "Course:[time, students:sid -> cnum]",
        ] {
            let nfd = Nfd::parse(&s, text).unwrap();
            assert_eq!(
                Nfd::parse(&s, &nfd.to_string()).unwrap(),
                nfd,
                "roundtrip {text}"
            );
        }
    }

    #[test]
    fn local_vs_global() {
        let s = schema();
        let local = Nfd::parse(&s, "Course:students:[sid -> grade]").unwrap();
        assert!(local.is_local());
        let global = Nfd::parse(&s, "Course:[students:sid -> students:age]").unwrap();
        assert!(!global.is_local());
    }

    #[test]
    fn degenerate_constant_form() {
        let s = schema();
        let c = Nfd::parse(&s, "Course:[ -> time]").unwrap();
        assert!(c.is_constant_form());
        assert_eq!(c.to_string(), "Course:[ -> time]");
        let c2 = Nfd::parse(&s, &c.to_string()).unwrap();
        assert_eq!(c, c2);
    }

    #[test]
    fn lhs_is_canonical() {
        let s = schema();
        let a = Nfd::parse(&s, "Course:[time, cnum -> books]").unwrap();
        let b = Nfd::parse(&s, "Course:[cnum, time, cnum -> books]").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.lhs().len(), 2);
    }

    #[test]
    fn validation_rejects_bad_paths() {
        let s = schema();
        assert!(matches!(
            Nfd::parse(&s, "Course:[nope -> time]"),
            Err(CoreError::Type(_))
        ));
        assert!(matches!(
            Nfd::parse(&s, "Course:cnum:[x -> y]"),
            Err(CoreError::Type(_))
        ));
        assert!(matches!(
            Nfd::parse(&s, "Nope:[a -> b]"),
            Err(CoreError::Type(_))
        ));
    }

    #[test]
    fn parse_errors() {
        let s = schema();
        assert!(matches!(
            Nfd::parse(&s, "Course cnum -> time"),
            Err(CoreError::Parse(_))
        ));
        assert!(matches!(
            Nfd::parse(&s, "Course:[cnum, time]"),
            Err(CoreError::Parse(_))
        ));
        assert!(matches!(
            Nfd::parse(&s, "Course:[cnum -> ]"),
            Err(CoreError::Parse(_))
        ));
        assert!(matches!(
            Nfd::parse(&s, "Course:[cnum -> time"),
            Err(CoreError::Parse(_))
        ));
    }

    #[test]
    fn trivial_detection() {
        let s = schema();
        assert!(Nfd::parse(&s, "Course:[cnum, time -> time]")
            .unwrap()
            .is_trivial());
        assert!(!Nfd::parse(&s, "Course:[cnum -> time]")
            .unwrap()
            .is_trivial());
    }

    #[test]
    fn parse_set_splits_on_semicolons() {
        let s = schema();
        let set = parse_set(
            &s,
            "Course:[cnum -> time];
             Course:students:[sid -> grade];
             ",
        )
        .unwrap();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn parse_set_strips_line_comments() {
        let s = schema();
        let set = parse_set(
            &s,
            "# the key constraint:
             Course:[cnum -> time];  # inline trailing comment
             # grades are local:
             Course:students:[sid -> grade];",
        )
        .unwrap();
        assert_eq!(set.len(), 2, "comments must not swallow constraints");
    }

    #[test]
    fn component_paths_iterates_lhs_then_rhs() {
        let s = schema();
        let nfd = Nfd::parse(&s, "Course:[cnum, time -> books]").unwrap();
        let comps: Vec<String> = nfd.component_paths().map(Path::to_string).collect();
        assert_eq!(comps, ["cnum", "time", "books"]);
    }

    #[test]
    fn to_formula_delegates() {
        let s = schema();
        let nfd = Nfd::parse(&s, "Course:students:[sid -> grade]").unwrap();
        let f = nfd.to_formula(&s).unwrap();
        assert_eq!(f.quantifier_count(), 3);
    }
}
