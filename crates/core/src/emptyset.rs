//! Empty sets and the Section 3.2 rule modifications.
//!
//! Universal quantification over an empty set is vacuously true, so
//! transitivity (Example 3.2) and prefix are unsound once instances may
//! contain empty sets. The paper's remedy — analogous to `NOT NULL`
//! declarations — is to let the user declare *where empty sets are known
//! not to occur*, and to gate the affected rules on those declarations
//! together with the [`follows`](nfd_path::Path::follows) relation
//! (Definition 3.2).
//!
//! [`EmptySetPolicy`] packages this choice:
//!
//! * [`EmptySetPolicy::Forbidden`] — Theorem 3.1's regime: no instance
//!   contains an empty set, all eight rules apply unconditionally.
//! * [`EmptySetPolicy::Annotated`] — instances may contain empty sets
//!   except at the declared set-valued paths. The engine then uses the
//!   **modified transitivity** rule (every intermediate path must either
//!   *follow* the conclusion's RHS or be known defined) and the **modified
//!   prefix** rule (`x1` must be known non-empty); locality-style rules
//!   require the dismissed paths to be defined for the same reason.

use nfd_path::{Path, RootedPath};
use std::collections::HashSet;

/// How the implication engine treats empty sets.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum EmptySetPolicy {
    /// No instance contains an empty set (the paper's main regime,
    /// Theorem 3.1). All rules apply unconditionally.
    #[default]
    Forbidden,
    /// Instances may contain empty sets, except at the listed set-valued
    /// rooted paths which are declared to always have at least one element
    /// (the paper's proposed `NON-NULL` analogue, Sections 3.2 and 4).
    Annotated(HashSet<RootedPath>),
}

impl EmptySetPolicy {
    /// An `Annotated` policy with no declarations: fully pessimistic.
    pub fn pessimistic() -> EmptySetPolicy {
        EmptySetPolicy::Annotated(HashSet::new())
    }

    /// An `Annotated` policy declaring the given rooted paths non-empty.
    pub fn non_empty(paths: impl IntoIterator<Item = RootedPath>) -> EmptySetPolicy {
        EmptySetPolicy::Annotated(paths.into_iter().collect())
    }

    /// Is the set at rooted path `R:p` known to be non-empty in every
    /// navigation?
    pub fn is_non_empty(&self, relation: nfd_model::Label, p: &Path) -> bool {
        match self {
            EmptySetPolicy::Forbidden => true,
            EmptySetPolicy::Annotated(set) => set.contains(&RootedPath::new(relation, p.clone())),
        }
    }

    /// Is the value of path `p` (relative to relation `R`'s element
    /// records) *defined* in every navigation — i.e. is every set it
    /// traverses (every non-empty proper prefix of `p`) known non-empty?
    ///
    /// A single-label path projects a record field and is always defined.
    pub fn is_defined(&self, relation: nfd_model::Label, p: &Path) -> bool {
        match self {
            EmptySetPolicy::Forbidden => true,
            EmptySetPolicy::Annotated(_) => p
                .prefixes()
                .filter(|q| q.is_proper_prefix_of(p))
                .all(|q| self.is_non_empty(relation, &q)),
        }
    }

    /// The **modified transitivity** gate (Section 3.2): an intermediate
    /// path `p ∉ X` may justify a transitivity step concluding `y` iff it
    /// follows `y` or is known defined.
    pub fn transitivity_ok(&self, relation: nfd_model::Label, p: &Path, y: &Path) -> bool {
        match self {
            EmptySetPolicy::Forbidden => true,
            EmptySetPolicy::Annotated(_) => p.follows(y) || self.is_defined(relation, p),
        }
    }

    /// The **modified prefix** gate (Section 3.2): shortening `x1:A` to
    /// `x1` requires `x1` to be known non-empty (and reachable: its own
    /// traversals defined).
    pub fn prefix_ok(&self, relation: nfd_model::Label, x1: &Path) -> bool {
        match self {
            EmptySetPolicy::Forbidden => true,
            EmptySetPolicy::Annotated(_) => {
                self.is_non_empty(relation, x1) && self.is_defined(relation, x1)
            }
        }
    }

    /// Gate for dismissing an out-of-subtree path `y` in the locality /
    /// full-locality rules: the dismissed premise component must be
    /// applicable whenever the conclusion is, i.e. `y` follows the RHS or
    /// is known defined. (The paper leaves the empty-set treatment of
    /// locality to future work; this conservative gate keeps the rule
    /// sound — see DESIGN.md.)
    pub fn locality_ok(&self, relation: nfd_model::Label, y: &Path, rhs: &Path) -> bool {
        match self {
            EmptySetPolicy::Forbidden => true,
            EmptySetPolicy::Annotated(_) => y.follows(rhs) || self.is_defined(relation, y),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfd_model::Label;

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    fn r() -> Label {
        Label::new("R")
    }

    #[test]
    fn forbidden_gates_everything_open() {
        let pol = EmptySetPolicy::Forbidden;
        assert!(pol.is_non_empty(r(), &p("B")));
        assert!(pol.is_defined(r(), &p("B:C")));
        assert!(pol.transitivity_ok(r(), &p("B:C"), &p("D")));
        assert!(pol.prefix_ok(r(), &p("B")));
        assert!(pol.locality_ok(r(), &p("Q"), &p("A:z")));
    }

    #[test]
    fn example_3_2_gate() {
        // R:[A → B:C], R:[B:C → D]: the intermediate B:C neither follows D
        // nor is defined unless B is declared non-empty.
        let pess = EmptySetPolicy::pessimistic();
        assert!(!pess.transitivity_ok(r(), &p("B:C"), &p("D")));
        let annotated = EmptySetPolicy::non_empty([RootedPath::parse("R:B").unwrap()]);
        assert!(annotated.transitivity_ok(r(), &p("B:C"), &p("D")));
    }

    #[test]
    fn follows_substitutes_for_annotation() {
        // Intermediate path B follows B:C (single label follows any longer
        // path); no annotation needed.
        let pess = EmptySetPolicy::pessimistic();
        assert!(pess.transitivity_ok(r(), &p("B"), &p("B:C")));
        // …and any single-label intermediate is defined anyway.
        assert!(pess.transitivity_ok(r(), &p("E"), &p("D")));
    }

    #[test]
    fn defined_requires_all_traversed_sets() {
        let pol = EmptySetPolicy::non_empty([RootedPath::parse("R:A").unwrap()]);
        assert!(pol.is_defined(r(), &p("A:B")));
        // A:B:C traverses A and A:B; only A is declared.
        assert!(!pol.is_defined(r(), &p("A:B:C")));
        let both = EmptySetPolicy::non_empty([
            RootedPath::parse("R:A").unwrap(),
            RootedPath::parse("R:A:B").unwrap(),
        ]);
        assert!(both.is_defined(r(), &p("A:B:C")));
        // Single labels are always defined.
        assert!(EmptySetPolicy::pessimistic().is_defined(r(), &p("A")));
    }

    #[test]
    fn prefix_gate_needs_the_set_itself() {
        // Shortening B:C → B needs B non-empty.
        let pess = EmptySetPolicy::pessimistic();
        assert!(!pess.prefix_ok(r(), &p("B")));
        let ann = EmptySetPolicy::non_empty([RootedPath::parse("R:B").unwrap()]);
        assert!(ann.prefix_ok(r(), &p("B")));
        // Deeper: shortening A:B:C → A:B needs A:B non-empty AND A (its
        // traversal) non-empty.
        let only_ab = EmptySetPolicy::non_empty([RootedPath::parse("R:A:B").unwrap()]);
        assert!(!only_ab.prefix_ok(r(), &p("A:B")));
    }
}
