//! Dependency-set analysis: the "tools to operate on dependencies" the
//! paper motivates (Section 1: equivalence-preserving transformations,
//! redundancy elimination, design-style reasoning), built on the
//! implication engine.
//!
//! Everything here is the nested analogue of classical FD design theory:
//!
//! * [`equivalent`] — mutual implication of two Σ sets;
//! * [`minimize`] — a minimal cover: drop implied NFDs, then drop
//!   extraneous LHS paths;
//! * [`candidate_keys`] — minimal path sets determining every path of a
//!   relation;
//! * [`forced_singletons`] — set-valued paths that Σ forces to be
//!   singletons (the Section 2.1 observation, decided by the engine);
//! * [`equal_or_disjoint_sets`] — set-valued paths whose values Σ forces
//!   to be pairwise equal or disjoint (the `x0:[x1:x2 → x1]` pattern).

use crate::engine::Engine;
use crate::error::CoreError;
use crate::kernel::ChainScratch;
use crate::nfd::Nfd;
use nfd_govern::{ResourceKind, ResourceReport};
use nfd_model::{Label, Schema};
use nfd_path::table::{PathId, PathSet};
use nfd_path::{Path, RootedPath};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Do `a` and `b` imply each other over `schema`?
pub fn equivalent(schema: &Schema, a: &[Nfd], b: &[Nfd]) -> Result<bool, CoreError> {
    let ea = Engine::new(schema, a)?;
    for nfd in b {
        if !ea.implies(nfd)? {
            return Ok(false);
        }
    }
    let eb = Engine::new(schema, b)?;
    for nfd in a {
        if !eb.implies(nfd)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Is `nfd` redundant in `sigma` (implied by the others)?
pub fn is_redundant(schema: &Schema, sigma: &[Nfd], index: usize) -> Result<bool, CoreError> {
    let rest: Vec<Nfd> = sigma
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != index)
        .map(|(_, n)| n.clone())
        .collect();
    Engine::new(schema, &rest)?.implies(&sigma[index])
}

/// A minimal cover of Σ: equivalent to the input, with
///
/// 1. no extraneous LHS paths (no LHS path of any member can be dropped
///    without weakening it), and
/// 2. no redundant members (none is implied by the rest).
///
/// Like its classical counterpart the result depends on examination order;
/// it is deterministic for a given input.
pub fn minimize(schema: &Schema, sigma: &[Nfd]) -> Result<Vec<Nfd>, CoreError> {
    let mut fds: Vec<Nfd> = sigma.to_vec();
    fds.sort();
    fds.dedup();

    // 1. Trim extraneous LHS paths, one at a time.
    let mut i = 0;
    while i < fds.len() {
        let mut changed = true;
        while changed {
            changed = false;
            let lhs: Vec<Path> = fds[i].lhs().to_vec();
            for drop in &lhs {
                if fds[i].lhs().len() <= 1 && fds[i].lhs().contains(drop) && fds[i].lhs().len() == 1
                {
                    // Allow trimming down to the constant form only if it
                    // still follows; handled by the same check below.
                }
                let reduced = Nfd::new(
                    fds[i].base.clone(),
                    lhs.iter().filter(|p| *p != drop).cloned(),
                    fds[i].rhs.clone(),
                )?;
                if reduced == fds[i] {
                    continue;
                }
                // The reduced NFD must follow from the CURRENT set.
                let engine = Engine::new(schema, &fds)?;
                if engine.implies(&reduced)? {
                    fds[i] = reduced;
                    changed = true;
                    break;
                }
            }
        }
        i += 1;
    }
    fds.sort();
    fds.dedup();

    // 2. Drop redundant members.
    let mut i = 0;
    while i < fds.len() {
        if is_redundant(schema, &fds, i)? {
            fds.remove(i);
        } else {
            i += 1;
        }
    }
    Ok(fds)
}

/// All candidate keys of `relation`: ⊆-minimal sets `X` of top-level
/// attribute paths whose closure contains **every top-level attribute** —
/// i.e. `X` determines the whole tuple. (A tuple of a nested relation is
/// its record of top-level fields; deeper paths denote *elements inside*
/// set-valued fields and are never functionally determined by tuple
/// identity alone, so they do not belong to the key notion.)
///
/// Like the classical problem this is exponential in the worst case;
/// `max_key_size` caps the search (keys larger than the cap are not
/// reported).
pub fn candidate_keys(
    engine: &Engine<'_>,
    relation: Label,
    max_key_size: usize,
) -> Result<Vec<Vec<Path>>, CoreError> {
    candidate_keys_threaded(engine, relation, max_key_size, 1)
}

/// [`candidate_keys`] sharded across `threads` workers (`0` = all
/// available parallelism). Each size level is partitioned by the first
/// attribute of the combination — independent subsets per worker — with
/// levels merged at a barrier so superset pruning sees exactly the keys a
/// sequential sweep would have.
///
/// The result (keys, or the exhaustion report) is identical at every
/// thread count for counter-only budgets:
///
/// * candidates are counted on one shared atomic, and a level enumerates
///   a fixed candidate population, so whether the cumulative count
///   crosses `max_key_candidates` does not depend on interleaving; the
///   first over-limit count is canonically `limit + 1`;
/// * pruning only ever consults keys from strictly smaller levels — a
///   same-level "superset" would be an equal-size distinct combination,
///   which cannot be a superset — so dropping the sequential sweep's
///   incremental same-level pruning changes nothing;
/// * each level's keys are merged in task order (= first-attribute
///   order), reproducing sequential discovery order before the final
///   sort.
///
/// Deadline and external-cancellation exhaustion remain timing-dependent,
/// as they are for sequential runs.
pub fn candidate_keys_threaded(
    engine: &Engine<'_>,
    relation: Label,
    max_key_size: usize,
    threads: usize,
) -> Result<Vec<Vec<Path>>, CoreError> {
    engine
        .schema()
        .relation_type(relation)
        .map_err(|_| CoreError::Nav(format!("unknown relation `{relation}`")))?
        .element_record()
        .ok_or_else(|| CoreError::Nav(format!("relation `{relation}` has no element record")))?;
    let rel = engine.rel(relation)?;
    // Tier routing for the sweep: any forced or already-due dense build
    // happens here, once, so the per-candidate cover test stays
    // infallible (see `Engine::prepare_analysis`).
    engine.prepare_analysis(rel)?;
    let table = &rel.table;
    // Candidate components and the coverage universe: top-level
    // attributes (paths of length 1 — the ids with no parent).
    let attrs: Vec<PathId> = (0..table.len() as PathId)
        .filter(|&id| table.parent(id).is_none())
        .collect();
    let universe = PathSet::from_ids(table.words(), attrs.iter().copied());

    // Subset enumeration is exponential; count candidates against the
    // engine's budget (shared across workers) and stop the whole level
    // the moment it runs out.
    let budget = engine.budget();
    let visited = AtomicU64::new(0);
    let stop = AtomicBool::new(false);

    // One candidate: budget first (every enumerated candidate counts,
    // pruned or not, exactly as in a sequential sweep), then prune
    // against keys from completed levels, then the closure cover test.
    // Each worker owns a chain scratch, so the cover test reuses the
    // counting kernel's buffers across every candidate it enumerates.
    let visit_one = |cand: &[PathId],
                     known: &[Vec<PathId>],
                     scratch: &mut ChainScratch|
     -> Result<bool, ResourceReport> {
        let v = visited.fetch_add(1, Ordering::Relaxed) + 1;
        budget
            .check_counter(ResourceKind::KeyCandidates, v)
            .map_err(|r| {
                // Racing workers may overshoot the limit by up to one
                // candidate each; the first over-limit count is limit+1
                // at any thread count, so that is the canonical report.
                ResourceReport::counter(r.kind, r.limit, r.limit.saturating_add(1))
            })?;
        if v.is_multiple_of(1024) {
            budget.check_live()?;
        }
        if known.iter().any(|k| k.iter().all(|p| cand.contains(p))) {
            return Ok(false); // superset of a known key
        }
        Ok(universe.is_subset(&engine.analysis_chain(rel, cand, scratch)))
    };

    let mut keys: Vec<Vec<PathId>> = Vec::new();
    for size in 0..=max_key_size.min(attrs.len()) {
        let known = &keys;
        // Task `first` enumerates the combinations beginning with
        // attrs[first] (size 0 has the single empty combination).
        let tasks = if size == 0 { 1 } else { attrs.len() };
        let results: Vec<Result<Vec<Vec<PathId>>, ResourceReport>> =
            nfd_par::map_indexed(tasks, threads, |first| {
                let mut found: Vec<Vec<PathId>> = Vec::new();
                let mut fail: Option<ResourceReport> = None;
                let mut combo: Vec<PathId> = Vec::with_capacity(size);
                let mut scratch = ChainScratch::default();
                let start = if size == 0 {
                    0
                } else {
                    combo.push(attrs[first]);
                    first + 1
                };
                search(&attrs, size, start, &mut combo, &mut |cand| {
                    if stop.load(Ordering::Relaxed) {
                        // A sibling exhausted the budget: quit; partial
                        // results are discarded with the whole level.
                        return false;
                    }
                    match visit_one(cand, known, &mut scratch) {
                        Ok(true) => {
                            found.push(cand.to_vec());
                            true
                        }
                        Ok(false) => true,
                        Err(r) => {
                            stop.store(true, Ordering::Relaxed);
                            fail = Some(r);
                            false
                        }
                    }
                });
                match fail {
                    Some(r) => Err(r),
                    None => Ok(found),
                }
            });
        // Merge in task order. On exhaustion prefer the canonical counter
        // report (identical from every worker that trips it) over the
        // timing-dependent liveness kinds.
        let mut exhausted: Option<ResourceReport> = None;
        for res in results {
            match res {
                Ok(found) => keys.extend(found),
                Err(r) => {
                    if exhausted.is_none() || r.kind == ResourceKind::KeyCandidates {
                        exhausted = Some(r);
                    }
                }
            }
        }
        if let Some(r) = exhausted {
            return Err(CoreError::Exhausted(r));
        }
    }
    let mut keys: Vec<Vec<Path>> = keys
        .into_iter()
        .map(|k| k.into_iter().map(|id| table.path(id).clone()).collect())
        .collect();
    keys.sort();
    Ok(keys)
}

/// Enumerates `size`-subsets of `items`, calling `visit` on each; the
/// visitor returns whether to continue, and `search` propagates an abort
/// all the way out.
fn search(
    items: &[PathId],
    size: usize,
    start: usize,
    combo: &mut Vec<PathId>,
    visit: &mut dyn FnMut(&[PathId]) -> bool,
) -> bool {
    if combo.len() == size {
        return visit(combo);
    }
    for i in start..items.len() {
        combo.push(items[i]);
        let keep_going = search(items, size, i + 1, combo, visit);
        combo.pop();
        if !keep_going {
            return false;
        }
    }
    true
}

/// Set-valued paths that Σ forces to be empty-or-singleton: those whose
/// value is determined by each of its element attributes, i.e.
/// `x0:[x → x:Ai]` is derivable for every attribute `Ai` (the paper's
/// Section 2.1 singleton analysis). Returned as rooted paths.
pub fn forced_singletons(engine: &Engine<'_>) -> Result<Vec<RootedPath>, CoreError> {
    let mut out = Vec::new();
    let mut scratch = ChainScratch::default();
    for relation in engine.schema().relation_names() {
        let rel = engine.rel(relation)?;
        let table = &rel.table;
        for x_id in 0..table.len() as PathId {
            if !table.is_set_record(x_id) {
                continue;
            }
            let attrs = table.children(x_id);
            if attrs.is_empty() {
                continue;
            }
            let c = rel.chain_scratch(&[x_id], &mut scratch);
            if attrs.iter().all(|&a| c.contains(a)) {
                out.push(RootedPath::new(relation, table.path(x_id).clone()));
            }
        }
    }
    Ok(out)
}

/// Set-valued paths `x1` for which Σ forces any two values to be equal or
/// disjoint — the paper's observation about NFDs of form
/// `x0:[x1:x2 → x1]`. A path qualifies if such an NFD is derivable for
/// some child `x2`.
pub fn equal_or_disjoint_sets(engine: &Engine<'_>) -> Result<Vec<RootedPath>, CoreError> {
    let mut out = Vec::new();
    let mut scratch = ChainScratch::default();
    for relation in engine.schema().relation_names() {
        let rel = engine.rel(relation)?;
        let table = &rel.table;
        for x1_id in 0..table.len() as PathId {
            if !table.is_set_record(x1_id) {
                continue;
            }
            for &a in table.children(x1_id) {
                if rel.chain_scratch(&[a], &mut scratch).contains(x1_id) {
                    out.push(RootedPath::new(relation, table.path(x1_id).clone()));
                    break;
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfd::parse_set;

    fn course() -> (Schema, Vec<Nfd>) {
        let schema = Schema::parse(
            "Course : { <cnum: string, time: int,
                         students: {<sid: int, age: int, grade: string>},
                         books: {<isbn: string, title: string>}> };",
        )
        .unwrap();
        let sigma = parse_set(
            &schema,
            "Course:[cnum -> time]; Course:[cnum -> students]; Course:[cnum -> books];
             Course:[books:isbn -> books:title];
             Course:students:[sid -> grade];
             Course:[students:sid -> students:age];
             Course:[time, students:sid -> cnum];",
        )
        .unwrap();
        (schema, sigma)
    }

    #[test]
    fn equivalence_of_presentations() {
        let (schema, sigma) = course();
        // Replacing the local grade constraint by its simple form keeps Σ
        // equivalent.
        let mut alt = sigma.clone();
        alt[4] = crate::simple::to_simple(&alt[4]);
        assert!(equivalent(&schema, &sigma, &alt).unwrap());
        // Dropping the key constraint does not.
        let weaker: Vec<Nfd> = sigma[1..].to_vec();
        assert!(!equivalent(&schema, &sigma, &weaker).unwrap());
    }

    #[test]
    fn minimize_removes_implied_members() {
        let schema = Schema::parse("R : {<A: int, B: int, C: int>};").unwrap();
        let sigma = parse_set(&schema, "R:[A -> B]; R:[B -> C]; R:[A -> C];").unwrap();
        let min = minimize(&schema, &sigma).unwrap();
        assert_eq!(min.len(), 2);
        assert!(equivalent(&schema, &min, &sigma).unwrap());
    }

    #[test]
    fn minimize_trims_extraneous_lhs() {
        let schema = Schema::parse("R : {<A: int, B: int, C: int>};").unwrap();
        // A,B → C with A → B: B is extraneous.
        let sigma = parse_set(&schema, "R:[A, B -> C]; R:[A -> B];").unwrap();
        let min = minimize(&schema, &sigma).unwrap();
        assert!(min.contains(&Nfd::parse(&schema, "R:[A -> C]").unwrap()));
        assert!(equivalent(&schema, &min, &sigma).unwrap());
    }

    #[test]
    fn minimize_is_idempotent_on_course() {
        let (schema, sigma) = course();
        let min = minimize(&schema, &sigma).unwrap();
        assert!(equivalent(&schema, &min, &sigma).unwrap());
        let again = minimize(&schema, &min).unwrap();
        assert_eq!(min, again);
    }

    #[test]
    fn course_candidate_keys() {
        let (schema, sigma) = course();
        let engine = Engine::new(&schema, &sigma).unwrap();
        let keys = candidate_keys(&engine, Label::new("Course"), 3).unwrap();
        // cnum alone is a key (it determines everything at the top level
        // and, because students/books are whole sets, everything below).
        assert!(
            keys.contains(&vec![Path::parse("cnum").unwrap()]),
            "keys: {keys:?}"
        );
        // No key omits cnum-or-equivalent: time alone is not a key.
        assert!(!keys.contains(&vec![Path::parse("time").unwrap()]));
    }

    #[test]
    fn keys_identify_tuples_not_elements() {
        // K → S makes {K} a key: it determines the whole tuple (K itself
        // and the set S). It does NOT determine S:A — different elements
        // of the same set may differ — and indeed S:A stays outside the
        // closure; keys are about tuple identity, not element choice.
        let schema = Schema::parse("R : {<K: int, S: {<A: int>}>};").unwrap();
        let sigma = parse_set(&schema, "R:[K -> S];").unwrap();
        let engine = Engine::new(&schema, &sigma).unwrap();
        let keys = candidate_keys(&engine, Label::new("R"), 2).unwrap();
        assert_eq!(keys, vec![vec![Path::parse("K").unwrap()]]);
        let cl = engine
            .closure(
                &RootedPath::parse("R").unwrap(),
                &[Path::parse("K").unwrap()],
            )
            .unwrap();
        assert!(!cl.contains(&RootedPath::parse("R:S:A").unwrap()));
        // Without any constraints, only the full attribute set is a key.
        let bare = Engine::new(&schema, &[]).unwrap();
        let keys = candidate_keys(&bare, Label::new("R"), 2).unwrap();
        assert_eq!(
            keys,
            vec![vec![Path::parse("K").unwrap(), Path::parse("S").unwrap()]]
        );
    }

    #[test]
    fn forced_singletons_section_2_1() {
        // R:[D → A:B], R:[D → A:C] forces A to be a singleton.
        let schema = Schema::parse("R : {<A: {<B: int, C: int>}, D: int>};").unwrap();
        let sigma = parse_set(&schema, "R:[D -> A:B]; R:[D -> A:C];").unwrap();
        let engine = Engine::new(&schema, &sigma).unwrap();
        let singles = forced_singletons(&engine).unwrap();
        assert_eq!(singles, vec![RootedPath::parse("R:A").unwrap()]);
        // One attribute is not enough.
        let sigma2 = parse_set(&schema, "R:[D -> A:B];").unwrap();
        let engine2 = Engine::new(&schema, &sigma2).unwrap();
        assert!(forced_singletons(&engine2).unwrap().is_empty());
    }

    #[test]
    fn forced_singleton_detection_is_semantic() {
        // The constant form [∅ → A:B] also forces per-set constancy.
        let schema = Schema::parse("R : {<A: {<B: int>}, D: int>};").unwrap();
        let sigma = parse_set(&schema, "R:[ -> A:B];").unwrap();
        let engine = Engine::new(&schema, &sigma).unwrap();
        assert_eq!(
            forced_singletons(&engine).unwrap(),
            vec![RootedPath::parse("R:A").unwrap()]
        );
    }

    #[test]
    fn equal_or_disjoint_detection() {
        let schema = Schema::parse("R : {<A: {<B: int>}, D: int>};").unwrap();
        let sigma = parse_set(&schema, "R:[A:B -> A];").unwrap();
        let engine = Engine::new(&schema, &sigma).unwrap();
        assert_eq!(
            equal_or_disjoint_sets(&engine).unwrap(),
            vec![RootedPath::parse("R:A").unwrap()]
        );
        let none = Engine::new(&schema, &[]).unwrap();
        assert!(equal_or_disjoint_sets(&none).unwrap().is_empty());
    }

    #[test]
    fn key_search_respects_candidate_budget() {
        let (schema, sigma) = course();
        let mut budget = nfd_govern::Budget::standard();
        budget.max_key_candidates = 2;
        let engine = Engine::with_budget(
            &schema,
            &sigma,
            crate::emptyset::EmptySetPolicy::Forbidden,
            budget,
        )
        .unwrap();
        match candidate_keys(&engine, Label::new("Course"), 3) {
            Err(CoreError::Exhausted(r)) => {
                assert_eq!(r.kind, nfd_govern::ResourceKind::KeyCandidates)
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn threaded_key_search_matches_sequential() {
        let (schema, sigma) = course();
        let engine = Engine::new(&schema, &sigma).unwrap();
        let sequential = candidate_keys(&engine, Label::new("Course"), 3).unwrap();
        for threads in [0, 2, 8] {
            let parallel =
                candidate_keys_threaded(&engine, Label::new("Course"), 3, threads).unwrap();
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn threaded_key_search_exhaustion_is_canonical() {
        let (schema, sigma) = course();
        let mut budget = nfd_govern::Budget::standard();
        budget.max_key_candidates = 2;
        let engine = Engine::with_budget(
            &schema,
            &sigma,
            crate::emptyset::EmptySetPolicy::Forbidden,
            budget,
        )
        .unwrap();
        let sequential = match candidate_keys(&engine, Label::new("Course"), 3) {
            Err(CoreError::Exhausted(r)) => r,
            other => panic!("expected exhaustion, got {other:?}"),
        };
        assert_eq!(sequential.used, 3, "first over-limit count");
        for threads in [2, 8] {
            match candidate_keys_threaded(&engine, Label::new("Course"), 3, threads) {
                Err(CoreError::Exhausted(r)) => {
                    assert_eq!(r, sequential, "threads = {threads}")
                }
                other => panic!("expected exhaustion at {threads} threads, got {other:?}"),
            }
        }
    }

    #[test]
    fn redundancy_check() {
        let schema = Schema::parse("R : {<A: int, B: int, C: int>};").unwrap();
        let sigma = parse_set(&schema, "R:[A -> B]; R:[B -> C]; R:[A -> C];").unwrap();
        assert!(is_redundant(&schema, &sigma, 2).unwrap());
        assert!(!is_redundant(&schema, &sigma, 0).unwrap());
    }
}
