//! # nfd-core — nested functional dependencies
//!
//! The primary contribution of *"Reasoning about Nested Functional
//! Dependencies"* (Hara & Davidson, PODS 1999), implemented in full:
//!
//! * [`nfd`] — NFDs `x0:[x1,…,xm-1 → xm]` (Definition 2.3), validation
//!   against a schema, parsing and display;
//! * [`satisfy`] — satisfaction `I ⊨ f` (Definition 2.4, read through the
//!   Section 2.2 logic translation), with violation witnesses;
//! * [`rules`] — the eight NFD-rules of Section 3.1 (reflexivity,
//!   augmentation, transitivity, push-in, pull-out, locality, singleton,
//!   prefix) as syntactic transformers, plus *full-locality* from the
//!   simple-form system of Section 3.2;
//! * [`simple`] — the simple form of NFDs (base path = relation name) and
//!   the push-in/pull-out normalization between the two forms;
//! * [`engine`] — a saturation-based implication engine (the decision
//!   procedure behind Theorem 3.1's completeness argument), with recorded
//!   provenance;
//! * [`proof`] — derivation trees replayable as numbered proofs in the
//!   paper's style;
//! * [`closure`] — the path closure `(x0, X, Σ)*` of Appendix A;
//! * [`construct`] — the Appendix A counterexample-instance construction
//!   (`newValue` / `assignX0` / `assignVal` / `assignNew` / `newRow`);
//! * [`emptyset`] — the Section 3.2 empty-set-aware variants: the *follows*
//!   relation gates transitivity, and prefix/locality require non-emptiness
//!   annotations.
//!
//! ## Quick example
//!
//! ```
//! use nfd_model::Schema;
//! use nfd_core::{Nfd, engine::Engine};
//!
//! let schema = Schema::parse(
//!     "R : { <A: {<B: {<C: int>}, E: {<F: int, G: int>}>}, D: int> };",
//! ).unwrap();
//! let sigma = vec![
//!     Nfd::parse(&schema, "R:[A:B:C, D -> A:E:F]").unwrap(),
//!     Nfd::parse(&schema, "R:A:[B -> E:G]").unwrap(),
//! ];
//! let goal = Nfd::parse(&schema, "R:A:[B -> E]").unwrap();
//! let engine = Engine::new(&schema, &sigma).unwrap();
//! assert!(engine.implies(&goal).unwrap()); // the worked proof of §3.1
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod closure;
pub mod construct;
pub mod delta;
pub mod dense;
pub mod emptyset;
pub mod engine;
pub mod error;
pub mod incremental;
mod kernel;
pub mod naive;
pub mod nfd;
pub mod proof;
pub mod rules;
pub mod satisfy;
pub mod select;
pub mod simple;
pub mod view;

pub use delta::DeltaReport;
pub use dense::DenseClosure;
pub use emptyset::EmptySetPolicy;
pub use error::CoreError;
pub use kernel::{CacheStats, ClosureCache, DEFAULT_CLOSURE_CACHE_CAPACITY};
pub use nfd::Nfd;
pub use satisfy::{check, SatisfyReport, Violation};
pub use select::{CostFeatures, CostModel, QueryTrace, SelectState, Tier, TierPreference};
