//! Restructuring views and dependency propagation.
//!
//! The paper's opening motivation: *"if a new database is created as a
//! materialized view over multiple complex databases, knowing how
//! dependencies are carried into this complex view could eliminate
//! expensive checking"*. This module provides the machinery to study the
//! question concretely:
//!
//! * a [`View`] is a named pipeline of nest/unnest operations
//!   ([`nfd_model::algebra`]) over a source relation;
//! * [`View::extend_schema`] / [`View::materialize`] compute the view's
//!   schema and contents;
//! * [`refute_view_dependency`] searches for a source instance that
//!   satisfies Σ while its view violates a candidate view dependency — a
//!   randomized refutation procedure. (Sound inference of view
//!   dependencies is the paper's stated future work via the nested
//!   chase; refutation is the half that needs no new theory.)
//!
//! The accompanying tests reproduce the Fischer–Saxton–Thomas–Van Gucht
//! facts the paper cites: which FDs survive nesting and unnesting, and
//! the role singleton sets play.

use crate::error::CoreError;
use crate::nfd::Nfd;
use crate::satisfy;
use nfd_model::algebra::{nest, nest_type, unnest, unnest_type};
use nfd_model::gen::{GenConfig, Generator};
use nfd_model::types::Strictness;
use nfd_model::{Instance, Label, ModelError, Schema, Type};

/// One restructuring step of a view pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViewOp {
    /// `μ_attr`: flatten the set-valued attribute into its parent.
    Unnest {
        /// The attribute to flatten.
        attr: Label,
    },
    /// `ν_{attr=(grouped)}`: group the listed attributes into a new
    /// set-valued attribute.
    Nest {
        /// Name for the new set-valued attribute.
        attr: Label,
        /// The attributes to group.
        grouped: Vec<Label>,
    },
}

/// A named restructuring view over one source relation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct View {
    /// The view's relation name.
    pub name: Label,
    /// The source relation.
    pub source: Label,
    /// The pipeline, applied left to right.
    pub ops: Vec<ViewOp>,
}

impl View {
    /// Builds a view.
    pub fn new(name: impl Into<Label>, source: impl Into<Label>, ops: Vec<ViewOp>) -> View {
        View {
            name: name.into(),
            source: source.into(),
            ops,
        }
    }

    /// The view's output type under `schema`.
    pub fn output_type(&self, schema: &Schema) -> Result<Type, CoreError> {
        let mut ty = schema
            .relation_type(self.source)
            .map_err(model_err)?
            .clone();
        for op in &self.ops {
            ty = match op {
                ViewOp::Unnest { attr } => unnest_type(&ty, *attr).map_err(model_err)?,
                ViewOp::Nest { attr, grouped } => {
                    nest_type(&ty, *attr, grouped).map_err(model_err)?
                }
            };
        }
        Ok(ty)
    }

    /// A schema containing the source relations plus the view.
    pub fn extend_schema(&self, schema: &Schema) -> Result<Schema, CoreError> {
        let out_ty = self.output_type(schema)?;
        let mut rels: Vec<(Label, Type)> = schema.relations().to_vec();
        rels.push((self.name, out_ty));
        Schema::new(rels, Strictness::AllowBaseSets).map_err(model_err)
    }

    /// The view's contents for a source instance.
    pub fn compute(&self, instance: &Instance) -> Result<nfd_model::Value, CoreError> {
        let mut v = instance
            .relation_value(self.source)
            .map_err(model_err)?
            .clone();
        for op in &self.ops {
            v = match op {
                ViewOp::Unnest { attr } => unnest(&v, *attr).map_err(model_err)?,
                ViewOp::Nest { attr, grouped } => nest(&v, *attr, grouped).map_err(model_err)?,
            };
        }
        Ok(v)
    }

    /// Materializes the view: an instance of [`View::extend_schema`]
    /// holding the source relations plus the computed view.
    pub fn materialize(
        &self,
        schema: &Schema,
        instance: &Instance,
    ) -> Result<(Schema, Instance), CoreError> {
        let extended = self.extend_schema(schema)?;
        let mut rels: Vec<(Label, nfd_model::Value)> = instance.relations().to_vec();
        rels.push((self.name, self.compute(instance)?));
        let inst = Instance::new(&extended, rels).map_err(model_err)?;
        Ok((extended, inst))
    }
}

fn model_err(e: ModelError) -> CoreError {
    CoreError::Nav(e.to_string())
}

/// Outcome of a randomized view-dependency refutation.
#[derive(Debug)]
pub enum Refutation {
    /// A source instance satisfying Σ whose view violates the candidate:
    /// the dependency is **not** carried into the view.
    Refuted(Instance),
    /// No counterexample among the sampled Σ-satisfying instances. (Not a
    /// proof — carrying view dependencies soundly is the paper's future
    /// work — but `tried` successful samples of evidence.)
    Unrefuted {
        /// Number of Σ-satisfying instances examined.
        tried: usize,
    },
}

/// Randomized refutation: does some source instance satisfying `sigma`
/// yield a view violating `view_nfd`? Samples `trials` random instances
/// (deterministic in `seed`), keeping those that satisfy Σ.
///
/// `view_nfd` must be over the view's relation name in the extended
/// schema.
pub fn refute_view_dependency(
    schema: &Schema,
    sigma: &[Nfd],
    view: &View,
    view_nfd: &Nfd,
    trials: usize,
    seed: u64,
) -> Result<Refutation, CoreError> {
    let extended = view.extend_schema(schema)?;
    view_nfd.validate(&extended)?;
    let mut tried = 0usize;
    for k in 0..trials {
        let mut g = Generator::new(
            seed.wrapping_add(k as u64),
            GenConfig {
                min_set: 0,
                max_set: 3,
                empty_prob: 0.15,
                domain: 3,
            },
        );
        let source = g.instance(schema);
        if !satisfy::satisfies_all(schema, &source, sigma)? {
            continue;
        }
        tried += 1;
        let (ext_schema, materialized) = view.materialize(schema, &source)?;
        if !satisfy::check(&ext_schema, &materialized, view_nfd)?.holds {
            return Ok(Refutation::Refuted(source));
        }
    }
    Ok(Refutation::Unrefuted { tried })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfd::parse_set;

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    fn flat_schema() -> Schema {
        Schema::parse("Enroll : {<sid: int, cnum: int, grade: int>};").unwrap()
    }

    #[test]
    fn view_schema_and_contents() {
        let schema = flat_schema();
        // Group each student's courses: ν_{courses=(cnum, grade)}.
        let view = View::new(
            l("ByStudent"),
            l("Enroll"),
            vec![ViewOp::Nest {
                attr: l("courses"),
                grouped: vec![l("cnum"), l("grade")],
            }],
        );
        let ty = view.output_type(&schema).unwrap();
        assert_eq!(
            ty.to_string(),
            "{<sid: int, courses: {<cnum: int, grade: int>}>}"
        );

        let inst = Instance::parse(
            &schema,
            "Enroll = {<sid: 1, cnum: 10, grade: 3>,
                       <sid: 1, cnum: 11, grade: 4>,
                       <sid: 2, cnum: 10, grade: 5>};",
        )
        .unwrap();
        let (ext, mat) = view.materialize(&schema, &inst).unwrap();
        assert!(ext.has_relation(l("ByStudent")));
        let by_student = mat.relation(l("ByStudent")).unwrap();
        assert_eq!(by_student.len(), 2);
    }

    /// Fischer et al.: an FD among the ungrouped attributes survives
    /// nesting; an FD whose RHS is grouped turns into a *local* NFD on
    /// the view.
    #[test]
    fn fd_preservation_under_nest() {
        let schema =
            Schema::parse("Enroll : {<sid: int, dept: int, cnum: int, grade: int>};").unwrap();
        // Source constraints: sid → dept, and (sid, cnum) → grade.
        let sigma = parse_set(
            &schema,
            "Enroll:[sid -> dept]; Enroll:[sid, cnum -> grade];",
        )
        .unwrap();
        let view = View::new(
            l("ByStudent"),
            l("Enroll"),
            vec![ViewOp::Nest {
                attr: l("courses"),
                grouped: vec![l("cnum"), l("grade")],
            }],
        );
        // Carried: sid → dept among ungrouped attributes.
        let ext = view.extend_schema(&schema).unwrap();
        let carried = Nfd::parse(&ext, "ByStudent:[sid -> dept]").unwrap();
        match refute_view_dependency(&schema, &sigma, &view, &carried, 400, 1).unwrap() {
            Refutation::Unrefuted { tried } => assert!(tried > 30, "only {tried} samples"),
            Refutation::Refuted(w) => panic!("sid → dept must be carried; witness {w}"),
        }
        // Carried as a LOCAL dependency: within one student's course set,
        // cnum determines grade.
        let local = Nfd::parse(&ext, "ByStudent:courses:[cnum -> grade]").unwrap();
        match refute_view_dependency(&schema, &sigma, &view, &local, 400, 2).unwrap() {
            Refutation::Unrefuted { tried } => assert!(tried > 30, "only {tried} samples"),
            Refutation::Refuted(w) => panic!("(sid,cnum) → grade must carry locally; {w}"),
        }
        // NOT carried globally: cnum does not determine grade across
        // students.
        let global = Nfd::parse(&ext, "ByStudent:[courses:cnum -> courses:grade]").unwrap();
        match refute_view_dependency(&schema, &sigma, &view, &global, 400, 3).unwrap() {
            Refutation::Refuted(_) => {}
            Refutation::Unrefuted { tried } => {
                panic!("expected a refutation of the global form after {tried} samples")
            }
        }
    }

    /// Unnest destroys key constraints in the classical way: cnum is a
    /// key of Course, but after unnesting students it repeats per
    /// student; the *other* FDs survive.
    #[test]
    fn fd_preservation_under_unnest() {
        let schema =
            Schema::parse("Course : {<cnum: int, time: int, students: {<sid: int, grade: int>}>};")
                .unwrap();
        let sigma = parse_set(
            &schema,
            "Course:[cnum -> time]; Course:[cnum -> students];
             Course:students:[sid -> grade];",
        )
        .unwrap();
        let view = View::new(
            l("Flat"),
            l("Course"),
            vec![ViewOp::Unnest {
                attr: l("students"),
            }],
        );
        let ext = view.extend_schema(&schema).unwrap();
        assert_eq!(
            view.output_type(&schema).unwrap().to_string(),
            "{<cnum: int, time: int, sid: int, grade: int>}"
        );
        // Carried: cnum → time (ungrouped attributes).
        let carried = Nfd::parse(&ext, "Flat:[cnum -> time]").unwrap();
        match refute_view_dependency(&schema, &sigma, &view, &carried, 400, 4).unwrap() {
            Refutation::Unrefuted { tried } => assert!(tried > 30),
            Refutation::Refuted(w) => panic!("cnum → time must be carried; witness {w}"),
        }
        // Carried: the local sid → grade becomes (cnum, sid) → grade.
        let pair_key = Nfd::parse(&ext, "Flat:[cnum, sid -> grade]").unwrap();
        match refute_view_dependency(&schema, &sigma, &view, &pair_key, 400, 5).unwrap() {
            Refutation::Unrefuted { tried } => assert!(tried > 30),
            Refutation::Refuted(w) => panic!("(cnum,sid) → grade must be carried; witness {w}"),
        }
        // NOT carried: sid alone does not determine grade on the view.
        let alone = Nfd::parse(&ext, "Flat:[sid -> grade]").unwrap();
        assert!(matches!(
            refute_view_dependency(&schema, &sigma, &view, &alone, 400, 6).unwrap(),
            Refutation::Refuted(_)
        ));
    }

    /// Round-trip pipeline: unnest then re-nest; with empty sets allowed
    /// the view can differ from the source (tuples with empty sets are
    /// dropped), mirroring the Section 3.2 phenomena.
    #[test]
    fn unnest_nest_pipeline_loses_empty_sets() {
        let schema = Schema::parse("Course : {<cnum: int, students: {<sid: int>}>};").unwrap();
        let view = View::new(
            l("RoundTrip"),
            l("Course"),
            vec![
                ViewOp::Unnest {
                    attr: l("students"),
                },
                ViewOp::Nest {
                    attr: l("students"),
                    grouped: vec![l("sid")],
                },
            ],
        );
        let with_empty = Instance::parse(
            &schema,
            "Course = {<cnum: 1, students: {<sid: 7>}>, <cnum: 2, students: {}>};",
        )
        .unwrap();
        let v = view.compute(&with_empty).unwrap();
        // cnum 2 vanished.
        assert_eq!(v.as_set().unwrap().len(), 1);
        let without_empty = Instance::parse(
            &schema,
            "Course = {<cnum: 1, students: {<sid: 7>}>, <cnum: 2, students: {<sid: 8>}>};",
        )
        .unwrap();
        let v = view.compute(&without_empty).unwrap();
        assert_eq!(
            v,
            *without_empty.relation_value(l("Course")).unwrap(),
            "round trip is the identity without empty sets"
        );
    }

    #[test]
    fn view_errors_propagate() {
        let schema = flat_schema();
        let bad = View::new(l("V"), l("Enroll"), vec![ViewOp::Unnest { attr: l("sid") }]);
        assert!(bad.output_type(&schema).is_err());
        let unknown_source = View::new(l("V"), l("Nope"), vec![]);
        assert!(unknown_source.output_type(&schema).is_err());
        // View name colliding with an attribute label is rejected by the
        // extended schema's validation.
        let collide = View::new(l("sid"), l("Enroll"), vec![]);
        assert!(collide.extend_schema(&schema).is_err());
    }
}
