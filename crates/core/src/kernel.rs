//! Occurrence indices and the counting-based closure kernel.
//!
//! The saturation engine of [`crate::engine`] is specified as two nested
//! scans: `add` walks the whole pool to check subsumption, and
//! `chain`/`chain_bounded` rescans every pool entry per fixed-point round.
//! This module supplies the index structures that replace those scans
//! while reproducing the naive implementation's behaviour *exactly* —
//! same pool, same subsumption flags, same `fired` provenance maps — so
//! proof reconstruction and the differential oracle stay bit-identical
//! (see DESIGN.md §9 and `crates/core/src/naive.rs`).
//!
//! Three pieces live here:
//!
//! * [`DepIndex`] — per-relation occurrence indices over the pool:
//!   entries bucketed by RHS (for subsumption), and a `path → deps whose
//!   LHS contains it` index (for resolution candidates and for the
//!   counting kernel's decrements).
//! * [`ChainScratch`] + [`chain_counting`] — counting-based forward
//!   chaining (unit propagation): per-dep unsatisfied-LHS counters seeded
//!   from the query set, decremented as paths join the closure. The
//!   firing *order* replays the naive pass scan exactly — see the
//!   function docs for the scan-position discipline that makes the
//!   `fired` maps identical.
//! * [`ClosureCache`] — a bounded LRU cache over chain results, attached
//!   to a session so repeated implication queries and candidate-key
//!   sweeps stop recomputing identical closures.

use nfd_model::Label;
use nfd_path::table::{PathId, PathSet};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Occurrence indices over a relation's dependency pool.
///
/// Maintained incrementally by `RelEngine::add`: entry `i`'s LHS and RHS
/// are immutable once pushed (only the `subsumed` flag changes), so the
/// index never needs invalidation. Subsumed entries stay indexed — they
/// must remain visible to bounded chaining (proof reconstruction bounds
/// `max` below the index of the entry that subsumed them) and their
/// subsumption flags are re-checked at use time by the saturation loop.
#[derive(Debug, Default)]
pub(crate) struct DepIndex {
    /// Pool indices bucketed by RHS id, in insertion (= pool) order.
    by_rhs: HashMap<PathId, Vec<usize>>,
    /// `lhs_occ[p]` = pool indices of deps whose LHS contains path `p`,
    /// in insertion order. Dense over the relation's path-id space.
    lhs_occ: Vec<Vec<usize>>,
    /// `lhs_len[i]` = |LHS| of pool entry `i` — the counting kernel's
    /// initial unsatisfied counter.
    lhs_len: Vec<u32>,
    /// Pool indices of entries with an empty LHS (always-ready deps; the
    /// seeding loops never touch them because no path occurrence exists).
    empty_lhs: Vec<usize>,
}

impl DepIndex {
    /// An empty index over a table of `paths` interned paths.
    pub(crate) fn new(paths: usize) -> DepIndex {
        DepIndex {
            by_rhs: HashMap::new(),
            lhs_occ: vec![Vec::new(); paths],
            lhs_len: Vec::new(),
            empty_lhs: Vec::new(),
        }
    }

    /// Registers pool entry `lhs_len.len()` (callers push to the pool and
    /// the index in lock-step).
    pub(crate) fn push(&mut self, lhs: &PathSet, rhs: PathId) {
        let di = self.lhs_len.len();
        self.by_rhs.entry(rhs).or_default().push(di);
        let mut n: u32 = 0;
        for p in lhs.iter() {
            self.lhs_occ[p as usize].push(di);
            n += 1;
        }
        self.lhs_len.push(n);
        if n == 0 {
            self.empty_lhs.push(di);
        }
    }

    /// Pool indices of entries whose RHS is `rhs`, in pool order.
    pub(crate) fn same_rhs(&self, rhs: PathId) -> &[usize] {
        self.by_rhs.get(&rhs).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Pool indices of entries whose LHS contains `p`, in pool order.
    pub(crate) fn with_lhs_containing(&self, p: PathId) -> &[usize] {
        self.lhs_occ
            .get(p as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of registered entries.
    pub(crate) fn len(&self) -> usize {
        self.lhs_len.len()
    }
}

/// A dense bitset of ready pool indices, supporting the two queries the
/// scan-position discipline needs: "smallest set bit ≥ pos" and
/// "smallest set bit overall". Inserts and clears are O(1); the scans
/// walk 64 indices per word, which beats an ordered tree by a wide
/// constant on realistic pool sizes (a few hundred to a few thousand
/// entries).
#[derive(Debug, Default)]
struct ReadyBits {
    words: Vec<u64>,
}

impl ReadyBits {
    /// Clears and resizes for indices `0..max`.
    fn reset(&mut self, max: usize) {
        self.words.clear();
        self.words.resize(max.div_ceil(64), 0);
    }

    fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    fn clear(&mut self, i: usize) {
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Smallest set index `≥ pos`, if any.
    fn next_at_or_after(&self, pos: usize) -> Option<usize> {
        let mut w = pos / 64;
        if w >= self.words.len() {
            return None;
        }
        // Mask off bits below `pos` in its word, then scan forward.
        let mut word = self.words[w] & (u64::MAX << (pos % 64));
        loop {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w += 1;
            if w >= self.words.len() {
                return None;
            }
            word = self.words[w];
        }
    }
}

/// Reusable buffers for [`chain_counting`] — allocate once, chain many
/// times (`singleton_round` candidates, candidate-key sweeps).
#[derive(Debug, Default)]
pub(crate) struct ChainScratch {
    /// Unsatisfied-LHS counter per pool entry (`< max` slice active).
    counts: Vec<u32>,
    /// Entries whose counter reached zero and whose `need_x` gate passed,
    /// not yet fired. A bitset over pool indices, so the scan-position
    /// discipline can find "smallest ready index ≥ pos" by word scan.
    ready: ReadyBits,
}

/// Counting-based forward chaining over a dependency pool, replaying the
/// naive pass scan's firing order exactly.
///
/// The naive `chain_bounded` repeats index-order passes over
/// `deps[..max]`, firing every applicable entry in place (Gauss–Seidel:
/// later entries in the same pass see earlier firings), until a pass
/// changes nothing. Its `fired` map records, per derived path, the
/// *first* entry that produced it under that order. To reproduce those
/// maps without rescanning, this kernel tracks a virtual scan position:
///
/// * an entry becomes *ready* when its unsatisfied-LHS counter reaches
///   zero and its compiled `need_x` gate passes for this query's `X`;
/// * each step fires the smallest ready index `≥ pos` (the entry the
///   naive scan would reach next in the current pass), else wraps to the
///   smallest ready index overall (the naive scan's next pass);
/// * after considering index `di`, `pos = di + 1`;
/// * a ready entry whose RHS is already in the closure at pop time is
///   discarded, exactly as the naive scan skips it.
///
/// Counters are seeded from [`DepIndex::push`]'s `lhs_len` and
/// decremented through the LHS-occurrence index, so each entry is touched
/// O(|LHS|) times instead of once per pass. Subsumed entries participate
/// (bounded proof reconstruction relies on them); `max` bounds which
/// entries exist at all. The gate is evaluated lazily — only when a
/// counter reaches zero — because under `EmptySetPolicy::Forbidden` it
/// always passes and per-entry-per-pass gate checks were pure waste.
pub(crate) fn chain_counting(
    deps: &[crate::engine::CDep],
    index: &DepIndex,
    words: usize,
    x: &[PathId],
    mut fired: Option<&mut HashMap<PathId, usize>>,
    max: usize,
    scratch: &mut ChainScratch,
) -> PathSet {
    let x_set = PathSet::from_ids(words, x.iter().copied());
    let mut c = x_set.clone();
    let max = max.min(deps.len());

    scratch.counts.clear();
    scratch.counts.extend_from_slice(&index.lhs_len[..max]);
    scratch.ready.reset(max);

    // A ready entry whose RHS is already in the closure would be popped
    // and discarded without firing; since `c` only grows, that discard is
    // predictable at readiness time, and skipping the insertion entirely
    // leaves the fired sequence unchanged (a discarded pop only advances
    // `pos` past an index no other ready entry occupies). Saturated pools
    // are full of such entries — e.g. every derived transitive edge whose
    // RHS an earlier pool entry already produced — so this check is what
    // keeps the ready set proportional to the *productive* firings.

    // Constant-form entries (empty LHS) are ready from the start; no path
    // occurrence exists to count them down.
    for &di in &index.empty_lhs {
        if di < max && !c.contains(deps[di].rhs) && deps[di].need_x.is_subset(&x_set) {
            scratch.ready.insert(di);
        }
    }
    // Seed the counters from the query set. `x_set.iter()` deduplicates,
    // so a path repeated in `x` decrements each occurrence exactly once.
    for p in x_set.iter() {
        for &di in index.with_lhs_containing(p) {
            if di >= max {
                continue;
            }
            scratch.counts[di] -= 1;
            if scratch.counts[di] == 0
                && !c.contains(deps[di].rhs)
                && deps[di].need_x.is_subset(&x_set)
            {
                scratch.ready.insert(di);
            }
        }
    }

    let mut pos: usize = 0;
    loop {
        let di = match scratch.ready.next_at_or_after(pos) {
            Some(d) => d,
            None => match scratch.ready.next_at_or_after(0) {
                Some(d) => d, // wrap: the naive scan's next pass
                None => break,
            },
        };
        scratch.ready.clear(di);
        pos = di + 1;
        let rhs = deps[di].rhs;
        if c.contains(rhs) {
            continue; // another entry beat it to this RHS: naive skip
        }
        c.insert(rhs);
        if let Some(f) = fired.as_deref_mut() {
            f.entry(rhs).or_insert(di);
        }
        for &dj in index.with_lhs_containing(rhs) {
            if dj >= max {
                continue;
            }
            // `rhs` newly joined `c`, so every entry counting it still
            // has a positive counter: the decrement cannot underflow.
            scratch.counts[dj] -= 1;
            if scratch.counts[dj] == 0
                && !c.contains(deps[dj].rhs)
                && deps[dj].need_x.is_subset(&x_set)
            {
                scratch.ready.insert(dj);
            }
        }
    }
    c
}

/// Tier-0 forward chaining: the retained naive pass scan, run directly
/// over the indexed engine's (bit-identical) saturated pool.
///
/// Unlike [`chain_counting`] this pays zero per-query setup — no counter
/// seeding through the occurrence index — which makes it the fastest
/// option for one-shot queries over small flat pools (the 0.6× case of
/// BENCH_B14). Two deviations from the naive template, both
/// fixpoint-preserving:
///
/// * **Subsumed entries are skipped.** Every subsumed entry `e'` has an
///   active same-RHS entry `e` with `lhs(e) ⊆ lhs(e')` (subsumption is
///   transitive along the replacement chain), and `need_x = lhs \
///   followers(rhs) \ defined` is monotone in the LHS, so `need_x(e) ⊆
///   need_x(e')`: whenever `e'` could fire, `e` already can. The least
///   fixpoint is unchanged; only `fired` maps would differ, and this
///   scan never produces them (provenance always runs the counting
///   kernel).
/// * **Optional early exit.** With `stop_at = Some(goal)`, the scan
///   returns as soon as `goal` joins the closure — sound for implication
///   queries (`goal ∈ C(X)` is monotone under continued chaining) but
///   the returned set is *partial*, so callers must never cache it.
pub(crate) fn chain_scan(
    deps: &[crate::engine::CDep],
    words: usize,
    x: &[PathId],
    stop_at: Option<PathId>,
) -> PathSet {
    let x_set = PathSet::from_ids(words, x.iter().copied());
    let mut c = x_set.clone();
    if let Some(goal) = stop_at {
        if c.contains(goal) {
            return c;
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for d in deps {
            if d.subsumed {
                continue;
            }
            if c.contains(d.rhs) {
                continue;
            }
            if !d.lhs.is_subset(&c) {
                continue;
            }
            if !d.need_x.is_subset(&x_set) {
                continue;
            }
            c.insert(d.rhs);
            if stop_at == Some(d.rhs) {
                return c;
            }
            changed = true;
        }
    }
    c
}

/// Statistics of a [`ClosureCache`] — monotone hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a chain computation.
    pub misses: u64,
}

/// A bounded LRU cache over closure (chain) results.
///
/// Keyed by `(relation, normalized LHS PathSet)`. The third component of
/// the conceptual key — the empty-set policy — is fixed at construction
/// time: a cache is scoped to one `(Σ, policy)` compilation, and
/// `Session::reconfigure` creates a fresh one, so entries can never leak
/// across policies. Caching is sound because the closure `C(X)` is a
/// pure function of the saturated pool and `X` (the `need_x` gate
/// depends only on `X`), and chaining consumes no budget counters — so a
/// cache hit can never flip a counter-limited verdict, only skip work.
///
/// Eviction is approximate-LRU: each entry carries a last-use stamp from
/// a monotone clock; when the map exceeds capacity, the older half (by
/// stamp) is dropped in one O(n) sweep, amortizing eviction to O(1) per
/// insert without a linked-list LRU.
///
/// Caches at or above [`CACHE_SHARD_THRESHOLD`] capacity are split into
/// [`CACHE_SHARDS`] independently locked shards (selected by key hash),
/// so a read-parallel pool sharing one cache does not serialize on a
/// single mutex. Capacity, clocks and halving eviction are per shard;
/// keys hash uniformly, so the bound still holds globally. Tiny caches
/// stay single-sharded — splitting a handful of entries would make the
/// per-shard LRU meaningless.
#[derive(Debug)]
pub struct ClosureCache {
    shards: Box<[Mutex<CacheInner>]>,
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<(Label, PathSet), (PathSet, u64)>,
    clock: u64,
}

/// Default capacity used by sessions (entries, not bytes).
pub const DEFAULT_CLOSURE_CACHE_CAPACITY: usize = 4096;

/// Caches with at least this capacity are lock-sharded.
pub const CACHE_SHARD_THRESHOLD: usize = 256;

/// Shard count for lock-sharded caches.
pub const CACHE_SHARDS: usize = 8;

fn lock_shard(shard: &Mutex<CacheInner>) -> std::sync::MutexGuard<'_, CacheInner> {
    match shard.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl ClosureCache {
    /// An empty cache holding at most `capacity` entries (minimum 2, so
    /// the halving eviction always makes progress).
    pub fn with_capacity(capacity: usize) -> ClosureCache {
        let capacity = capacity.max(2);
        let n = if capacity >= CACHE_SHARD_THRESHOLD {
            CACHE_SHARDS
        } else {
            1
        };
        ClosureCache {
            shards: (0..n).map(|_| Mutex::new(CacheInner::default())).collect(),
            shard_capacity: (capacity / n).max(2),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, relation: &Label, x: &PathSet) -> &Mutex<CacheInner> {
        if self.shards.len() == 1 {
            return &self.shards[0];
        }
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        relation.hash(&mut h);
        x.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Looks up the closure of `x` in `relation`, refreshing its LRU
    /// stamp on a hit.
    pub fn get(&self, relation: Label, x: &PathSet) -> Option<PathSet> {
        let mut inner = lock_shard(self.shard_of(&relation, x));
        inner.clock += 1;
        let now = inner.clock;
        // Key by reference would need a borrowed key type; the clone is a
        // couple of words for realistic schemas.
        match inner.map.get_mut(&(relation, x.clone())) {
            Some((c, stamp)) => {
                *stamp = now;
                let c = c.clone();
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(c)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a computed closure, evicting the older half of its shard
    /// if the shard is full.
    pub fn insert(&self, relation: Label, x: PathSet, closure: PathSet) {
        let mut inner = lock_shard(self.shard_of(&relation, &x));
        inner.clock += 1;
        let now = inner.clock;
        if inner.map.len() >= self.shard_capacity && !inner.map.contains_key(&(relation, x.clone()))
        {
            let mut stamps: Vec<u64> = inner.map.values().map(|&(_, s)| s).collect();
            let mid = stamps.len() / 2;
            let (_, &mut cutoff, _) = stamps.select_nth_unstable(mid);
            inner.map.retain(|_, &mut (_, s)| s > cutoff);
        }
        inner.map.insert((relation, x), (closure, now));
    }

    /// Drops every cached closure for `relation`, returning how many
    /// entries were evicted. Scoped invalidation for live Σ mutation:
    /// closures are pure functions of a *relation's* saturated pool, so
    /// when `Engine::add_dep`/`remove_dep` rebuild one relation the other
    /// relations' entries stay warm (see DESIGN.md §12).
    pub fn invalidate_relation(&self, relation: Label) -> usize {
        let mut evicted = 0;
        for shard in self.shards.iter() {
            let mut inner = lock_shard(shard);
            let before = inner.map.len();
            inner.map.retain(|&(r, _), _| r != relation);
            evicted += before - inner.map.len();
        }
        evicted
    }

    /// Dumps every cached closure as `(relation, key, closure)` triples,
    /// sorted by `(relation text, key words)` so the dump — and therefore
    /// a snapshot embedding it — is deterministic regardless of hash
    /// order (and of shard layout). LRU stamps are not exported: recency
    /// is an ephemeral property of the serving process, not of the
    /// closures.
    pub fn export(&self) -> Vec<(Label, PathSet, PathSet)> {
        let mut out: Vec<(Label, PathSet, PathSet)> = Vec::new();
        for shard in self.shards.iter() {
            let inner = lock_shard(shard);
            out.extend(
                inner
                    .map
                    .iter()
                    .map(|((r, k), (c, _))| (*r, k.clone(), c.clone())),
            );
        }
        out.sort_by(|a, b| {
            (a.0.to_string(), a.1.as_words()).cmp(&(b.0.to_string(), b.1.as_words()))
        });
        out
    }

    /// Bulk-inserts entries (from [`ClosureCache::export`] of a prior
    /// process), assigning fresh monotone LRU stamps in iteration order.
    /// Entries beyond capacity are subject to the usual halving eviction.
    /// Soundness is the caller's obligation: the entries must come from
    /// the same `(Σ, policy)` compilation this cache is scoped to —
    /// snapshot thaw only imports after the full differential validation
    /// of the compiled sections.
    pub fn import(&self, entries: impl IntoIterator<Item = (Label, PathSet, PathSet)>) {
        for (relation, key, closure) in entries {
            self.insert(relation, key, closure);
        }
    }

    /// Hit/miss counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Current number of cached closures.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| lock_shard(shard).map.len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn label(s: &str) -> Label {
        Label::new(s)
    }

    fn set(words: usize, ids: &[PathId]) -> PathSet {
        PathSet::from_ids(words, ids.iter().copied())
    }

    #[test]
    fn cache_round_trip_and_stats() {
        let cache = ClosureCache::with_capacity(8);
        let r = label("R");
        let key = set(1, &[0, 2]);
        assert_eq!(cache.get(r, &key), None);
        cache.insert(r, key.clone(), set(1, &[0, 2, 5]));
        assert_eq!(cache.get(r, &key), Some(set(1, &[0, 2, 5])));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn cache_evicts_older_half_when_full() {
        let cache = ClosureCache::with_capacity(4);
        let r = label("R");
        for i in 0..4u32 {
            cache.insert(r, set(1, &[i]), set(1, &[i]));
        }
        // Refresh entry 0 so it is the most recently used.
        assert!(cache.get(r, &set(1, &[0])).is_some());
        cache.insert(r, set(1, &[10]), set(1, &[10]));
        assert!(cache.len() <= 4, "eviction must keep the cache bounded");
        assert!(
            cache.get(r, &set(1, &[0])).is_some(),
            "most recently used entry must survive the eviction sweep"
        );
    }

    #[test]
    fn sharded_cache_bound_export_and_invalidate() {
        let cache = ClosureCache::with_capacity(CACHE_SHARD_THRESHOLD);
        let r = label("R");
        let s = label("S");
        for i in 0..200u32 {
            cache.insert(r, set(4, &[i]), set(4, &[i]));
            cache.insert(s, set(4, &[i]), set(4, &[i]));
        }
        // 400 distinct keys against a 256-entry bound: per-shard halving
        // keeps the global bound.
        assert!(cache.len() <= CACHE_SHARD_THRESHOLD);
        // Round trip through the sharded lookup path.
        cache.insert(r, set(4, &[7, 9]), set(4, &[7, 9, 11]));
        assert_eq!(cache.get(r, &set(4, &[7, 9])), Some(set(4, &[7, 9, 11])));
        // Export is sorted regardless of shard layout.
        let dump = cache.export();
        let keys: Vec<_> = dump
            .iter()
            .map(|(rel, k, _)| (rel.to_string(), k.as_words()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        // Relation invalidation sweeps every shard.
        assert!(cache.invalidate_relation(r) > 0);
        assert!(cache.export().iter().all(|(rel, _, _)| *rel != r));
    }

    #[test]
    fn keys_distinguish_relations() {
        let cache = ClosureCache::with_capacity(8);
        let key = set(1, &[1]);
        cache.insert(label("R"), key.clone(), set(1, &[1, 2]));
        assert_eq!(cache.get(label("S"), &key), None);
    }
}
