//! The *simple form* of NFDs (Section 3.2).
//!
//! Push-in and pull-out only move between equivalent presentations of the
//! same dependency: `R:y:[x1,…,xk → z]` is equivalent to
//! `R:[y, y:x1,…,y:xk → y:z]`. Restricting base paths to bare relation
//! names therefore loses no expressive power, and in that *simple form* six
//! rules suffice (push-in and pull-out disappear; locality is strengthened
//! to full-locality).
//!
//! The implication engine works internally in simple form; this module
//! provides the conversions, including the maximal re-localization used for
//! readable output (the paper argues the local form is "more intuitive").

use crate::nfd::Nfd;
use crate::rules;
use nfd_path::Path;

/// Is the NFD in simple form (base path a bare relation name)?
pub fn is_simple(nfd: &Nfd) -> bool {
    nfd.base.path.is_empty()
}

/// Converts to simple form by pushing the base path in one label at a
/// time: `R:y1:…:yk:[X → z] ↦ R:[y1, y1:y2, …, y1:…:yk:X → y1:…:yk:z]`.
/// Simple-form NFDs are returned unchanged.
///
/// One-label steps make [`localize`] an exact inverse (each pull-out
/// removes the shortest prefix again), so `canonical_local` round-trips.
/// The single-shot form `R:[y, y:X → y:z]` with a multi-label `y` is
/// equivalent under the full rule set (full-locality at `y` recovers it)
/// and the engine derives it during saturation.
pub fn to_simple(nfd: &Nfd) -> Nfd {
    let mut cur = nfd.clone();
    while !is_simple(&cur) {
        cur = rules::push_in(&cur, 1).expect("pushing one base label always applies");
    }
    cur
}

/// Maximally re-localizes a simple-form NFD: repeatedly pulls out while a
/// LHS path `y` exists that properly prefixes the RHS and every other LHS
/// path. Longest applicable `y` first, so `R:[A, A:B, A:B:C → A:B:E]`
/// localizes to `R:A:B:[C → E]`… when `A` and `A:B` are themselves LHS
/// members; otherwise it stops at the deepest valid level.
pub fn localize(nfd: &Nfd) -> Nfd {
    let mut cur = nfd.clone();
    loop {
        // Candidate ys: LHS paths that properly prefix the RHS and every
        // other LHS path. Pick the shortest (pull out one step at a time —
        // any order reaches the same fixpoint, shortest-first keeps each
        // pull-out valid).
        let candidate = cur
            .lhs()
            .iter()
            .filter(|y| {
                y.is_proper_prefix_of(&cur.rhs)
                    && cur
                        .lhs()
                        .iter()
                        .all(|p| p == *y || y.is_proper_prefix_of(p))
            })
            .min_by_key(|y| y.len())
            .cloned();
        match candidate {
            Some(y) => {
                cur = rules::pull_out(&cur, &y).expect("candidate satisfies pull-out conditions");
            }
            None => return cur,
        }
    }
}

/// Round-trips an NFD through simple form: `localize(to_simple(f))`. For
/// NFDs written in the fully local style this is the identity; it is the
/// canonical "pretty" presentation used in proofs.
pub fn canonical_local(nfd: &Nfd) -> Nfd {
    localize(&to_simple(nfd))
}

/// Are two NFDs equal up to the push-in/pull-out equivalence?
pub fn equivalent_form(a: &Nfd, b: &Nfd) -> bool {
    to_simple(a) == to_simple(b)
}

/// The simple-form LHS/RHS of an NFD as relative paths: the pair
/// `({y} ∪ y:X, y:z)` for `R:y:[X → z]`.
pub fn simple_components(nfd: &Nfd) -> (Vec<Path>, Path) {
    let s = to_simple(nfd);
    (s.lhs().to_vec(), s.rhs.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfd_model::Schema;

    fn schema() -> Schema {
        Schema::parse("R : { <A: {<B: {<C: int>}, E: {<F: int, G: int>}>}, D: int> };").unwrap()
    }

    fn nfd(s: &Schema, t: &str) -> Nfd {
        Nfd::parse(s, t).unwrap()
    }

    #[test]
    fn to_simple_pushes_fully() {
        let s = schema();
        assert_eq!(
            to_simple(&nfd(&s, "R:A:[B -> E:G]")),
            nfd(&s, "R:[A, A:B -> A:E:G]")
        );
        let already = nfd(&s, "R:[D -> A]");
        assert_eq!(to_simple(&already), already);
    }

    #[test]
    fn deep_base_pushes_all_levels() {
        let s = schema();
        // One-label push-in steps: the base prefixes accumulate in the
        // LHS. (The stronger single-shot form `R:[A:B → A:B:C]` follows
        // by full-locality and is reached during engine saturation.)
        assert_eq!(
            to_simple(&nfd(&s, "R:A:B:[ -> C]")),
            nfd(&s, "R:[A, A:B -> A:B:C]")
        );
    }

    #[test]
    fn localize_inverts_to_simple() {
        let s = schema();
        for t in [
            "R:A:[B -> E:G]",
            "R:A:B:[ -> C]",
            "R:A:E:[F -> G]",
            "R:[D -> A]",
        ] {
            let f = nfd(&s, t);
            assert_eq!(canonical_local(&f), f, "canonical form of {t}");
        }
    }

    #[test]
    fn localize_stops_without_full_prefix_chain() {
        let s = schema();
        // A:B is in the LHS but A is not: cannot pull out A, so the NFD
        // stays global.
        let f = nfd(&s, "R:[A:B, A:B:C -> A:E:F]");
        assert_eq!(localize(&f), f);
        // {A, A:B:C → A:E:F}: A can be pulled out (everything under A).
        let g = nfd(&s, "R:[A, A:B:C -> A:E:F]");
        assert_eq!(localize(&g), nfd(&s, "R:A:[B:C -> E:F]"));
    }

    #[test]
    fn equivalence_across_forms() {
        let s = schema();
        assert!(equivalent_form(
            &nfd(&s, "R:A:[B -> E:G]"),
            &nfd(&s, "R:[A, A:B -> A:E:G]")
        ));
        assert!(!equivalent_form(
            &nfd(&s, "R:A:[B -> E:G]"),
            &nfd(&s, "R:[A:B -> A:E:G]")
        ));
    }

    #[test]
    fn is_simple_checks_base() {
        let s = schema();
        assert!(is_simple(&nfd(&s, "R:[D -> A]")));
        assert!(!is_simple(&nfd(&s, "R:A:[B -> E]")));
    }

    #[test]
    fn simple_components_shape() {
        let s = schema();
        let (lhs, rhs) = simple_components(&nfd(&s, "R:A:[B -> E:G]"));
        assert_eq!(
            lhs.iter().map(Path::to_string).collect::<Vec<_>>(),
            ["A", "A:B"]
        );
        assert_eq!(rhs.to_string(), "A:E:G");
    }
}
