//! The path closure `(x0, X, Σ)*` (Appendix A).
//!
//! For a base path `x0`, a set `X` of paths and a set Σ of NFDs, the
//! closure is the set of rooted paths `x0:q` such that `x0:[X → q]` is
//! derivable from the NFD-rules. It plays the same role attribute closure
//! plays for Armstrong's axioms: `Σ ⊨ x0:[X → y]` iff `x0:y` is in the
//! closure, and the Appendix A instance construction consumes it directly.
//!
//! The computation lives on [`Engine::closure`](crate::engine::Engine::closure);
//! this module adds the small conveniences the construction needs.

use crate::engine::Engine;
use crate::error::CoreError;
use nfd_path::{Path, RootedPath};

/// `(x0, X, Σ)*` as a sorted list of rooted paths. Thin alias for
/// [`Engine::closure`].
pub fn closure(
    engine: &Engine<'_>,
    base: &RootedPath,
    lhs: &[Path],
) -> Result<Vec<RootedPath>, CoreError> {
    engine.closure(base, lhs)
}

/// The constants closure `(p, ∅)*`: the paths below `p` whose value is
/// derivably constant within any value of `p`. Used by the `newRow` step
/// of the Appendix A construction.
pub fn constants(engine: &Engine<'_>, base: &RootedPath) -> Result<Vec<RootedPath>, CoreError> {
    engine.closure(base, &[])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfd::parse_set;
    use nfd_model::Schema;

    #[test]
    fn constants_closure() {
        let schema = Schema::parse("R : {<A: int, E: {<F: int, G: int>}>};").unwrap();
        // E's F attribute is constant inside every E set.
        let sigma = parse_set(&schema, "R:E:[ -> F];").unwrap();
        let engine = Engine::new(&schema, &sigma).unwrap();
        let consts = constants(&engine, &RootedPath::parse("R:E").unwrap()).unwrap();
        let shown: Vec<String> = consts.iter().map(|p| p.to_string()).collect();
        assert_eq!(shown, ["R:E:F"]);
    }

    #[test]
    fn closure_respects_base_scoping() {
        let schema = Schema::parse("R : {<A: {<B: int, C: int>}, D: int>};").unwrap();
        let sigma = parse_set(&schema, "R:A:[B -> C]; R:[D -> A];").unwrap();
        let engine = Engine::new(&schema, &sigma).unwrap();
        // Relative to base R:A, B determines C but not D (outside scope).
        let c = closure(
            &engine,
            &RootedPath::parse("R:A").unwrap(),
            &[Path::parse("B").unwrap()],
        )
        .unwrap();
        let shown: Vec<String> = c.iter().map(|p| p.to_string()).collect();
        assert_eq!(shown, ["R:A:B", "R:A:C"]);
    }
}
