//! The retained naive reference implementation — the differential oracle.
//!
//! This module preserves the pre-index saturation engine *verbatim*: `add`
//! scans the whole pool for subsumption, `saturate` resolves all `O(n²)`
//! pairs with no occurrence index, and `chain` re-scans every pool entry
//! per fixed-point pass. It exists so `tests/kernel_differential.rs` can
//! assert that the indexed engine of [`crate::engine`] produces
//! bit-identical pools, subsumption flags, closures and `fired`
//! provenance maps — the indexed kernel is an optimization, never a
//! semantic change. Everything here is `#[doc(hidden)]`: it is an oracle
//! and a benchmark baseline, not API.
//!
//! The two implementations share [`CDep`]/[`Prov`] and the compiled
//! policy sets (via `engine::compile_policy`), so a divergence in the
//! differential suite isolates the index/worklist/counting machinery
//! itself rather than representation drift.

#![doc(hidden)]

use crate::emptyset::EmptySetPolicy;
use crate::engine::{compile_policy, CDep, Prov};
use crate::error::CoreError;
use crate::nfd::Nfd;
use crate::simple;
use nfd_govern::{Budget, ResourceKind};
use nfd_model::{Label, Schema};
use nfd_path::table::{PathId, PathSet, PathTable, SchemaTables};
use nfd_path::{Path, RootedPath};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A comparable snapshot of one pool entry (see `Engine::pool_dump`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolEntryDump {
    /// LHS path ids, ascending.
    pub lhs: Vec<PathId>,
    /// RHS path id.
    pub rhs: PathId,
    /// Provenance, with pool-index premises.
    pub prov: Prov,
    /// Whether a later entry subsumed this one.
    pub subsumed: bool,
}

/// Snapshot of a pool as `(relation name, entries in pool order)`,
/// sorted by relation name.
pub type PoolDump = Vec<(String, Vec<PoolEntryDump>)>;

/// A chain trace: `(verdict, closure ids ascending, fired map as sorted
/// pairs)` — everything proof reconstruction depends on.
pub type ChainDump = (bool, Vec<PathId>, Vec<(PathId, usize)>);

pub(crate) fn dump_pool_entries(deps: &[CDep]) -> Vec<PoolEntryDump> {
    deps.iter()
        .map(|d| PoolEntryDump {
            lhs: d.lhs.to_vec(),
            rhs: d.rhs,
            prov: d.prov.clone(),
            subsumed: d.subsumed,
        })
        .collect()
}

/// Per-relation naive saturation state (the pre-index `RelEngine`).
struct NaiveRel {
    relation: Label,
    table: Arc<PathTable>,
    deps: Vec<CDep>,
    seen: HashSet<(PathSet, PathId)>,
    singletons_granted: Vec<PathId>,
    non_empty: PathSet,
    defined: PathSet,
}

impl NaiveRel {
    fn new(relation: Label, table: Arc<PathTable>, policy: &EmptySetPolicy) -> NaiveRel {
        let (non_empty, defined) = compile_policy(relation, &table, policy);
        NaiveRel {
            relation,
            table,
            deps: Vec::new(),
            seen: HashSet::new(),
            singletons_granted: Vec::new(),
            non_empty,
            defined,
        }
    }

    fn path_id(&self, p: &Path) -> Result<PathId, CoreError> {
        self.table.id_of(p).ok_or_else(|| {
            CoreError::Nav(format!(
                "path `{p}` is not a path of relation `{}`",
                self.relation
            ))
        })
    }

    fn intern_lhs(&self, lhs: &[Path]) -> Result<PathSet, CoreError> {
        let mut set = self.table.empty_set();
        for p in lhs {
            set.insert(self.path_id(p)?);
        }
        Ok(set)
    }

    /// The original full-scan `add`: forward subsumption check and
    /// backward subsumption marking both walk the entire pool.
    fn add(
        &mut self,
        lhs: PathSet,
        rhs: PathId,
        prov: Prov,
        budget: &Budget,
    ) -> Result<bool, CoreError> {
        if lhs.contains(rhs) {
            return Ok(false);
        }
        if !self.seen.insert((lhs.clone(), rhs)) {
            return Ok(false);
        }
        for d in &self.deps {
            if !d.subsumed && d.rhs == rhs && d.lhs.is_subset(&lhs) {
                return Ok(false);
            }
        }
        for d in &mut self.deps {
            if !d.subsumed && d.rhs == rhs && lhs.is_subset(&d.lhs) {
                d.subsumed = true;
            }
        }
        budget.check_counter(ResourceKind::PoolDeps, self.deps.len() as u64 + 1)?;
        let mut need_x = lhs.clone();
        need_x.difference_with(self.table.followers_of(rhs));
        need_x.difference_with(&self.defined);
        self.deps.push(CDep {
            lhs,
            rhs,
            prov,
            subsumed: false,
            need_x,
        });
        Ok(true)
    }

    /// The original all-pairs saturation loop: every entry resolves
    /// against every earlier entry, both directions, no frontier.
    fn saturate(&mut self, budget: &Budget) -> Result<(), CoreError> {
        let mut i = 0;
        let mut tick: u32 = 0;
        while i < self.deps.len() {
            budget.check_live().map_err(CoreError::Exhausted)?;
            if self.deps[i].subsumed {
                i += 1;
                continue;
            }
            self.unary_conclusions(i, budget)?;
            for j in 0..i {
                tick = tick.wrapping_add(1);
                if tick.is_multiple_of(4096) {
                    budget.check_live().map_err(CoreError::Exhausted)?;
                }
                if self.deps[j].subsumed {
                    continue;
                }
                self.resolve_pair(i, j, budget)?;
                self.resolve_pair(j, i, budget)?;
            }
            i += 1;
        }
        Ok(())
    }

    fn unary_conclusions(&mut self, i: usize, budget: &Budget) -> Result<(), CoreError> {
        let table = Arc::clone(&self.table);
        let (lhs, rhs) = (self.deps[i].lhs.clone(), self.deps[i].rhs);

        for pid in lhs.iter() {
            let Some(x1) = table.parent(pid) else {
                continue;
            };
            if table.is_prefix(x1, rhs) {
                continue;
            }
            if !(self.non_empty.contains(x1) && self.defined.contains(x1)) {
                continue;
            }
            let mut new_lhs = lhs.clone();
            new_lhs.remove(pid);
            new_lhs.insert(x1);
            self.add(
                new_lhs,
                rhs,
                Prov::Prefix {
                    dep: i,
                    shortened: pid,
                },
                budget,
            )?;
        }

        for x_id in table.ancestors(rhs) {
            let mut kept = lhs.clone();
            kept.intersect_with(table.extensions_of(x_id));
            let mut dismissed = lhs.clone();
            dismissed.difference_with(&kept);
            dismissed.remove(x_id);
            dismissed.difference_with(table.followers_of(rhs));
            dismissed.difference_with(&self.defined);
            if !dismissed.is_empty() {
                continue;
            }
            kept.insert(x_id);
            self.add(kept, rhs, Prov::FullLocality { dep: i, x: x_id }, budget)?;
        }
        Ok(())
    }

    fn resolve_pair(
        &mut self,
        target: usize,
        supplier: usize,
        budget: &Budget,
    ) -> Result<(), CoreError> {
        let on = self.deps[supplier].rhs;
        if !self.deps[target].lhs.contains(on) {
            return Ok(());
        }
        let t_rhs = self.deps[target].rhs;
        if !(self.table.follows(on, t_rhs) || self.defined.contains(on)) {
            return Ok(());
        }
        let mut new_lhs = self.deps[target].lhs.clone();
        new_lhs.remove(on);
        new_lhs.union_with(&self.deps[supplier].lhs);
        self.add(
            new_lhs,
            t_rhs,
            Prov::Resolve {
                target,
                supplier,
                on,
            },
            budget,
        )?;
        Ok(())
    }

    fn chain(&self, x: &[PathId], fired: Option<&mut HashMap<PathId, usize>>) -> PathSet {
        self.chain_bounded(x, fired, self.deps.len())
    }

    /// The original pass-scan chain: repeated index-order sweeps over
    /// `deps[..max]` until a sweep changes nothing. The counting kernel
    /// replays this exact firing order — see `kernel::chain_counting`.
    fn chain_bounded(
        &self,
        x: &[PathId],
        mut fired: Option<&mut HashMap<PathId, usize>>,
        max: usize,
    ) -> PathSet {
        let x_set = PathSet::from_ids(self.table.words(), x.iter().copied());
        let mut c = x_set.clone();
        let mut changed = true;
        while changed {
            changed = false;
            for (di, d) in self.deps.iter().enumerate().take(max) {
                if c.contains(d.rhs) {
                    continue;
                }
                if !d.lhs.is_subset(&c) {
                    continue;
                }
                if !d.need_x.is_subset(&x_set) {
                    continue;
                }
                c.insert(d.rhs);
                if let Some(f) = fired.as_deref_mut() {
                    f.entry(d.rhs).or_insert(di);
                }
                changed = true;
            }
        }
        c
    }

    /// The original singleton round: a fresh full chain per candidate.
    fn singleton_round(&mut self, budget: &Budget) -> Result<bool, CoreError> {
        let table = Arc::clone(&self.table);
        let mut added = false;
        budget.check_live().map_err(CoreError::Exhausted)?;
        for x_id in 0..table.len() as PathId {
            if self.singletons_granted.contains(&x_id) {
                continue;
            }
            if !table.is_set_record(x_id) {
                continue;
            }
            let attrs = table.children(x_id);
            if attrs.is_empty() {
                continue;
            }
            let c = self.chain(&[x_id], None);
            if attrs.iter().all(|&a| c.contains(a)) {
                let lhs = PathSet::from_ids(table.words(), attrs.iter().copied());
                self.add(lhs, x_id, Prov::Singleton { x: x_id }, budget)?;
                self.singletons_granted.push(x_id);
                added = true;
            }
        }
        Ok(added)
    }
}

/// The naive implication engine (pre-index algorithms, same IR).
pub struct NaiveEngine<'s> {
    schema: &'s Schema,
    rels: HashMap<Label, NaiveRel>,
    budget: Budget,
}

impl<'s> NaiveEngine<'s> {
    /// Builds and saturates the naive engine — the old `Engine::new`
    /// control flow, scan for scan.
    pub fn new(schema: &'s Schema, sigma: &[Nfd]) -> Result<NaiveEngine<'s>, CoreError> {
        NaiveEngine::with_policy_budget(
            schema,
            sigma,
            EmptySetPolicy::Forbidden,
            Budget::standard(),
        )
    }

    /// [`NaiveEngine::new`] under an explicit policy and budget, for
    /// differential runs that must see the same resource limits as the
    /// indexed engine.
    pub fn with_policy_budget(
        schema: &'s Schema,
        sigma: &[Nfd],
        policy: EmptySetPolicy,
        budget: Budget,
    ) -> Result<NaiveEngine<'s>, CoreError> {
        let tables = SchemaTables::new(schema).map_err(|e| CoreError::Nav(e.to_string()))?;
        let mut rels: HashMap<Label, NaiveRel> = HashMap::new();
        for name in schema.relation_names() {
            let table = tables
                .get(name)
                .ok_or_else(|| CoreError::Nav(format!("unknown relation `{name}`")))?;
            rels.insert(name, NaiveRel::new(name, Arc::clone(table), &policy));
        }
        for (i, nfd) in sigma.iter().enumerate() {
            nfd.validate(schema)?;
            let s = simple::to_simple(nfd);
            let rel = rels.get_mut(&s.base.relation).ok_or_else(|| {
                CoreError::Nav(format!(
                    "NFD #{i} names relation `{}` which is not in the schema",
                    s.base.relation
                ))
            })?;
            let lhs = rel.intern_lhs(s.lhs())?;
            let rhs = rel.path_id(&s.rhs)?;
            rel.add(lhs, rhs, Prov::Given(i), &budget)?;
        }
        for rel in rels.values_mut() {
            loop {
                rel.saturate(&budget)?;
                if !rel.singleton_round(&budget)? {
                    break;
                }
            }
        }
        Ok(NaiveEngine {
            schema,
            rels,
            budget,
        })
    }

    fn rel(&self, relation: Label) -> Result<&NaiveRel, CoreError> {
        self.rels
            .get(&relation)
            .ok_or_else(|| CoreError::WrongRelation {
                expected: self
                    .rels
                    .keys()
                    .map(|k| k.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
                found: relation.to_string(),
            })
    }

    fn normalize_goal(&self, goal: &Nfd) -> Result<(Label, Vec<PathId>, PathId), CoreError> {
        goal.validate(self.schema)?;
        let s = simple::to_simple(goal);
        let rel = self.rel(s.base.relation)?;
        let lhs = rel.intern_lhs(s.lhs())?;
        let rhs = rel.path_id(&s.rhs)?;
        Ok((s.base.relation, lhs.to_vec(), rhs))
    }

    /// Naive implication verdict (old `Engine::implies`).
    pub fn implies(&self, goal: &Nfd) -> Result<bool, CoreError> {
        self.budget.check_live().map_err(CoreError::Exhausted)?;
        let (relation, lhs, rhs) = self.normalize_goal(goal)?;
        if lhs.contains(&rhs) {
            return Ok(true);
        }
        let rel = self.rel(relation)?;
        Ok(rel.chain(&lhs, None).contains(rhs))
    }

    /// Naive Appendix-A closure (old `Engine::closure`).
    pub fn closure(&self, base: &RootedPath, lhs: &[Path]) -> Result<Vec<RootedPath>, CoreError> {
        self.budget.check_live().map_err(CoreError::Exhausted)?;
        let rel = self.rel(base.relation)?;
        let prefix = &base.path;
        let mut x_ids: Vec<PathId> = Vec::new();
        let mut prefix_id = None;
        if !prefix.is_empty() {
            let id = rel.path_id(prefix)?;
            prefix_id = Some(id);
            x_ids.push(id);
        }
        for p in lhs {
            if p.is_empty() {
                return Err(CoreError::EmptyComponentPath);
            }
            x_ids.push(rel.path_id(&prefix.join(p))?);
        }
        x_ids.sort_unstable();
        x_ids.dedup();
        let mut c = rel.chain(&x_ids, None);
        if let Some(id) = prefix_id {
            c.intersect_with(rel.table.extensions_of(id));
        }
        let mut out: Vec<RootedPath> = c
            .iter()
            .map(|i| RootedPath::new(base.relation, rel.table.path(i).clone()))
            .collect();
        out.sort_by(|a, b| {
            let ka: Vec<&str> = a.path.labels().iter().map(|l| l.as_str()).collect();
            let kb: Vec<&str> = b.path.labels().iter().map(|l| l.as_str()).collect();
            (a.path.len(), ka).cmp(&(b.path.len(), kb))
        });
        Ok(out)
    }

    /// Snapshot of every relation's pool, sorted by relation name — the
    /// object the differential suite compares against
    /// `Engine::pool_dump`.
    pub fn pool_dump(&self) -> PoolDump {
        let mut out: PoolDump = self
            .rels
            .values()
            .map(|r| (r.relation.to_string(), dump_pool_entries(&r.deps)))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Verdict, closure and `fired` provenance for a goal — compared
    /// against `Engine::chain_dump` (identical maps ⇒ identical proofs).
    pub fn chain_dump(&self, goal: &Nfd) -> Result<ChainDump, CoreError> {
        let (relation, lhs, rhs) = self.normalize_goal(goal)?;
        let rel = self.rel(relation)?;
        let mut fired: HashMap<PathId, usize> = HashMap::new();
        let c = rel.chain(&lhs, Some(&mut fired));
        let verdict = lhs.contains(&rhs) || c.contains(rhs);
        let mut fired: Vec<(PathId, usize)> = fired.into_iter().collect();
        fired.sort_unstable();
        Ok((verdict, c.to_vec(), fired))
    }

    /// Sequential candidate-key sweep with the naive chain — the same
    /// enumeration order, budget accounting and pruning discipline as
    /// `analysis::candidate_keys` at one thread.
    pub fn candidate_keys(
        &self,
        relation: Label,
        max_key_size: usize,
    ) -> Result<Vec<Vec<Path>>, CoreError> {
        self.schema
            .relation_type(relation)
            .map_err(|_| CoreError::Nav(format!("unknown relation `{relation}`")))?
            .element_record()
            .ok_or_else(|| {
                CoreError::Nav(format!("relation `{relation}` has no element record"))
            })?;
        let rel = self.rel(relation)?;
        let table = &rel.table;
        let attrs: Vec<PathId> = (0..table.len() as PathId)
            .filter(|&id| table.parent(id).is_none())
            .collect();
        let universe = PathSet::from_ids(table.words(), attrs.iter().copied());
        let mut visited: u64 = 0;
        let mut keys: Vec<Vec<PathId>> = Vec::new();
        for size in 0..=max_key_size.min(attrs.len()) {
            let mut found: Vec<Vec<PathId>> = Vec::new();
            let mut fail = None;
            let mut combo: Vec<PathId> = Vec::with_capacity(size);
            search(&attrs, size, 0, &mut combo, &mut |cand| {
                visited += 1;
                if let Err(r) = self
                    .budget
                    .check_counter(ResourceKind::KeyCandidates, visited)
                {
                    fail = Some(nfd_govern::ResourceReport::counter(
                        r.kind,
                        r.limit,
                        r.limit.saturating_add(1),
                    ));
                    return false;
                }
                if visited.is_multiple_of(1024) {
                    if let Err(r) = self.budget.check_live() {
                        fail = Some(r);
                        return false;
                    }
                }
                if keys.iter().any(|k| k.iter().all(|p| cand.contains(p))) {
                    return true;
                }
                if universe.is_subset(&rel.chain(cand, None)) {
                    found.push(cand.to_vec());
                }
                true
            });
            if let Some(r) = fail {
                return Err(CoreError::Exhausted(r));
            }
            keys.append(&mut found);
        }
        let mut keys: Vec<Vec<Path>> = keys
            .into_iter()
            .map(|k| k.into_iter().map(|id| table.path(id).clone()).collect())
            .collect();
        keys.sort();
        Ok(keys)
    }
}

/// `size`-subset enumeration in index order (mirror of
/// `analysis::search`).
fn search(
    items: &[PathId],
    size: usize,
    start: usize,
    combo: &mut Vec<PathId>,
    visit: &mut dyn FnMut(&[PathId]) -> bool,
) -> bool {
    if combo.len() == size {
        return visit(combo);
    }
    for i in start..items.len() {
        combo.push(items[i]);
        let keep_going = search(items, size, i + 1, combo, visit);
        combo.pop();
        if !keep_going {
            return false;
        }
    }
    true
}
