//! Error type for NFD construction, checking and inference.

use nfd_govern::ResourceReport;
use nfd_path::typing::PathTypeError;
use std::fmt;

/// Errors raised by the NFD machinery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoreError {
    /// A component path of an NFD is `ε` (Definition 2.3 requires `ki ≥ 1`).
    EmptyComponentPath,
    /// A path failed to type-check against the schema.
    Type(PathTypeError),
    /// Parse error for the NFD syntax.
    Parse(String),
    /// The instance/schema pair is inconsistent with the NFD being checked
    /// (e.g. navigation met a shape the schema forbids).
    Nav(String),
    /// The Appendix A construction was asked for something it cannot build
    /// (e.g. a schema using the finite `bool` base type — the completeness
    /// argument assumes infinite domains).
    Construct(String),
    /// An inference-rule application whose side conditions do not hold.
    Rule(String),
    /// A resource budget ran out before the computation finished — an
    /// honest "don't know yet", never a wrong answer.
    Exhausted(ResourceReport),
    /// An internal invariant was violated (e.g. a contained panic from a
    /// decision procedure). Seeing this is a bug; the variant exists so
    /// the session/CLI boundary can report it instead of aborting.
    Internal(String),
    /// Dependencies passed to an engine refer to different relations than
    /// the one the engine was built for.
    WrongRelation {
        /// Relation the engine reasons about.
        expected: String,
        /// Relation the offending NFD is over.
        found: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyComponentPath => {
                f.write_str("NFD component paths must have at least one label")
            }
            CoreError::Type(e) => write!(f, "{e}"),
            CoreError::Parse(m) => write!(f, "NFD parse error: {m}"),
            CoreError::Nav(m) => write!(f, "navigation error: {m}"),
            CoreError::Construct(m) => write!(f, "construction error: {m}"),
            CoreError::Rule(m) => write!(f, "rule not applicable: {m}"),
            CoreError::Exhausted(r) => write!(f, "resources exhausted: {r}"),
            CoreError::Internal(m) => write!(f, "internal error: {m}"),
            CoreError::WrongRelation { expected, found } => {
                write!(
                    f,
                    "engine is for relation `{expected}`, got NFD over `{found}`"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<PathTypeError> for CoreError {
    fn from(e: PathTypeError) -> Self {
        CoreError::Type(e)
    }
}

impl From<nfd_path::nav::NavError> for CoreError {
    fn from(e: nfd_path::nav::NavError) -> Self {
        CoreError::Nav(e.to_string())
    }
}

impl From<ResourceReport> for CoreError {
    fn from(r: ResourceReport) -> Self {
        CoreError::Exhausted(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(CoreError::EmptyComponentPath
            .to_string()
            .contains("at least one label"));
        let e = CoreError::WrongRelation {
            expected: "R".into(),
            found: "S".into(),
        };
        assert!(e.to_string().contains("`R`"));
        assert!(e.to_string().contains("`S`"));
    }
}
