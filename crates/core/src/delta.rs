//! Live Σ maintenance — delta insertion and counting-based retraction.
//!
//! [`Engine`] construction saturates one dependency pool per relation and
//! then treats the result as immutable; before this module, the only way
//! to change Σ was to throw the compilation away and rebuild everything
//! (`Session::reconfigure`). This module adds [`Engine::add_dep`] and
//! [`Engine::remove_dep`], which maintain the saturated state under
//! single-dependency mutation while keeping a hard exactness contract:
//!
//! > After any sequence of mutations, every relation's pool — contents,
//! > entry order, subsumption flags, `max` bounds and provenance — is
//! > **bit-for-bit identical** to the pool a from-scratch
//! > [`Engine::with_tables`] build over the mutated Σ would produce.
//!
//! The contract is what makes maintenance *testable*: the mutation census
//! (`tests/delta_differential.rs`) walks hundreds of add/remove steps and
//! compares the maintained engine against a fresh build and against the
//! retained naive oracle after every step.
//!
//! ## Why exactness forces a scoped replay (the support-count argument)
//!
//! Retraction is the instructive case. The pool is a derivation DAG:
//! entry `j` cites its premises by pool index (`Prov::Resolve { target,
//! supplier, .. }` etc.), so removing the given `σ = Σ[i]` suggests the
//! classic counting / DRed plan — walk the DAG, decrement each entry's
//! support count, *over-delete* the entries whose count hits zero
//! (everything transitively supported by `σ`'s pool entry), then
//! *re-derive* survivors that have alternative derivations. The counting
//! pass is implemented here ([`Engine::retraction_impact`], and
//! `remove_dep` reports its size as [`DeltaReport::overdeleted`]), and it
//! correctly identifies the doomed entries. But counting alone cannot
//! reproduce the fresh pool, for four compounding reasons:
//!
//! 1. **Positions shift.** Pool entries embed premise *indices*, and
//!    proof reconstruction bounds chaining by those indices (`max`), so
//!    when the dead entries are squeezed out every surviving index — and
//!    every `Prov` citing one — changes. Exactness is positional, not
//!    just set-valued.
//! 2. **Subsumption races.** `RelEngine::add` rejects a candidate whose
//!    LHS is a superset of an *already present* active entry with the
//!    same RHS. Removing `σ` changes which entries are present at each
//!    insertion instant, so a survivor of the old pool can be rejected in
//!    the fresh build (something stronger now lands first) and an entry
//!    the old build rejected can now be admitted. Membership itself,
//!    not only order, depends on the full replay history.
//! 3. **The `seen` set is history-dependent.** Duplicate suppression
//!    remembers every `(lhs, rhs)` ever attempted, including attempts
//!    seeded by `σ`; a maintained engine that kept the old `seen` set
//!    would silently refuse derivations the fresh build makes.
//! 4. **Singleton premises are implicit.** `Prov::Singleton { x }` cites
//!    no pool indices — its premises are the closure facts `x → x:Aᵢ`,
//!    replayed on demand — so the provenance DAG *under-counts* support
//!    and the over-delete set is a lower bound, not an exact frontier.
//!
//! So the re-derive phase must replay the deterministic insertion order
//! in full. What keeps that cheap is the *independence boundary*:
//! relation pools never interact (a pool depends only on the relation's
//! table, the policy, and the Σ entries naming that relation, added in Σ
//! order — see [`Engine::with_tables`]). A mutation therefore re-runs the
//! build for **one** relation (`Engine::rebuild_relation`) and leaves
//! every other relation's pool, closure-cache entries, dense rows and
//! promotion counters untouched and warm. The one cross-relation effect
//! of removal is notational: `Prov::Given(k)` cites positions in Σ, so
//! untouched relations get a pure index relabel (`k > i` becomes
//! `k - 1`), which changes no pool content and is exactly what the fresh
//! build over the shortened Σ records.
//!
//! Insertion is the same story run forward: appending `σ` to Σ seeds the
//! touched relation's frontier with one new given, and the semi-naive
//! worklist discipline inside `RelEngine::saturate` (each new entry is
//! resolved only against the already-processed prefix, through the
//! `DepIndex` occurrence lists) is what the replay reuses — the delta is
//! scoped by *relation*, and within the relation the engine's existing
//! indexed saturation already does frontier-driven work.
//!
//! Mutations are atomic: the fresh pool is built on the side and swapped
//! in only on success, so a budget exhaustion (or an injected
//! `delta::insert` / `delta::retract` fault) leaves the engine exactly as
//! it was — the old Σ, the old pools, the old caches — never a stale
//! hybrid. Scoped cache/tier invalidation for the touched relation
//! happens only on the commit path (see DESIGN.md §12).

use crate::engine::{Engine, Prov};
use crate::error::CoreError;
use crate::nfd::Nfd;
use crate::simple;
use nfd_faults::fail_point;
use nfd_model::Label;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// What one Σ mutation did to the touched relation's pool — returned by
/// [`Engine::add_dep`] and [`Engine::remove_dep`] for observability
/// (serve responses, benches, the mutation census).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeltaReport {
    /// The relation whose pool was rebuilt; every other relation was
    /// left untouched.
    pub relation: Label,
    /// Pool entries of the touched relation before the mutation.
    pub pool_before: usize,
    /// Pool entries after the mutation committed.
    pub pool_after: usize,
    /// For removals: old pool entries transitively supported by the
    /// removed given — the counting pass's over-delete set (a lower
    /// bound; `Prov::Singleton` premises are replayed on demand and are
    /// not traced through the provenance DAG). Always zero for
    /// insertions.
    pub overdeleted: usize,
}

impl<'s> Engine<'s> {
    /// Adds `dep` to Σ and incrementally re-establishes saturation: only
    /// the relation `dep` names is rebuilt (bit-identical to a
    /// from-scratch build over the extended Σ — see the module docs);
    /// every other relation's pool and caches stay warm.
    ///
    /// On error (validation, budget exhaustion, injected fault) the
    /// engine is unchanged.
    pub fn add_dep(&mut self, dep: &Nfd) -> Result<DeltaReport, CoreError> {
        fail_point!(
            "delta::insert",
            Err(CoreError::Exhausted(nfd_govern::ResourceReport::injected())),
            self.budget().cancel_token()
        );
        self.budget().check_live().map_err(CoreError::Exhausted)?;
        dep.validate(self.schema())?;
        let relation = simple::to_simple(dep).base.relation;
        let pool_before = self.rel(relation)?.deps.len();
        self.sigma.push(dep.clone());
        // The rebuild happens on the side and commits atomically, but a
        // panic unwinding out of it (e.g. an armed `engine::saturate`
        // fault) would leave the pushed Σ entry paired with the old pool
        // — a stale hybrid. Roll Σ back before letting the panic
        // continue, so containment boundaries above observe a
        // fully-unmutated engine.
        match catch_unwind(AssertUnwindSafe(|| self.rebuild_relation(relation))) {
            Ok(Ok(())) => Ok(DeltaReport {
                relation,
                pool_before,
                pool_after: self.rels[&relation].deps.len(),
                overdeleted: 0,
            }),
            Ok(Err(e)) => {
                self.sigma.pop();
                Err(e)
            }
            Err(payload) => {
                self.sigma.pop();
                resume_unwind(payload)
            }
        }
    }

    /// Removes the first Σ entry equal to `dep` and incrementally
    /// re-establishes saturation: counting retraction identifies the
    /// over-delete set (reported as [`DeltaReport::overdeleted`]), the
    /// named relation replays its deterministic build over the shortened
    /// Σ, and untouched relations only have their `Prov::Given` indices
    /// relabelled past the removed position — no pool content changes
    /// outside the touched relation.
    ///
    /// Returns [`CoreError::Nav`] if `dep` is not in Σ. On error the
    /// engine is unchanged.
    pub fn remove_dep(&mut self, dep: &Nfd) -> Result<DeltaReport, CoreError> {
        fail_point!(
            "delta::retract",
            Err(CoreError::Exhausted(nfd_govern::ResourceReport::injected())),
            self.budget().cancel_token()
        );
        self.budget().check_live().map_err(CoreError::Exhausted)?;
        dep.validate(self.schema())?;
        let relation = simple::to_simple(dep).base.relation;
        let Some(i) = self.sigma.iter().position(|n| n == dep) else {
            return Err(CoreError::Nav(format!("dependency `{dep}` is not in Σ")));
        };
        let pool_before = self.rel(relation)?.deps.len();
        let overdeleted = dead_entries(self, relation, i)
            .iter()
            .filter(|&&d| d)
            .count();
        let removed = self.sigma.remove(i);
        match catch_unwind(AssertUnwindSafe(|| self.rebuild_relation(relation))) {
            Ok(Ok(())) => {
                // Commit the cross-relation effect: `Given(k)` cites a
                // position in Σ, and every position past `i` moved down
                // one. A pure relabel — content, order and subsumption
                // flags are untouched, which is exactly what a fresh
                // build over the shortened Σ records for these pools.
                for (name, rel) in self.rels.iter_mut() {
                    if *name == relation {
                        continue;
                    }
                    for d in &mut rel.deps {
                        if let Prov::Given(k) = &mut d.prov {
                            if *k > i {
                                *k -= 1;
                            }
                        }
                    }
                }
                Ok(DeltaReport {
                    relation,
                    pool_before,
                    pool_after: self.rels[&relation].deps.len(),
                    overdeleted,
                })
            }
            Ok(Err(e)) => {
                self.sigma.insert(i, removed);
                Err(e)
            }
            Err(payload) => {
                self.sigma.insert(i, removed);
                resume_unwind(payload)
            }
        }
    }

    /// The counting pass alone: how many of the touched relation's pool
    /// entries are transitively supported by the given `dep` (the
    /// DRed-style over-delete set), without mutating anything. A lower
    /// bound — see the module docs on `Prov::Singleton`. Returns
    /// [`CoreError::Nav`] if `dep` is not in Σ.
    pub fn retraction_impact(&self, dep: &Nfd) -> Result<usize, CoreError> {
        dep.validate(self.schema())?;
        let relation = simple::to_simple(dep).base.relation;
        let Some(i) = self.sigma.iter().position(|n| n == dep) else {
            return Err(CoreError::Nav(format!("dependency `{dep}` is not in Σ")));
        };
        Ok(dead_entries(self, relation, i)
            .iter()
            .filter(|&&d| d)
            .count())
    }
}

/// Marks the pool entries of `relation` transitively supported by the
/// given at Σ position `sigma_idx`: the entry carrying
/// `Prov::Given(sigma_idx)` (if the pool admitted one) plus everything
/// citing a dead entry as a premise. Premise indices are well-founded
/// (`premise < entry` — checked by `Engine::check_invariants`), so one
/// forward pass suffices.
fn dead_entries(engine: &Engine<'_>, relation: Label, sigma_idx: usize) -> Vec<bool> {
    let Some(rel) = engine.rels.get(&relation) else {
        return Vec::new();
    };
    let mut dead = vec![false; rel.deps.len()];
    for (j, d) in rel.deps.iter().enumerate() {
        dead[j] = match &d.prov {
            Prov::Given(k) => *k == sigma_idx,
            Prov::Prefix { dep, .. } | Prov::FullLocality { dep, .. } => dead[*dep],
            Prov::Resolve {
                target, supplier, ..
            } => dead[*target] || dead[*supplier],
            // Premises are closure facts replayed on demand, not pool
            // indices: not traceable here (the lower-bound caveat).
            Prov::Singleton { .. } => false,
        };
    }
    dead
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emptyset::EmptySetPolicy;
    use crate::nfd::parse_set;
    use nfd_model::Schema;

    fn two_relation_setup() -> (Schema, Vec<Nfd>) {
        let schema = Schema::parse(
            "R : { <A: {<B: {<C: int>}, E: {<F: int, G: int>}>}, D: int> };
             S : { <P: int, Q: int, T: int> };",
        )
        .unwrap();
        let sigma = parse_set(
            &schema,
            "S:[P -> Q];
             R:[A:B:C, D -> A:E:F];
             S:[Q -> T];
             R:A:[B -> E:G];",
        )
        .unwrap();
        (schema, sigma)
    }

    fn assert_bit_identical(maintained: &Engine<'_>, schema: &Schema, sigma: &[Nfd]) {
        let fresh = Engine::with_policy(schema, sigma, maintained.policy().clone()).unwrap();
        assert_eq!(maintained.sigma, fresh.sigma, "Σ must match");
        assert_eq!(
            maintained.pool_dump(),
            fresh.pool_dump(),
            "maintained pool must be bit-identical to a from-scratch build"
        );
        maintained.check_invariants().unwrap();
    }

    #[test]
    fn add_dep_matches_fresh_build() {
        let (schema, sigma) = two_relation_setup();
        let mut engine = Engine::new(&schema, &sigma[..3]).unwrap();
        let report = engine.add_dep(&sigma[3]).unwrap();
        assert_eq!(report.relation, Label::new("R"));
        assert_eq!(report.overdeleted, 0);
        assert!(report.pool_after > report.pool_before);
        assert_bit_identical(&engine, &schema, &sigma);
    }

    #[test]
    fn remove_dep_matches_fresh_build_and_relabels_givens() {
        let (schema, sigma) = two_relation_setup();
        let mut engine = Engine::new(&schema, &sigma).unwrap();
        // Remove an R dependency sitting *between* the two S givens in Σ
        // order, so S's `Given` indices must be relabelled.
        let report = engine.remove_dep(&sigma[1]).unwrap();
        assert_eq!(report.relation, Label::new("R"));
        let remaining: Vec<Nfd> = sigma
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 1)
            .map(|(_, n)| n.clone())
            .collect();
        assert_bit_identical(&engine, &schema, &remaining);
    }

    #[test]
    fn remove_then_add_round_trips_modulo_sigma_order() {
        let (schema, sigma) = two_relation_setup();
        let mut engine = Engine::new(&schema, &sigma).unwrap();
        engine.remove_dep(&sigma[2]).unwrap();
        engine.add_dep(&sigma[2]).unwrap();
        // Σ[2] moved to the tail, so compare against a fresh build over
        // the reordered Σ (pool contents depend on per-relation given
        // order, which for S changed).
        let reordered = vec![
            sigma[0].clone(),
            sigma[1].clone(),
            sigma[3].clone(),
            sigma[2].clone(),
        ];
        assert_bit_identical(&engine, &schema, &reordered);
    }

    #[test]
    fn remove_missing_dep_is_an_error_and_leaves_engine_unchanged() {
        let (schema, sigma) = two_relation_setup();
        let mut engine = Engine::new(&schema, &sigma[..2]).unwrap();
        let before = engine.pool_dump();
        let err = engine.remove_dep(&sigma[2]).unwrap_err();
        assert!(matches!(err, CoreError::Nav(_)));
        assert_eq!(engine.pool_dump(), before);
        assert_eq!(engine.sigma.len(), 2);
    }

    #[test]
    fn retraction_impact_counts_supported_entries() {
        let (schema, sigma) = two_relation_setup();
        let engine = Engine::new(&schema, &sigma).unwrap();
        // R:[A:B:C, D -> A:E:F] seeds the whole worked-example derivation
        // chain, so its impact must cover more than itself.
        let impact = engine.retraction_impact(&sigma[1]).unwrap();
        assert!(impact >= 1, "the given's own pool entry is supported");
        let mut engine = engine;
        let report = engine.remove_dep(&sigma[1]).unwrap();
        assert_eq!(report.overdeleted, impact);
        assert!(
            report.pool_after <= report.pool_before,
            "retraction cannot grow the pool"
        );
    }

    #[test]
    fn mutation_under_annotated_policy_matches_fresh_build() {
        let (schema, sigma) = two_relation_setup();
        let policy = EmptySetPolicy::pessimistic();
        let mut engine = Engine::with_policy(&schema, &sigma[..3], policy).unwrap();
        engine.add_dep(&sigma[3]).unwrap();
        assert_bit_identical(&engine, &schema, &sigma);
        engine.remove_dep(&sigma[0]).unwrap();
        let remaining: Vec<Nfd> = sigma[1..].to_vec();
        assert_bit_identical(&engine, &schema, &remaining);
    }
}
