//! Satisfaction of NFDs (`I ⊨ f`, Definition 2.4).
//!
//! The semantics implemented here is the Section 2.2 logic translation,
//! which the paper presents as the precise meaning of an NFD:
//!
//! * the *interior* of the base path `x0` is walked with one shared choice
//!   per label (`for_each_base_nav`);
//! * the pair `v1, v2` ranges over the final set of each walk;
//! * below each element, component paths are evaluated by *trie-consistent
//!   assignments*: one element choice per shared prefix — Definition 2.4's
//!   coincidence condition;
//! * universal quantification over an empty set is vacuous, which realizes
//!   the paper's "trivially true" clause for undefined `xi(v)`.
//!
//! Instead of materializing all `(v1, a1) × (v2, a2)` pairs, the checker
//! groups assignments by their LHS tuple: the NFD holds iff no LHS tuple is
//! associated with two distinct RHS values within one base navigation.
//! This is equivalent (the pair condition is symmetric over the same
//! collection of assignments) and linear in the number of assignments.

use crate::error::CoreError;
use crate::nfd::Nfd;
use nfd_model::{Instance, Schema, Value};
use nfd_path::nav::{for_each_assignment, for_each_base_nav};
use nfd_path::PathTrie;
use std::collections::HashMap;
use std::fmt;

/// The outcome of checking one NFD on one instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SatisfyReport {
    /// Does the instance satisfy the NFD?
    pub holds: bool,
    /// A witness for a violation, if any.
    pub violation: Option<Violation>,
    /// Number of (navigation, assignment) pairs examined — a work measure
    /// used by the benches.
    pub assignments_checked: usize,
}

/// A concrete violation witness: one LHS tuple observed with two distinct
/// RHS values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The agreeing LHS values, in the order of [`Nfd::lhs`].
    pub lhs_values: Vec<Value>,
    /// The two conflicting RHS values.
    pub rhs_values: (Value, Value),
    /// The interior base-path navigation at which the conflict was found:
    /// the element chosen at each interior label of `x0` (empty for
    /// global NFDs, whose base is a bare relation name). Identifies
    /// *where* a local dependency broke.
    pub context: Vec<Value>,
}

impl Violation {
    /// Constructs a witness without navigation context (global NFDs).
    pub fn new(lhs_values: Vec<Value>, rhs_values: (Value, Value)) -> Violation {
        Violation {
            lhs_values,
            rhs_values,
            context: Vec::new(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("LHS (")?;
        for (i, v) in self.lhs_values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(
            f,
            ") maps to both {} and {}",
            self.rhs_values.0, self.rhs_values.1
        )?;
        if !self.context.is_empty() {
            f.write_str(" (within ")?;
            for (i, c) in self.context.iter().enumerate() {
                if i > 0 {
                    f.write_str(" / ")?;
                }
                // Identify the navigation element by its scalar fields
                // only — the set-valued payload would drown the message.
                match c.as_record() {
                    Some(rec) => {
                        f.write_str("<")?;
                        let mut first = true;
                        for (l, v) in rec.fields() {
                            if matches!(v, Value::Base(_)) {
                                if !first {
                                    f.write_str(", ")?;
                                }
                                write!(f, "{l}: {v}")?;
                                first = false;
                            }
                        }
                        f.write_str(if first { "…>" } else { ", …>" })?;
                    }
                    None => write!(f, "{c}")?,
                }
            }
            f.write_str(")")?;
        }
        Ok(())
    }
}

/// Checks `I ⊨ f`. The NFD is validated against `schema` first.
pub fn check(schema: &Schema, instance: &Instance, nfd: &Nfd) -> Result<SatisfyReport, CoreError> {
    nfd.validate(schema)?;

    let trie = PathTrie::new(nfd.component_paths().cloned());
    let lhs_idx: Vec<usize> = nfd
        .lhs()
        .iter()
        .map(|p| {
            trie.target_index(p)
                .ok_or_else(|| CoreError::Nav(format!("LHS path `{p}` missing from path trie")))
        })
        .collect::<Result<_, _>>()?;
    let rhs_idx = trie
        .target_index(&nfd.rhs)
        .ok_or_else(|| CoreError::Nav(format!("RHS path `{}` missing from path trie", nfd.rhs)))?;

    let mut violation: Option<Violation> = None;
    let mut assignments_checked = 0usize;
    let mut nav_err: Option<nfd_path::nav::NavError> = None;

    for_each_base_nav(instance, &nfd.base, |nav| {
        if violation.is_some() || nav_err.is_some() {
            return;
        }
        // One grouping table per interior navigation: v1 and v2 are drawn
        // from the same final set, under the same interior choices.
        let mut groups: HashMap<Vec<Value>, Value> = HashMap::new();
        for elem in nav.set.elems() {
            let Some(rec) = elem.as_record() else {
                nav_err = Some(nfd_path::nav::NavError::NotARecord(nfd.base.to_string()));
                return;
            };
            let res = for_each_assignment(rec, &trie, |a| {
                if violation.is_some() {
                    return;
                }
                assignments_checked += 1;
                let key = a.project(&lhs_idx);
                let rhs = a.value(rhs_idx);
                match groups.get(&key) {
                    None => {
                        groups.insert(key, rhs.clone());
                    }
                    Some(existing) if existing == rhs => {}
                    Some(existing) => {
                        violation = Some(Violation {
                            lhs_values: key,
                            rhs_values: (existing.clone(), rhs.clone()),
                            context: nav
                                .choices
                                .iter()
                                .map(|r| Value::Record((*r).clone()))
                                .collect(),
                        });
                    }
                }
            });
            if let Err(e) = res {
                nav_err = Some(e);
                return;
            }
        }
    })?;

    if let Some(e) = nav_err {
        return Err(e.into());
    }
    Ok(SatisfyReport {
        holds: violation.is_none(),
        violation,
        assignments_checked,
    })
}

/// Checks a whole set of NFDs; returns the first violated one (with its
/// witness) or `None` if all hold.
pub fn check_all<'a>(
    schema: &Schema,
    instance: &Instance,
    nfds: &'a [Nfd],
) -> Result<Option<(&'a Nfd, Violation)>, CoreError> {
    for nfd in nfds {
        let report = check(schema, instance, nfd)?;
        if let Some(v) = report.violation {
            return Ok(Some((nfd, v)));
        }
    }
    Ok(None)
}

/// Convenience wrapper: does the instance satisfy every NFD in `nfds`?
pub fn satisfies_all(
    schema: &Schema,
    instance: &Instance,
    nfds: &[Nfd],
) -> Result<bool, CoreError> {
    Ok(check_all(schema, instance, nfds)?.is_none())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn course() -> (Schema, Instance) {
        let schema = Schema::parse(
            "Course : { <cnum: string, time: int,
                         students: {<sid: int, age: int, grade: string>},
                         books: {<isbn: string, title: string>}> };",
        )
        .unwrap();
        let inst = Instance::parse(
            &schema,
            r#"Course = {
                <cnum: "cis550", time: 10,
                 students: {<sid: 1001, age: 20, grade: "A">,
                            <sid: 2002, age: 22, grade: "B">},
                 books: {<isbn: "0-13", title: "DB Systems">}>,
                <cnum: "cis500", time: 12,
                 students: {<sid: 1001, age: 20, grade: "C">},
                 books: {<isbn: "0-13", title: "DB Systems">,
                         <isbn: "0-14", title: "Found. of DB">}> };"#,
        )
        .unwrap();
        (schema, inst)
    }

    #[test]
    fn examples_21_to_25_hold() {
        let (s, i) = course();
        for text in [
            "Course:[cnum -> time]",
            "Course:[cnum -> students]",
            "Course:[cnum -> books]",
            "Course:[books:isbn -> books:title]",
            "Course:students:[sid -> grade]",
            "Course:[students:sid -> students:age]",
            "Course:[time, students:sid -> cnum]",
        ] {
            let nfd = Nfd::parse(&s, text).unwrap();
            let r = check(&s, &i, &nfd).unwrap();
            assert!(r.holds, "{text} should hold");
        }
    }

    #[test]
    fn local_grade_dependency_allows_cross_course_difference() {
        // Student 1001 has grade A in cis550 and C in cis500: fine locally…
        let (s, i) = course();
        let local = Nfd::parse(&s, "Course:students:[sid -> grade]").unwrap();
        assert!(check(&s, &i, &local).unwrap().holds);
        // …but the global version is violated.
        let global = Nfd::parse(&s, "Course:[students:sid -> students:grade]").unwrap();
        let r = check(&s, &i, &global).unwrap();
        assert!(!r.holds);
        let v = r.violation.unwrap();
        assert_eq!(v.lhs_values, vec![Value::int(1001)]);
        let mut grades = [v.rhs_values.0.clone(), v.rhs_values.1.clone()];
        grades.sort();
        assert_eq!(grades, [Value::str("A"), Value::str("C")]);
    }

    #[test]
    fn isbn_title_violation_detected() {
        let (s, _) = course();
        let i = Instance::parse(
            &s,
            r#"Course = {
                <cnum: "a", time: 1, students: {<sid: 1, age: 1, grade: "A">},
                 books: {<isbn: "X", title: "T1">}>,
                <cnum: "b", time: 2, students: {<sid: 1, age: 1, grade: "A">},
                 books: {<isbn: "X", title: "T2">}> };"#,
        )
        .unwrap();
        let nfd = Nfd::parse(&s, "Course:[books:isbn -> books:title]").unwrap();
        let r = check(&s, &i, &nfd).unwrap();
        assert!(!r.holds);
        assert!(r.violation.unwrap().to_string().contains("maps to both"));
    }

    /// Figure 1 of the paper: the instance violates R:[B:C → E:F].
    #[test]
    fn figure_1_violation() {
        let schema =
            Schema::parse("R : { <A: int, B: {<C: int, D: int>}, E: {<F: int, G: int>}> };")
                .unwrap();
        let inst = Instance::parse(
            &schema,
            "R = { <A: 1, B: {<C: 1, D: 3>}, E: {<F: 5, G: 6>, <F: 5, G: 7>}>,
                   <A: 2, B: {<C: 2, D: 2>, <C: 1, D: 3>}, E: {<F: 3, G: 4>, <F: 4, G: 4>}> };",
        )
        .unwrap();
        let nfd = Nfd::parse(&schema, "R:[B:C -> E:F]").unwrap();
        let r = check(&schema, &inst, &nfd).unwrap();
        assert!(!r.holds, "Figure 1's instance violates R:[B:C → E:F]");
        // Two independent reasons, per the paper's discussion: the second
        // tuple alone has two F values for one C value, and C=1 appears in
        // both tuples with different F values. The witness reports one.
        assert!(r.violation.is_some());
    }

    /// First row of Figure 1 alone satisfies the NFD ("If we only consider
    /// the first line in the table, the NFD is satisfied").
    #[test]
    fn figure_1_first_row_alone_satisfies() {
        let schema =
            Schema::parse("R : { <A: int, B: {<C: int, D: int>}, E: {<F: int, G: int>}> };")
                .unwrap();
        let inst = Instance::parse(
            &schema,
            "R = { <A: 1, B: {<C: 1, D: 3>}, E: {<F: 5, G: 6>, <F: 5, G: 7>}> };",
        )
        .unwrap();
        let nfd = Nfd::parse(&schema, "R:[B:C -> E:F]").unwrap();
        assert!(check(&schema, &inst, &nfd).unwrap().holds);
    }

    /// The "unintuitive" reading of R:[B:C → E:F]: all F values must agree
    /// within a tuple whenever B is non-empty.
    #[test]
    fn unintuitive_within_tuple_consequence() {
        let schema =
            Schema::parse("R : { <A: int, B: {<C: int, D: int>}, E: {<F: int, G: int>}> };")
                .unwrap();
        // One tuple, one C value, two F values: violated.
        let inst = Instance::parse(
            &schema,
            "R = { <A: 1, B: {<C: 1, D: 1>}, E: {<F: 1, G: 1>, <F: 2, G: 2>}> };",
        )
        .unwrap();
        let nfd = Nfd::parse(&schema, "R:[B:C -> E:F]").unwrap();
        assert!(!check(&schema, &inst, &nfd).unwrap().holds);
        // Same shape but B empty: vacuously satisfied.
        let inst2 = Instance::parse(
            &schema,
            "R = { <A: 1, B: {}, E: {<F: 1, G: 1>, <F: 2, G: 2>}> };",
        )
        .unwrap();
        assert!(check(&schema, &inst2, &nfd).unwrap().holds);
    }

    /// Example 3.2's instance: satisfies A→B:C and B:C→D but not A→D.
    #[test]
    fn example_3_2_transitivity_failure() {
        let schema = Schema::parse("R : { <A: int, B: {<C: int>}, D: int, E: int> };").unwrap();
        let inst = Instance::parse(
            &schema,
            "R = { <A: 1, B: {}, D: 2, E: 3>,
                   <A: 1, B: {}, D: 3, E: 4>,
                   <A: 2, B: {<C: 3>}, D: 4, E: 5> };",
        )
        .unwrap();
        let holds = |t: &str| {
            check(&schema, &inst, &Nfd::parse(&schema, t).unwrap())
                .unwrap()
                .holds
        };
        assert!(holds("R:[A -> B:C]"));
        assert!(holds("R:[B:C -> D]"));
        assert!(!holds("R:[A -> D]"));
        // And the prefix-rule counterpart from Section 3.2:
        assert!(holds("R:[B:C -> E]"));
        assert!(!holds("R:[B -> E]"));
    }

    /// NFDs of form x0:[x1:x2 → x1] force equal-or-disjoint x1 sets.
    #[test]
    fn equal_or_disjoint_sets_property() {
        let schema = Schema::parse("R : { <A: {<B: int>}, D: int> };").unwrap();
        let nfd = Nfd::parse(&schema, "R:[A:B -> A]").unwrap();
        // Overlapping but unequal A sets: violated.
        let bad = Instance::parse(
            &schema,
            "R = { <A: {<B: 1>, <B: 2>}, D: 1>, <A: {<B: 2>, <B: 3>}, D: 2> };",
        )
        .unwrap();
        assert!(!check(&schema, &bad, &nfd).unwrap().holds);
        // Disjoint sets: fine.
        let good = Instance::parse(
            &schema,
            "R = { <A: {<B: 1>}, D: 1>, <A: {<B: 2>, <B: 3>}, D: 2> };",
        )
        .unwrap();
        assert!(check(&schema, &good, &nfd).unwrap().holds);
        // Equal sets: fine.
        let eq = Instance::parse(
            &schema,
            "R = { <A: {<B: 1>, <B: 2>}, D: 1>, <A: {<B: 1>, <B: 2>}, D: 2> };",
        )
        .unwrap();
        assert!(check(&schema, &eq, &nfd).unwrap().holds);
    }

    /// Singleton forcing: R:[D→A:B] and R:[D→A:C] make A a singleton (the
    /// Section 2.1 observation); a two-element A violates one of them.
    #[test]
    fn singleton_forcing_observation() {
        let schema = Schema::parse("R : { <A: {<B: int, C: int>}, D: int> };").unwrap();
        let f1 = Nfd::parse(&schema, "R:[D -> A:B]").unwrap();
        let f2 = Nfd::parse(&schema, "R:[D -> A:C]").unwrap();
        let two =
            Instance::parse(&schema, "R = { <A: {<B: 1, C: 1>, <B: 1, C: 2>}, D: 7> };").unwrap();
        assert!(check(&schema, &two, &f1).unwrap().holds);
        assert!(!check(&schema, &two, &f2).unwrap().holds);
        let single = Instance::parse(&schema, "R = { <A: {<B: 1, C: 1>}, D: 7> };").unwrap();
        assert!(check(&schema, &single, &f1).unwrap().holds);
        assert!(check(&schema, &single, &f2).unwrap().holds);
    }

    #[test]
    fn local_violation_reports_navigation_context() {
        let schema = Schema::parse("R : {<name: string, B: {<C: int, D: int>}>};").unwrap();
        let inst = Instance::parse(
            &schema,
            r#"R = { <name: "row1", B: {<C: 1, D: 1>}>,
                    <name: "row2", B: {<C: 1, D: 1>, <C: 1, D: 2>}> };"#,
        )
        .unwrap();
        let nfd = Nfd::parse(&schema, "R:B:[C -> D]").unwrap();
        let v = check(&schema, &inst, &nfd).unwrap().violation.unwrap();
        assert_eq!(v.context.len(), 1, "one interior navigation level");
        let shown = v.to_string();
        assert!(shown.contains("within"), "{shown}");
        assert!(
            shown.contains("row2"),
            "context identifies the tuple: {shown}"
        );
        assert!(!shown.contains("row1"), "{shown}");
        // Global NFDs carry no context.
        let g = Nfd::parse(&schema, "R:[B:C -> B:D]").unwrap();
        let v = check(&schema, &inst, &g).unwrap().violation.unwrap();
        assert!(v.context.is_empty());
    }

    #[test]
    fn constant_form() {
        let schema = Schema::parse("R : { <A: int> };").unwrap();
        let nfd = Nfd::parse(&schema, "R:[ -> A]").unwrap();
        let konst = Instance::parse(&schema, "R = { <A: 5>, <A: 5> };").unwrap();
        assert!(check(&schema, &konst, &nfd).unwrap().holds);
        let varying = Instance::parse(&schema, "R = { <A: 5>, <A: 6> };").unwrap();
        assert!(!check(&schema, &varying, &nfd).unwrap().holds);
    }

    #[test]
    fn check_all_reports_first_failure() {
        let (s, i) = course();
        let nfds = vec![
            Nfd::parse(&s, "Course:[cnum -> time]").unwrap(),
            Nfd::parse(&s, "Course:[students:sid -> students:grade]").unwrap(),
        ];
        let (failed, _) = check_all(&s, &i, &nfds).unwrap().unwrap();
        assert_eq!(failed, &nfds[1]);
        assert!(!satisfies_all(&s, &i, &nfds).unwrap());
        assert!(satisfies_all(&s, &i, &nfds[..1]).unwrap());
    }

    #[test]
    fn deep_base_path_local_check() {
        let schema = Schema::parse("R : {<A: {<B: {<C: int, D: int>}>}>};").unwrap();
        let nfd = Nfd::parse(&schema, "R:A:B:[C -> D]").unwrap();
        // Within a single B set, C determines D; two different B sets may
        // disagree.
        let ok = Instance::parse(
            &schema,
            "R = { <A: {<B: {<C: 1, D: 1>}>, <B: {<C: 1, D: 2>}>}> };",
        )
        .unwrap();
        assert!(check(&schema, &ok, &nfd).unwrap().holds);
        let bad =
            Instance::parse(&schema, "R = { <A: {<B: {<C: 1, D: 1>, <C: 1, D: 2>}>}> };").unwrap();
        assert!(!check(&schema, &bad, &nfd).unwrap().holds);
    }

    #[test]
    fn empty_relation_satisfies_everything() {
        let (s, _) = course();
        let i = Instance::parse(&s, "Course = {};").unwrap();
        let nfd = Nfd::parse(&s, "Course:[students:grade -> students:sid]").unwrap();
        let r = check(&s, &i, &nfd).unwrap();
        assert!(r.holds);
        assert_eq!(r.assignments_checked, 0);
    }
}
