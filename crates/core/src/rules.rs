//! The NFD-rules of Section 3.1, plus *full-locality* from the simple-form
//! system of Section 3.2.
//!
//! Each rule is a total function that checks its side conditions and either
//! produces the conclusion NFD or reports why it does not apply
//! ([`CoreError::Rule`]). The rules are purely syntactic; soundness over
//! instances without empty sets is Theorem 3.1 (and is property-tested in
//! this repository by evaluating premises and conclusions on random
//! instances).

use crate::error::CoreError;
use crate::nfd::Nfd;
use nfd_model::{Label, Schema};
use nfd_path::typing::{base_element_record, resolve_in_record};
use nfd_path::{Path, RootedPath};
use std::fmt;

/// Names of the inference rules, for proof display.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `x ∈ X ⟹ x0:[X → x]`.
    Reflexivity,
    /// `x0:[X → z] ⟹ x0:[X Y → z]`.
    Augmentation,
    /// `x0:[X → x1], …, x0:[X → xn], x0:[x1…xn → y] ⟹ x0:[X → y]`.
    Transitivity,
    /// `x0:y:[X → z] ⟹ x0:[y, y:X → y:z]`.
    PushIn,
    /// `x0:[y, y:X → y:z] ⟹ x0:y:[X → z]`.
    PullOut,
    /// `x0:[A:X, B1,…,Bk → A:z] ⟹ x0:A:[X → z]`.
    Locality,
    /// If `x0:[x → x:Ai]` for every attribute `Ai` of `x`'s element type,
    /// then `x0:[x:A1,…,x:An → x]`.
    Singleton,
    /// `x0:[x1:A, x2,…,xk → y]`, `x1` non-empty, `x1` not a prefix of `y`
    /// ⟹ `x0:[x1, x2,…,xk → y]`.
    Prefix,
    /// Simple-form combination of pull-out and locality (Section 3.2):
    /// `x0:[x:X, Y → x:z]`, `x` not a proper prefix of any `y ∈ Y`
    /// ⟹ `x0:[x, x:X → x:z]`.
    FullLocality,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Rule::Reflexivity => "reflexivity",
            Rule::Augmentation => "augmentation",
            Rule::Transitivity => "transitivity",
            Rule::PushIn => "push-in",
            Rule::PullOut => "pull-out",
            Rule::Locality => "locality",
            Rule::Singleton => "singleton",
            Rule::Prefix => "prefix",
            Rule::FullLocality => "full-locality",
        })
    }
}

fn rule_err(msg: impl Into<String>) -> CoreError {
    CoreError::Rule(msg.into())
}

/// **Reflexivity**: if `x ∈ X` then `x0:[X → x]`.
pub fn reflexivity(base: RootedPath, x_set: Vec<Path>, x: Path) -> Result<Nfd, CoreError> {
    if !x_set.contains(&x) {
        return Err(rule_err(format!(
            "reflexivity: `{x}` is not in the LHS set"
        )));
    }
    Nfd::new(base, x_set, x)
}

/// **Augmentation**: if `x0:[X → z]` then `x0:[X Y → z]`.
pub fn augmentation(
    premise: &Nfd,
    extra: impl IntoIterator<Item = Path>,
) -> Result<Nfd, CoreError> {
    Nfd::new(
        premise.base.clone(),
        premise.lhs().iter().cloned().chain(extra),
        premise.rhs.clone(),
    )
}

/// **Transitivity**: from `x0:[X → x1], …, x0:[X → xn]` and
/// `x0:[x1,…,xn → y]`, conclude `x0:[X → y]`.
///
/// Premises for `xi ∈ X` may be omitted (they are reflexivity instances);
/// each remaining LHS path of `middle` must be the RHS of some premise, and
/// all NFDs must share the base path and the premises the LHS `X`.
pub fn transitivity(premises: &[Nfd], middle: &Nfd) -> Result<Nfd, CoreError> {
    let Some(first) = premises.first() else {
        // No premises: middle's LHS must be within X = ∅, i.e. empty.
        if middle.lhs().is_empty() {
            return Ok(middle.clone());
        }
        return Err(rule_err("transitivity: no premises supplied"));
    };
    let base = &first.base;
    let x_set = first.lhs();
    for p in premises {
        if &p.base != base || p.lhs() != x_set {
            return Err(rule_err(format!(
                "transitivity: premise `{p}` does not share base and LHS with `{first}`"
            )));
        }
    }
    if &middle.base != base {
        return Err(rule_err(format!(
            "transitivity: middle `{middle}` has a different base than `{first}`"
        )));
    }
    for q in middle.lhs() {
        let justified = x_set.contains(q) || premises.iter().any(|p| &p.rhs == q);
        if !justified {
            return Err(rule_err(format!(
                "transitivity: middle LHS path `{q}` is not the RHS of any premise"
            )));
        }
    }
    Nfd::new(base.clone(), x_set.to_vec(), middle.rhs.clone())
}

/// **Push-in**: from `x0:y:[X → z]` conclude `x0:[y, y:X → y:z]`, where
/// `y` is the suffix of the premise's base path consisting of its last
/// `y_len` labels (`1 ≤ y_len ≤` base path length).
pub fn push_in(premise: &Nfd, y_len: usize) -> Result<Nfd, CoreError> {
    let inner = premise.base.path.labels();
    if y_len == 0 || y_len > inner.len() {
        return Err(rule_err(format!(
            "push-in: cannot move {y_len} labels of base `{}`",
            premise.base
        )));
    }
    let split = inner.len() - y_len;
    let new_base = RootedPath::new(
        premise.base.relation,
        Path::new(inner[..split].iter().copied()),
    );
    let y = Path::new(inner[split..].iter().copied());
    let mut lhs: Vec<Path> = vec![y.clone()];
    lhs.extend(premise.lhs().iter().map(|p| y.join(p)));
    Nfd::new(new_base, lhs, y.join(&premise.rhs))
}

/// **Pull-out**: from `x0:[y, y:X → y:z]` conclude `x0:y:[X → z]`.
///
/// Side conditions: `y` is in the LHS, every other LHS path and the RHS are
/// properly prefixed by `y`.
pub fn pull_out(premise: &Nfd, y: &Path) -> Result<Nfd, CoreError> {
    if y.is_empty() {
        return Err(rule_err("pull-out: y must be non-empty"));
    }
    if !premise.lhs().contains(y) {
        return Err(rule_err(format!(
            "pull-out: `{y}` is not in the LHS of `{premise}`"
        )));
    }
    let Some(z) = premise.rhs.strip_prefix(y) else {
        return Err(rule_err(format!(
            "pull-out: RHS `{}` is not prefixed by `{y}`",
            premise.rhs
        )));
    };
    if z.is_empty() {
        return Err(rule_err(
            "pull-out: RHS equals y, leaving an empty component",
        ));
    }
    let mut new_lhs = Vec::new();
    for p in premise.lhs() {
        if p == y {
            continue;
        }
        match p.strip_prefix(y) {
            Some(rest) if !rest.is_empty() => new_lhs.push(rest),
            _ => {
                return Err(rule_err(format!(
                    "pull-out: LHS path `{p}` is not of the form {y}:X"
                )))
            }
        }
    }
    Nfd::new(premise.base.join(y), new_lhs, z)
}

/// **Locality**: from `x0:[A:X, B1,…,Bk → A:z]` — where the `Bi` are single
/// labels — conclude `x0:A:[X → z]`.
pub fn locality(premise: &Nfd) -> Result<Nfd, CoreError> {
    let Some(a) = premise.rhs.first() else {
        return Err(rule_err("locality: RHS is empty"));
    };
    let z = premise.rhs.tail().expect("rhs non-empty");
    if z.is_empty() {
        return Err(rule_err(format!(
            "locality: RHS `{}` has no labels below `{a}`",
            premise.rhs
        )));
    }
    let mut x_set = Vec::new();
    for p in premise.lhs() {
        if p.first() == Some(a) {
            let rest = p.tail().expect("non-empty");
            if rest.is_empty() {
                return Err(rule_err(format!(
                    "locality: LHS path `{p}` equals the localized attribute `{a}`"
                )));
            }
            x_set.push(rest);
        } else if p.len() != 1 {
            return Err(rule_err(format!(
                "locality: LHS path `{p}` is neither under `{a}` nor a single label \
                 (use full-locality for this shape)"
            )));
        }
        // Single labels B1..Bk are simply dismissed.
    }
    Nfd::new(premise.base.child(a), x_set, z)
}

/// **Full-locality** (Section 3.2): from `x0:[x:X, Y → x:z]`, where `x` is
/// not a proper prefix of any `y ∈ Y`, conclude `x0:[x, x:X → x:z]`.
///
/// The split is canonical: `x:X` collects exactly the LHS paths properly
/// prefixed by `x`, so the side condition on `Y` holds by construction; the
/// caller chooses `x`, which must be a non-empty proper prefix of the RHS.
pub fn full_locality(premise: &Nfd, x: &Path) -> Result<Nfd, CoreError> {
    if x.is_empty() {
        return Err(rule_err("full-locality: x must be non-empty"));
    }
    if !x.is_proper_prefix_of(&premise.rhs) {
        return Err(rule_err(format!(
            "full-locality: `{x}` is not a proper prefix of the RHS `{}`",
            premise.rhs
        )));
    }
    let mut new_lhs = vec![x.clone()];
    new_lhs.extend(
        premise
            .lhs()
            .iter()
            .filter(|p| x.is_proper_prefix_of(p))
            .cloned(),
    );
    Nfd::new(premise.base.clone(), new_lhs, premise.rhs.clone())
}

/// **Singleton**: if `x0:[x → x:A1], …, x0:[x → x:An]` and the type of
/// `x` (relative to the base's element records) is `{<A1,…,An>}`, conclude
/// `x0:[x:A1,…,x:An → x]`.
///
/// `premises` must contain exactly the NFDs `x0:[x → x:Ai]`, one per
/// attribute of `x`'s element record.
pub fn singleton(schema: &Schema, premises: &[Nfd], x: &Path) -> Result<Nfd, CoreError> {
    let Some(first) = premises.first() else {
        return Err(rule_err("singleton: no premises supplied"));
    };
    let base = &first.base;
    let rec = base_element_record(schema, base)?;
    let x_ty = resolve_in_record(rec, x)?;
    let Some(elem) = x_ty.element_record() else {
        return Err(rule_err(format!(
            "singleton: `{x}` is not a set-of-records path"
        )));
    };
    let attrs: Vec<Label> = elem.labels().collect();
    if attrs.is_empty() {
        return Err(rule_err(format!("singleton: `{x}` has no attributes")));
    }
    for a in &attrs {
        let wanted_rhs = x.child(*a);
        let found = premises
            .iter()
            .any(|p| &p.base == base && p.lhs() == [x.clone()] && p.rhs == wanted_rhs);
        if !found {
            return Err(rule_err(format!(
                "singleton: missing premise {base}:[{x} -> {wanted_rhs}]"
            )));
        }
    }
    Nfd::new(base.clone(), attrs.iter().map(|a| x.child(*a)), x.clone())
}

/// **Prefix**: from `x0:[x1:A, x2,…,xk → y]`, where `x1` has at least one
/// label and is not a prefix of `y`, conclude `x0:[x1, x2,…,xk → y]`.
///
/// `which` selects the LHS path `x1:A` to shorten.
pub fn prefix(premise: &Nfd, which: &Path) -> Result<Nfd, CoreError> {
    if !premise.lhs().contains(which) {
        return Err(rule_err(format!(
            "prefix: `{which}` is not in the LHS of `{premise}`"
        )));
    }
    if which.len() < 2 {
        return Err(rule_err(format!(
            "prefix: `{which}` is a single label; x1 would be empty"
        )));
    }
    let x1 = which.parent().expect("len >= 2");
    if x1.is_prefix_of(&premise.rhs) {
        return Err(rule_err(format!(
            "prefix: `{x1}` is a prefix of the RHS `{}`",
            premise.rhs
        )));
    }
    let new_lhs: Vec<Path> = premise
        .lhs()
        .iter()
        .map(|p| if p == which { x1.clone() } else { p.clone() })
        .collect();
    Nfd::new(premise.base.clone(), new_lhs, premise.rhs.clone())
}

/// Enumerates every conclusion reachable from `premise` by **one**
/// application of a unary rule (prefix, locality, full-locality, push-in,
/// pull-out), tagged with the rule used. Useful for interactive
/// exploration ("what can I deduce from this in one step?") and for
/// exercising the rules exhaustively in tests.
///
/// Transitivity and singleton are not included: they need additional
/// premises (use the [`crate::engine::Engine`] for multi-premise search).
pub fn one_step_applications(premise: &Nfd) -> Vec<(Rule, Nfd)> {
    let mut out: Vec<(Rule, Nfd)> = Vec::new();
    let mut push = |rule: Rule, nfd: Nfd| {
        if !out.iter().any(|(r, n)| *r == rule && n == &nfd) {
            out.push((rule, nfd));
        }
    };
    for p in premise.lhs() {
        if let Ok(c) = prefix(premise, p) {
            push(Rule::Prefix, c);
        }
    }
    if let Ok(c) = locality(premise) {
        push(Rule::Locality, c);
    }
    for x in premise.rhs.prefixes() {
        if let Ok(c) = full_locality(premise, &x) {
            push(Rule::FullLocality, c);
        }
    }
    for k in 1..=premise.base.path.len() {
        if let Ok(c) = push_in(premise, k) {
            push(Rule::PushIn, c);
        }
    }
    for y in premise.lhs() {
        if let Ok(c) = pull_out(premise, y) {
            push(Rule::PullOut, c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        // The schema of the Section 3.1 worked example.
        Schema::parse("R : { <A: {<B: {<C: int>}, E: {<F: int, G: int>}>}, D: int> };").unwrap()
    }

    fn nfd(s: &Schema, t: &str) -> Nfd {
        Nfd::parse(s, t).unwrap()
    }

    #[test]
    fn reflexivity_requires_membership() {
        let s = schema();
        let base = RootedPath::parse("R").unwrap();
        let x = Path::parse("D").unwrap();
        let got = reflexivity(base.clone(), vec![x.clone()], x.clone()).unwrap();
        assert_eq!(got, nfd(&s, "R:[D -> D]"));
        assert!(reflexivity(base, vec![Path::parse("A").unwrap()], x).is_err());
    }

    #[test]
    fn augmentation_adds_paths() {
        let s = schema();
        let p = nfd(&s, "R:[D -> A]");
        let got = augmentation(&p, [Path::parse("A:B").unwrap()]).unwrap();
        assert_eq!(got, nfd(&s, "R:[D, A:B -> A]"));
    }

    #[test]
    fn transitivity_chains() {
        let s = schema();
        let p1 = nfd(&s, "R:[D -> A]");
        let middle = nfd(&s, "R:[A -> A:B]");
        let got = transitivity(&[p1], &middle).unwrap();
        assert_eq!(got, nfd(&s, "R:[D -> A:B]"));
    }

    #[test]
    fn transitivity_rejects_unjustified_middle() {
        let s = schema();
        let p1 = nfd(&s, "R:[D -> A]");
        let middle = nfd(&s, "R:[A, A:B -> A:E]");
        assert!(transitivity(&[p1], &middle).is_err());
    }

    #[test]
    fn transitivity_allows_reflexive_middle_paths() {
        let s = schema();
        // X = {D, A}; premise X→A:B; middle [A, A:B → A:E]. The A premise is
        // reflexivity and may be omitted.
        let p1 = nfd(&s, "R:[D, A -> A:B]");
        let middle = nfd(&s, "R:[A, A:B -> A:E]");
        let got = transitivity(&[p1], &middle).unwrap();
        assert_eq!(got, nfd(&s, "R:[D, A -> A:E]"));
    }

    #[test]
    fn push_in_and_pull_out_invert() {
        let s = schema();
        let local = nfd(&s, "R:A:[B -> E:G]");
        let pushed = push_in(&local, 1).unwrap();
        assert_eq!(pushed, nfd(&s, "R:[A, A:B -> A:E:G]"));
        let pulled = pull_out(&pushed, &Path::parse("A").unwrap()).unwrap();
        assert_eq!(pulled, local);
    }

    #[test]
    fn push_in_partial_split() {
        let s = Schema::parse("R : {<A: {<B: {<C: int, D: int>}>}>};").unwrap();
        let deep = nfd(&s, "R:A:B:[C -> D]");
        // Move only the last label (y = B), base stays R:A.
        let one = push_in(&deep, 1).unwrap();
        assert_eq!(one, nfd(&s, "R:A:[B, B:C -> B:D]"));
        // Move both labels (y = A:B), base becomes R.
        let two = push_in(&deep, 2).unwrap();
        assert_eq!(two, nfd(&s, "R:[A:B, A:B:C -> A:B:D]"));
        assert!(push_in(&deep, 3).is_err());
        assert!(push_in(&deep, 0).is_err());
    }

    #[test]
    fn pull_out_conditions() {
        let s = schema();
        // y not in LHS:
        assert!(pull_out(&nfd(&s, "R:[A:B -> A:E:F]"), &Path::parse("A").unwrap()).is_err());
        // non-y-prefixed LHS path:
        assert!(pull_out(&nfd(&s, "R:[A, D -> A:E:F]"), &Path::parse("A").unwrap()).is_err());
        // RHS not prefixed by y:
        assert!(pull_out(&nfd(&s, "R:[A, A:B -> D]"), &Path::parse("A").unwrap()).is_err());
    }

    #[test]
    fn locality_dismisses_record_siblings() {
        let s = schema();
        // Step 1 of the worked example: locality of nfd1.
        let nfd1 = nfd(&s, "R:[A:B:C, D -> A:E:F]");
        let got = locality(&nfd1).unwrap();
        assert_eq!(got, nfd(&s, "R:A:[B:C -> E:F]"));
    }

    #[test]
    fn locality_rejects_multi_label_outsiders() {
        // Example 3.1's point: locality cannot localize past A:B when the
        // LHS contains A:D (a multi-label path outside A:B's subtree is
        // fine at the A level, but at the A:B level A:D is neither under
        // A:B nor a single label).
        let s = Schema::parse("R : { <A: {<B: {<C: int, E: {<W: int>}>}, D: int>}> };").unwrap();
        let f1 = nfd(&s, "R:A:[B:C, D -> B:E:W]");
        // At base R:A, localize attribute B: LHS has D (single label, ok).
        let ok = locality(&f1).unwrap();
        assert_eq!(ok, nfd(&s, "R:A:B:[C -> E:W]"));
        // But from the fully pushed-in form, locality at A fails on A:D? No
        // — A:D is under A. Construct the failing shape directly:
        let f2 = nfd(&s, "R:[A:B:C, A:D -> A:B:E:W]");
        // locality at A succeeds (all paths under A):
        assert!(locality(&f2).is_ok());
        // full-locality at A:B gives the Example 3.1 conclusion:
        let fl = full_locality(&f2, &Path::parse("A:B").unwrap()).unwrap();
        assert_eq!(fl, nfd(&s, "R:[A:B, A:B:C -> A:B:E:W]"));
    }

    #[test]
    fn full_locality_drops_outside_paths() {
        let s = schema();
        let nfd1 = nfd(&s, "R:[A:B:C, D -> A:E:F]");
        let fl = full_locality(&nfd1, &Path::parse("A").unwrap()).unwrap();
        assert_eq!(fl, nfd(&s, "R:[A, A:B:C -> A:E:F]"));
        let fl2 = full_locality(&nfd1, &Path::parse("A:E").unwrap()).unwrap();
        assert_eq!(fl2, nfd(&s, "R:[A:E -> A:E:F]"));
        // x must properly prefix the RHS:
        assert!(full_locality(&nfd1, &Path::parse("A:B").unwrap()).is_err());
        assert!(full_locality(&nfd1, &Path::parse("A:E:F").unwrap()).is_err());
    }

    #[test]
    fn singleton_needs_all_attributes() {
        let s = schema();
        // Type of A:E is {<F, G>}.
        let pf = nfd(&s, "R:[A:E -> A:E:F]");
        let pg = nfd(&s, "R:[A:E -> A:E:G]");
        let x = Path::parse("A:E").unwrap();
        let got = singleton(&s, &[pf.clone(), pg], &x).unwrap();
        assert_eq!(got, nfd(&s, "R:[A:E:F, A:E:G -> A:E]"));
        assert!(singleton(&s, &[pf], &x).is_err());
    }

    #[test]
    fn singleton_rejects_non_set_paths() {
        let s = schema();
        let p = nfd(&s, "R:[D -> D]");
        assert!(singleton(&s, &[p], &Path::parse("D").unwrap()).is_err());
    }

    #[test]
    fn prefix_shortens_lhs_path() {
        let s = schema();
        // Step 2 of the worked example: prefix on R:A:[B:C → E:F].
        let p = nfd(&s, "R:A:[B:C -> E:F]");
        let got = prefix(&p, &Path::parse("B:C").unwrap()).unwrap();
        assert_eq!(got, nfd(&s, "R:A:[B -> E:F]"));
    }

    #[test]
    fn prefix_conditions() {
        let s = schema();
        // x1 must not be a prefix of the RHS:
        let p = nfd(&s, "R:[A:B -> A:E:F]");
        assert!(prefix(&p, &Path::parse("A:B").unwrap()).is_err());
        // single-label paths cannot be shortened:
        let q = nfd(&s, "R:[D -> A]");
        assert!(prefix(&q, &Path::parse("D").unwrap()).is_err());
        // the path must be in the LHS:
        assert!(prefix(&q, &Path::parse("A:B").unwrap()).is_err());
    }

    #[test]
    fn rule_names_display() {
        assert_eq!(Rule::FullLocality.to_string(), "full-locality");
        assert_eq!(Rule::PushIn.to_string(), "push-in");
    }

    #[test]
    fn one_step_enumeration_covers_each_unary_rule() {
        let s = schema();
        // nfd1 of the worked example admits prefix, locality and two
        // full-locality applications.
        let nfd1 = nfd(&s, "R:[A:B:C, D -> A:E:F]");
        let apps = one_step_applications(&nfd1);
        let has =
            |rule: Rule, text: &str| apps.iter().any(|(r, n)| *r == rule && n == &nfd(&s, text));
        assert!(has(Rule::Prefix, "R:[A:B, D -> A:E:F]"));
        assert!(has(Rule::Locality, "R:A:[B:C -> E:F]"));
        assert!(has(Rule::FullLocality, "R:[A, A:B:C -> A:E:F]"));
        assert!(has(Rule::FullLocality, "R:[A:E -> A:E:F]"));
        // A local NFD admits push-in; its simple form admits pull-out.
        let local = nfd(&s, "R:A:[B -> E:G]");
        let apps = one_step_applications(&local);
        assert!(apps.iter().any(|(r, _)| *r == Rule::PushIn));
        let simple = crate::simple::to_simple(&local);
        let apps = one_step_applications(&simple);
        assert!(apps.iter().any(|(r, n)| *r == Rule::PullOut && n == &local));
    }

    #[test]
    fn one_step_enumeration_is_sound_by_construction() {
        // Every enumerated conclusion replays through its named rule — by
        // re-deriving it with the specific rule functions over all
        // parameter choices, mirroring the proof verifier's replay.
        let s = schema();
        for text in [
            "R:[A:B:C, D -> A:E:F]",
            "R:A:[B -> E:G]",
            "R:[A, A:B, A:B:C -> A:E:G]",
            "R:[D -> A]",
        ] {
            let premise = nfd(&s, text);
            for (rule, conclusion) in one_step_applications(&premise) {
                let replayed = match rule {
                    Rule::Prefix => premise
                        .lhs()
                        .iter()
                        .any(|p| prefix(&premise, p).is_ok_and(|c| c == conclusion)),
                    Rule::Locality => locality(&premise).is_ok_and(|c| c == conclusion),
                    Rule::FullLocality => premise
                        .rhs
                        .prefixes()
                        .any(|x| full_locality(&premise, &x).is_ok_and(|c| c == conclusion)),
                    Rule::PushIn => (1..=premise.base.path.len())
                        .any(|k| push_in(&premise, k).is_ok_and(|c| c == conclusion)),
                    Rule::PullOut => premise
                        .lhs()
                        .iter()
                        .any(|y| pull_out(&premise, y).is_ok_and(|c| c == conclusion)),
                    other => panic!("unexpected rule {other} in one-step enumeration"),
                };
                assert!(replayed, "{rule} conclusion {conclusion} does not replay");
            }
        }
    }
}
