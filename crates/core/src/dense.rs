//! Tier 2 — the dense-closure specialization for hot relations.
//!
//! When a relation is queried repeatedly (or the CLI forces
//! `--engine dense`), the engine promotes it: every gate-free unary
//! dependency in the saturated pool is folded into a precomputed,
//! transitively-closed *reach row* per interned path, so that the bulk of
//! a steady-state closure query is a handful of bitset word unions
//! instead of a fixpoint over the pool. The few entries that cannot be
//! folded — non-unary LHS sets or entries with a non-empty `need_x`
//! modified-transitivity gate — survive as a small *residual* list and
//! run as an ordinary fixpoint on top of the rows.
//!
//! **Exactness.** Let `C(X)` be the least fixpoint the kernels compute.
//! Subsumed entries are skipped, which is sound for the same reason the
//! tier-0 scan may skip them: every subsumed entry is transitively
//! subsumed by an active same-RHS entry with a smaller LHS, and `need_x`
//! is monotone in the LHS, so the active entry fires whenever the
//! subsumed one could. Splitting the active pool into a folded part `U`
//! (unary, gate-free) and a residual part `R` preserves the fixpoint
//! because the query loop closes over both: the seed `X ∪ ⋃_{x∈X}
//! reach[x]` is exactly the `U`-closure of `X` (rows are transitively
//! closed and include their source), and each residual firing re-unions
//! the fired path's row, restoring `U`-closedness before the next pass.
//! The result is a set closed under every active entry and contained in
//! any such closed set — the unique least fixpoint, bit-identical to
//! tiers 0 and 1 (the `tier_differential` suite enforces this).
//!
//! Dense rows answer *set* queries only; they never produce the
//! per-dependency `fired` provenance maps, so proofs and `chain_dump`
//! always run the counting kernel regardless of tier.
//!
//! **Cost.** A build materializes up to `n²` bitset cells for a table of
//! `n` paths. That cost is charged to the engine's
//! [`Budget`](nfd_govern::Budget) as
//! [`ResourceKind::DenseCells`](nfd_govern::ResourceKind) *before* any
//! allocation, and the row loop polls `check_live` so a promotion cannot
//! blow a deadline the govern layer promised.

use crate::engine::CDep;
use crate::error::CoreError;
use nfd_govern::{Budget, ResourceKind};
use nfd_path::table::{PathId, PathSet, PathTable};

/// One pool entry that could not be folded into the reach rows: a
/// non-unary LHS, or a non-empty `need_x` gate.
#[derive(Clone, Debug)]
struct Residual {
    lhs: PathSet,
    rhs: PathId,
    need_x: PathSet,
}

/// A promoted relation's precomputed closure structure: one
/// transitively-closed reach row per interned path, plus the residual
/// entries that still need a (small) fixpoint at query time.
#[derive(Clone, Debug)]
pub struct DenseClosure {
    words: usize,
    reach: Vec<PathSet>,
    residual: Vec<Residual>,
}

impl DenseClosure {
    /// Builds the dense structure for one relation from its saturated
    /// pool, charging `table.len()²` cells to `budget` up front.
    ///
    /// Fails with [`ResourceKind::DenseCells`] exhaustion when the table
    /// is too large for the configured cell budget, or with a liveness
    /// error (deadline/cancellation) raised by the periodic
    /// `check_live` poll; on failure nothing is cached and the caller
    /// decides whether to fall back (auto promotion) or surface the
    /// error (forced `--engine dense`).
    pub fn build(
        table: &PathTable,
        deps: &[CDep],
        budget: &Budget,
    ) -> Result<DenseClosure, CoreError> {
        let n = table.len();
        let cells = (n as u64).saturating_mul(n as u64);
        budget.check_counter(ResourceKind::DenseCells, cells)?;

        let words = table.words();
        // Partition the active pool: gate-free unary entries become
        // adjacency edges (folded into rows below); everything else is
        // residual and replays at query time.
        let mut succ: Vec<PathSet> = vec![PathSet::empty(words); n];
        let mut residual = Vec::new();
        for d in deps {
            if d.subsumed {
                continue;
            }
            if d.lhs.len() == 1 && d.need_x.is_empty() {
                if let Some(src) = d.lhs.iter().next() {
                    succ[src as usize].insert(d.rhs);
                }
            } else {
                residual.push(Residual {
                    lhs: d.lhs.clone(),
                    rhs: d.rhs,
                    need_x: d.need_x.clone(),
                });
            }
        }

        // One reflexive-transitive reach row per source. Worklist walk
        // per row; rows are independent, so liveness is polled on a
        // stride rather than per edge.
        let mut reach: Vec<PathSet> = Vec::with_capacity(n);
        let mut stack: Vec<PathId> = Vec::new();
        for p in 0..n {
            if p % 64 == 0 {
                budget.check_live()?;
            }
            let mut row = PathSet::empty(words);
            row.insert(p as PathId);
            stack.push(p as PathId);
            while let Some(q) = stack.pop() {
                for r in succ[q as usize].iter() {
                    if row.insert(r) {
                        stack.push(r);
                    }
                }
            }
            reach.push(row);
        }

        Ok(DenseClosure {
            words,
            reach,
            residual,
        })
    }

    /// The closure `C(X)` of the attribute set `x` — bit-identical to
    /// the tier-0/1 kernels (see the module docs for the argument).
    ///
    /// The folded part is pure word unions: seed with `X` and the reach
    /// row of every member. The residual part is an ordinary pass-scan
    /// fixpoint whose firings re-union reach rows to stay `U`-closed.
    pub fn closure(&self, x: &[PathId]) -> PathSet {
        let x_set = PathSet::from_ids(self.words, x.iter().copied());
        let mut c = x_set.clone();
        for id in &mut x.iter().copied() {
            if (id as usize) < self.reach.len() {
                c.union_with(&self.reach[id as usize]);
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for d in &self.residual {
                if c.contains(d.rhs) {
                    continue;
                }
                if !d.lhs.is_subset(&c) {
                    continue;
                }
                if !d.need_x.is_subset(&x_set) {
                    continue;
                }
                c.insert(d.rhs);
                if (d.rhs as usize) < self.reach.len() {
                    c.union_with(&self.reach[d.rhs as usize]);
                }
                changed = true;
            }
        }
        c
    }

    /// Interned paths covered by the reach rows (the table size at
    /// build time).
    pub fn paths(&self) -> usize {
        self.reach.len()
    }

    /// Pool entries that stayed residual (not folded into rows).
    pub fn residual_deps(&self) -> usize {
        self.residual.len()
    }
}
