//! Derivation proofs.
//!
//! A positive implication answer from the [`crate::engine::Engine`]
//! can be replayed as a numbered derivation over the paper's rules, in the
//! style of the Section 3.1 worked example:
//!
//! ```text
//!  1. R:[A:B:C, D -> A:E:F]          given (σ1)
//!  2. R:[A:B, D -> A:E:F]            prefix of (1)
//!  3. R:[A:E -> A:E:F]               full-locality of (2) at A:E
//!  …
//! ```
//!
//! Every proof produced by [`prove`] passes the independent checker
//! [`verify`], which re-applies the cited rule to the cited premises and
//! demands the recorded conclusion — so proofs are certificates, not logs.

use crate::engine::{Engine, Prov, RelEngine};
use crate::error::CoreError;
use crate::nfd::Nfd;
use crate::rules::{self, Rule};
use crate::simple;
use nfd_model::Label;
use nfd_path::Path;
use std::collections::HashMap;
use std::fmt;

/// How a proof step is justified.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Justification {
    /// The `i`-th NFD of Σ, verbatim.
    Given(usize),
    /// An instance of reflexivity (RHS ∈ LHS).
    Reflexivity,
    /// Application of `rule` to the steps with the given indices.
    Rule {
        /// The rule applied.
        rule: Rule,
        /// Indices (into [`Proof::steps`]) of the premises.
        premises: Vec<usize>,
    },
}

/// One step of a derivation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProofStep {
    /// The derived NFD (in simple form, except `Given` steps which carry
    /// the original Σ entry).
    pub conclusion: Nfd,
    /// Why it holds.
    pub justification: Justification,
}

/// A derivation of a goal NFD from Σ.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Proof {
    /// The steps, in dependency order; the last step concludes the goal
    /// (up to push-in/pull-out normalization).
    pub steps: Vec<ProofStep>,
    /// The goal as posed.
    pub goal: Nfd,
}

impl fmt::Display for Proof {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Proof of {}:", self.goal)?;
        let width = self
            .steps
            .iter()
            .map(|s| s.conclusion.to_string().len())
            .max()
            .unwrap_or(0);
        for (i, step) in self.steps.iter().enumerate() {
            write!(f, "{:>3}. {:<width$}  ", i + 1, step.conclusion.to_string())?;
            match &step.justification {
                Justification::Given(k) => writeln!(f, "given (σ{})", k + 1)?,
                Justification::Reflexivity => writeln!(f, "reflexivity")?,
                Justification::Rule { rule, premises } => {
                    write!(f, "{rule} of (")?;
                    for (j, p) in premises.iter().enumerate() {
                        if j > 0 {
                            f.write_str(", ")?;
                        }
                        write!(f, "{}", p + 1)?;
                    }
                    writeln!(f, ")")?;
                }
            }
        }
        Ok(())
    }
}

struct Builder<'e, 's> {
    engine: &'e Engine<'s>,
    rel: &'e RelEngine,
    relation: Label,
    steps: Vec<ProofStep>,
    by_conclusion: HashMap<Nfd, usize>,
    dep_steps: HashMap<usize, usize>,
}

impl<'e, 's> Builder<'e, 's> {
    fn push(&mut self, conclusion: Nfd, justification: Justification) -> usize {
        if let Some(&i) = self.by_conclusion.get(&conclusion) {
            return i;
        }
        let i = self.steps.len();
        self.by_conclusion.insert(conclusion.clone(), i);
        self.steps.push(ProofStep {
            conclusion,
            justification,
        });
        i
    }

    fn path(&self, id: u32) -> Path {
        self.rel.table.path(id).clone()
    }

    fn base(&self) -> nfd_path::RootedPath {
        nfd_path::RootedPath::relation_only(self.relation)
    }

    fn nfd_of(&self, lhs: &[u32], rhs: u32) -> Nfd {
        Nfd::new(
            self.base(),
            lhs.iter().map(|&p| self.path(p)),
            self.path(rhs),
        )
        .expect("pool paths are non-empty")
    }

    /// A step proving pool dependency `di` as an NFD.
    fn dep_step(&mut self, di: usize) -> Result<usize, CoreError> {
        if let Some(&s) = self.dep_steps.get(&di) {
            return Ok(s);
        }
        let dep = self.rel.deps[di].clone();
        let conclusion = self.nfd_of(&dep.lhs.to_vec(), dep.rhs);
        let step = match dep.prov {
            Prov::Given(i) => {
                let original = self.engine.sigma[i].clone();
                let mut step = self.push(original.clone(), Justification::Given(i));
                // Normalize with one push-in step per base label, exactly
                // as `simple::to_simple` does, so each step replays as a
                // single rule application.
                let mut cur = original;
                while !simple::is_simple(&cur) {
                    cur = rules::push_in(&cur, 1).expect("one-label push-in always applies");
                    step = self.push(
                        cur.clone(),
                        Justification::Rule {
                            rule: Rule::PushIn,
                            premises: vec![step],
                        },
                    );
                }
                step
            }
            Prov::Prefix { dep: p, .. } => {
                let prem = self.dep_step(p)?;
                self.push(
                    conclusion.clone(),
                    Justification::Rule {
                        rule: Rule::Prefix,
                        premises: vec![prem],
                    },
                )
            }
            Prov::FullLocality { dep: p, .. } => {
                let prem = self.dep_step(p)?;
                self.push(
                    conclusion.clone(),
                    Justification::Rule {
                        rule: Rule::FullLocality,
                        premises: vec![prem],
                    },
                )
            }
            Prov::Resolve {
                target, supplier, ..
            } => {
                let t = self.dep_step(target)?;
                let s = self.dep_step(supplier)?;
                // Resolution is transitivity over the combined LHS: the
                // supplier's conclusion is first augmented to the full LHS.
                let aug = augment_to(&self.steps[s].conclusion, &conclusion);
                let s_aug = if aug == self.steps[s].conclusion {
                    s
                } else {
                    self.push(
                        aug,
                        Justification::Rule {
                            rule: Rule::Augmentation,
                            premises: vec![s],
                        },
                    )
                };
                self.push(
                    conclusion.clone(),
                    Justification::Rule {
                        rule: Rule::Transitivity,
                        premises: vec![s_aug, t],
                    },
                )
            }
            Prov::Singleton { x } => {
                // Premises: [x → x:Ai] for every attribute, provable from
                // pool entries with index < di.
                let _ = x;
                let elem_attrs: Vec<u32> = dep.lhs.to_vec();
                let mut premises = Vec::new();
                for &attr in &elem_attrs {
                    let s = self.fact_bounded(&[x], attr, di)?;
                    premises.push(s);
                }
                self.push(
                    conclusion.clone(),
                    Justification::Rule {
                        rule: Rule::Singleton,
                        premises,
                    },
                )
            }
        };
        self.dep_steps.insert(di, step);
        Ok(step)
    }

    /// A step proving `[X → p]`, chaining over pool entries `< max`.
    fn fact_bounded(&mut self, x: &[u32], p: u32, max: usize) -> Result<usize, CoreError> {
        let goal = self.nfd_of(x, p);
        if let Some(&i) = self.by_conclusion.get(&goal) {
            return Ok(i);
        }
        if x.contains(&p) {
            return Ok(self.push(goal, Justification::Reflexivity));
        }
        let mut fired = HashMap::new();
        let reached = self.rel.chain_bounded(x, Some(&mut fired), max);
        if !reached.contains(p) {
            return Err(CoreError::Rule(format!(
                "internal: fact {goal} not derivable during proof reconstruction"
            )));
        }
        self.fact_from_fired(x, p, &fired)
    }

    fn fact_from_fired(
        &mut self,
        x: &[u32],
        p: u32,
        fired: &HashMap<u32, usize>,
    ) -> Result<usize, CoreError> {
        let goal = self.nfd_of(x, p);
        if let Some(&i) = self.by_conclusion.get(&goal) {
            return Ok(i);
        }
        if x.contains(&p) {
            return Ok(self.push(goal, Justification::Reflexivity));
        }
        let di = *fired.get(&p).ok_or_else(|| {
            CoreError::Rule(format!(
                "internal: no pool entry recorded for {goal} during proof reconstruction"
            ))
        })?;
        let dep = self.rel.deps[di].clone();
        let mut premises = Vec::new();
        for q in dep.lhs.iter() {
            premises.push(self.fact_from_fired(x, q, fired)?);
        }
        let middle = self.dep_step(di)?;
        if premises.is_empty() {
            // A constant-form dependency ([∅ → p]): the fact [X → p]
            // follows by augmentation, not transitivity (there is no
            // premise carrying the LHS X).
            return Ok(self.push(
                goal,
                Justification::Rule {
                    rule: Rule::Augmentation,
                    premises: vec![middle],
                },
            ));
        }
        premises.push(middle);
        Ok(self.push(
            goal,
            Justification::Rule {
                rule: Rule::Transitivity,
                premises,
            },
        ))
    }
}

/// Augments `nfd`'s LHS up to `target`'s LHS (a superset).
fn augment_to(nfd: &Nfd, target: &Nfd) -> Nfd {
    rules::augmentation(nfd, target.lhs().iter().cloned())
        .expect("augmentation is total on valid NFDs")
}

/// Produces a derivation of `goal` from the engine's Σ, or `None` when the
/// implication does not hold.
pub fn prove(engine: &Engine<'_>, goal: &Nfd) -> Result<Option<Proof>, CoreError> {
    let (relation, x, rhs) = engine.normalize_goal(goal)?;
    let rel = engine.rel(relation)?;
    let mut fired = HashMap::new();
    let reached = rel.chain(&x, Some(&mut fired));
    if !x.contains(&rhs) && !reached.contains(rhs) {
        return Ok(None);
    }
    let mut b = Builder {
        engine,
        rel,
        relation,
        steps: Vec::new(),
        by_conclusion: HashMap::new(),
        dep_steps: HashMap::new(),
    };
    let mut last = b.fact_from_fired(&x, rhs, &fired)?;
    // If the goal was posed in local form, close with pull-out steps
    // (one per base label, mirroring `simple::localize`).
    if &b.steps[last].conclusion != goal {
        let mut cur = b.steps[last].conclusion.clone();
        while &cur != goal {
            let candidate = cur
                .lhs()
                .iter()
                .filter(|y| {
                    y.is_proper_prefix_of(&cur.rhs)
                        && cur
                            .lhs()
                            .iter()
                            .all(|p| p == *y || y.is_proper_prefix_of(p))
                })
                .min_by_key(|y| y.len())
                .cloned();
            let Some(y) = candidate else {
                break; // goal not a pure re-localization; leave as-is
            };
            cur = rules::pull_out(&cur, &y).expect("candidate satisfies pull-out conditions");
            last = b.push(
                cur.clone(),
                Justification::Rule {
                    rule: Rule::PullOut,
                    premises: vec![last],
                },
            );
        }
    }
    Ok(Some(prune(Proof {
        steps: b.steps,
        goal: goal.clone(),
    })))
}

/// Removes steps not reachable from the final step (speculative premises
/// that a later dedup made redundant), renumbering the rest.
fn prune(proof: Proof) -> Proof {
    let n = proof.steps.len();
    if n == 0 {
        return proof;
    }
    let mut keep = vec![false; n];
    let mut stack = vec![n - 1];
    while let Some(i) = stack.pop() {
        if keep[i] {
            continue;
        }
        keep[i] = true;
        if let Justification::Rule { premises, .. } = &proof.steps[i].justification {
            stack.extend(premises.iter().copied());
        }
    }
    let mut remap = vec![usize::MAX; n];
    let mut steps = Vec::with_capacity(keep.iter().filter(|&&k| k).count());
    for (i, step) in proof.steps.into_iter().enumerate() {
        if !keep[i] {
            continue;
        }
        remap[i] = steps.len();
        let justification = match step.justification {
            Justification::Rule { rule, premises } => Justification::Rule {
                rule,
                premises: premises.into_iter().map(|p| remap[p]).collect(),
            },
            other => other,
        };
        steps.push(ProofStep {
            conclusion: step.conclusion,
            justification,
        });
    }
    Proof {
        steps,
        goal: proof.goal,
    }
}

/// Independently verifies a proof: every step must be a correct application
/// of its cited rule to its cited premises, and the final step must
/// conclude the proof's goal (up to push-in/pull-out equivalence).
pub fn verify(engine: &Engine<'_>, proof: &Proof) -> Result<(), CoreError> {
    let schema = engine.schema();
    for (i, step) in proof.steps.iter().enumerate() {
        step.conclusion.validate(schema)?;
        let fail = |why: String| {
            Err(CoreError::Rule(format!(
                "proof step {} ({}) invalid: {why}",
                i + 1,
                step.conclusion
            )))
        };
        match &step.justification {
            Justification::Given(k) => {
                if engine.sigma.get(*k) != Some(&step.conclusion) {
                    return fail(format!("σ{} does not match", k + 1));
                }
            }
            Justification::Reflexivity => {
                if !step.conclusion.is_trivial() {
                    return fail("RHS is not among the LHS paths".into());
                }
            }
            Justification::Rule { rule, premises } => {
                for &p in premises {
                    if p >= i {
                        return fail(format!("premise ({}) is not an earlier step", p + 1));
                    }
                }
                let prems: Vec<&Nfd> = premises
                    .iter()
                    .map(|&p| &proof.steps[p].conclusion)
                    .collect();
                if !replays(schema, *rule, &prems, &step.conclusion) {
                    return fail(format!("{rule} does not yield this conclusion"));
                }
            }
        }
    }
    let Some(last) = proof.steps.last() else {
        return Err(CoreError::Rule("empty proof".into()));
    };
    if last.conclusion != proof.goal && !simple::equivalent_form(&last.conclusion, &proof.goal) {
        return Err(CoreError::Rule(format!(
            "final step concludes {} rather than the goal {}",
            last.conclusion, proof.goal
        )));
    }
    Ok(())
}

/// Does applying `rule` to `premises` yield `conclusion`?
fn replays(schema: &nfd_model::Schema, rule: Rule, premises: &[&Nfd], conclusion: &Nfd) -> bool {
    match rule {
        Rule::Reflexivity => conclusion.is_trivial(),
        Rule::Augmentation => {
            premises.len() == 1
                && rules::augmentation(premises[0], conclusion.lhs().iter().cloned())
                    .is_ok_and(|n| &n == conclusion)
        }
        Rule::Transitivity => {
            // Try each premise as the middle dependency.
            premises.iter().enumerate().any(|(m, middle)| {
                let others: Vec<Nfd> = premises
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != m)
                    .map(|(_, n)| (*n).clone())
                    .collect();
                if others.is_empty() {
                    return rules::transitivity(&[], middle).is_ok_and(|n| &n == conclusion);
                }
                rules::transitivity(&others, middle).is_ok_and(|n| &n == conclusion)
            })
        }
        Rule::PushIn => {
            premises.len() == 1
                && (1..=premises[0].base.path.len())
                    .any(|k| rules::push_in(premises[0], k).is_ok_and(|n| &n == conclusion))
        }
        Rule::PullOut => {
            premises.len() == 1
                && premises[0]
                    .lhs()
                    .iter()
                    .any(|y| rules::pull_out(premises[0], y).is_ok_and(|n| &n == conclusion))
        }
        Rule::Locality => {
            premises.len() == 1 && rules::locality(premises[0]).is_ok_and(|n| &n == conclusion)
        }
        Rule::FullLocality => {
            premises.len() == 1
                && premises[0]
                    .rhs
                    .prefixes()
                    .any(|x| rules::full_locality(premises[0], &x).is_ok_and(|n| &n == conclusion))
        }
        Rule::Singleton => {
            let x = &conclusion.rhs;
            let prems: Vec<Nfd> = premises.iter().map(|n| (*n).clone()).collect();
            rules::singleton(schema, &prems, x).is_ok_and(|n| &n == conclusion)
        }
        Rule::Prefix => {
            premises.len() == 1
                && premises[0]
                    .lhs()
                    .iter()
                    .any(|p| rules::prefix(premises[0], p).is_ok_and(|n| &n == conclusion))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfd::parse_set;
    use nfd_model::Schema;

    fn worked() -> (Schema, Vec<Nfd>) {
        let schema =
            Schema::parse("R : { <A: {<B: {<C: int>}, E: {<F: int, G: int>}>}, D: int> };")
                .unwrap();
        let sigma = parse_set(&schema, "R:[A:B:C, D -> A:E:F]; R:A:[B -> E:G];").unwrap();
        (schema, sigma)
    }

    #[test]
    fn worked_example_proof_exists_and_verifies() {
        let (schema, sigma) = worked();
        let engine = Engine::new(&schema, &sigma).unwrap();
        let goal = Nfd::parse(&schema, "R:A:[B -> E]").unwrap();
        let proof = prove(&engine, &goal).unwrap().expect("implication holds");
        verify(&engine, &proof).unwrap();
        let shown = proof.to_string();
        assert!(shown.contains("given (σ1)"), "{shown}");
        assert!(shown.contains("singleton"), "{shown}");
        assert!(shown.contains("transitivity"), "{shown}");
    }

    #[test]
    fn non_implication_yields_no_proof() {
        let (schema, sigma) = worked();
        let engine = Engine::new(&schema, &sigma).unwrap();
        let goal = Nfd::parse(&schema, "R:[D -> A]").unwrap();
        assert!(prove(&engine, &goal).unwrap().is_none());
    }

    #[test]
    fn trivial_goal_proof() {
        let (schema, sigma) = worked();
        let engine = Engine::new(&schema, &sigma).unwrap();
        let goal = Nfd::parse(&schema, "R:[D -> D]").unwrap();
        let proof = prove(&engine, &goal).unwrap().unwrap();
        verify(&engine, &proof).unwrap();
        assert!(matches!(
            proof.steps[0].justification,
            Justification::Reflexivity
        ));
    }

    #[test]
    fn every_intermediate_step_has_verifiable_proof() {
        let (schema, sigma) = worked();
        let engine = Engine::new(&schema, &sigma).unwrap();
        for step in [
            "R:A:[B:C -> E:F]",
            "R:A:[B -> E:F]",
            "R:A:E:[ -> F]",
            "R:A:[E -> E:F]",
            "R:A:E:[ -> G]",
            "R:A:[E -> E:G]",
            "R:A:[E:F, E:G -> E]",
            "R:A:[B -> E]",
        ] {
            let goal = Nfd::parse(&schema, step).unwrap();
            let proof = prove(&engine, &goal)
                .unwrap()
                .unwrap_or_else(|| panic!("{step} should have a proof"));
            verify(&engine, &proof).unwrap_or_else(|e| panic!("{step}: {e}"));
        }
    }

    #[test]
    fn tampered_proof_rejected() {
        let (schema, sigma) = worked();
        let engine = Engine::new(&schema, &sigma).unwrap();
        let goal = Nfd::parse(&schema, "R:A:[B -> E:F]").unwrap();
        let mut proof = prove(&engine, &goal).unwrap().unwrap();
        // Corrupt the final conclusion.
        let n = proof.steps.len();
        proof.steps[n - 1].conclusion = Nfd::parse(&schema, "R:[D -> A]").unwrap();
        assert!(verify(&engine, &proof).is_err());
    }

    #[test]
    fn forward_premise_reference_rejected() {
        let (schema, sigma) = worked();
        let engine = Engine::new(&schema, &sigma).unwrap();
        let bogus = Proof {
            steps: vec![ProofStep {
                conclusion: sigma[0].clone(),
                justification: Justification::Rule {
                    rule: Rule::Prefix,
                    premises: vec![0], // cites itself
                },
            }],
            goal: sigma[0].clone(),
        };
        assert!(verify(&engine, &bogus).is_err());
    }
}
