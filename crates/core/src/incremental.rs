//! Incremental constraint maintenance.
//!
//! The paper's motivation includes avoiding "expensive checking as the
//! new database is created and **later updated**". A [`ConstraintIndex`]
//! makes the update half concrete: it maintains, per NFD, the grouping
//! tables the satisfaction checker builds — LHS tuple → (RHS value,
//! multiplicity) — so that inserting or removing a tuple of the relation
//! costs only that tuple's own assignments instead of a full recheck.
//!
//! Key structural fact that makes this work: in simple form every NFD is
//! based at the relation, so one grouping table per NFD spans all tuples,
//! and a new tuple contributes exactly its own trie-consistent
//! assignments. Local constraints scope themselves inside that table
//! because their simple-form LHS contains the base-prefix *set values*:
//! two assignments share a group only when those sets are equal — and
//! equal sets contain identical elements, so no false conflicts arise.
//! The table is a multiset (value + multiplicity), so removals decrement
//! and insertion is two-phase (validate everything, then commit).

use crate::error::CoreError;
use crate::nfd::Nfd;
use crate::satisfy::Violation;
use nfd_model::{Instance, RecordValue, Schema, Value};
use nfd_path::nav::for_each_assignment;
use nfd_path::table::{PathId, PathSet, PathTable};
use nfd_path::PathTrie;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Grouping state for one NFD.
struct NfdIndex {
    nfd: Nfd,
    trie: PathTrie,
    lhs_idx: Vec<usize>,
    rhs_idx: usize,
    /// LHS tuple → (RHS value, multiplicity). In simple form every NFD is
    /// based at the relation, so one table per NFD spans all tuples;
    /// local constraints scope themselves because their LHS contains the
    /// base-prefix set values (equal sets ⇒ identical elements).
    groups: HashMap<Vec<Value>, (Value, usize)>,
}

/// An incremental checker for a fixed set of NFDs over one relation.
///
/// ```
/// use nfd_core::incremental::ConstraintIndex;
/// use nfd_core::nfd::parse_set;
/// use nfd_model::{Schema, Instance, Value};
///
/// let schema = Schema::parse("R : {<k: int, v: int>};").unwrap();
/// let sigma = parse_set(&schema, "R:[k -> v];").unwrap();
/// let empty = Instance::parse(&schema, "R = {};").unwrap();
/// let mut index = ConstraintIndex::build(&schema, &empty, &sigma).unwrap();
///
/// let t1 = Value::record_of(vec![("k", Value::int(1)), ("v", Value::int(10))]);
/// let t2 = Value::record_of(vec![("k", Value::int(1)), ("v", Value::int(99))]);
/// let (r1, r2) = (t1.as_record().unwrap(), t2.as_record().unwrap());
/// assert!(index.insert(r1).unwrap().is_none());      // accepted
/// assert!(index.insert(r2).unwrap().is_some());      // k=1 already maps to 10
/// ```
pub struct ConstraintIndex {
    relation: nfd_model::Label,
    /// The relation's compiled path table, shared by all per-NFD state.
    /// Simple forms are interned against it at build time, which lets
    /// syntactically different NFDs with the same compiled `(LHS, RHS)`
    /// share one grouping table instead of maintaining duplicates.
    table: Arc<PathTable>,
    indexes: Vec<NfdIndex>,
    tuples: usize,
}

impl ConstraintIndex {
    /// Builds the index over an existing instance. All NFDs must be over
    /// the same relation, and the instance must already satisfy them
    /// (otherwise an error describing the pre-existing violation is
    /// returned).
    pub fn build(
        schema: &Schema,
        instance: &Instance,
        sigma: &[Nfd],
    ) -> Result<ConstraintIndex, CoreError> {
        let Some(first) = sigma.first() else {
            return Err(CoreError::Rule(
                "ConstraintIndex needs at least one NFD".into(),
            ));
        };
        let relation = first.base.relation;
        let table = Arc::new(
            PathTable::for_relation(schema, relation).map_err(|e| CoreError::Nav(e.to_string()))?,
        );
        let mut compiled_seen: HashSet<(PathSet, PathId)> = HashSet::new();
        let mut indexes = Vec::with_capacity(sigma.len());
        for nfd in sigma {
            nfd.validate(schema)?;
            if nfd.base.relation != relation {
                return Err(CoreError::WrongRelation {
                    expected: relation.to_string(),
                    found: nfd.base.relation.to_string(),
                });
            }
            let simple = crate::simple::to_simple(nfd);
            // Intern the simple form against the shared table. Two NFDs
            // whose simple forms compile to the same (LHS set, RHS id) —
            // e.g. a local constraint and its pushed-out global spelling —
            // have identical satisfaction semantics, so the second one can
            // reuse the first one's grouping table.
            let lhs_ids = simple
                .lhs()
                .iter()
                .map(|p| table.id_of(p).expect("validated simple-form path"));
            let compiled_lhs = PathSet::from_ids(table.words(), lhs_ids);
            let compiled_rhs = table
                .id_of(&simple.rhs)
                .expect("validated simple-form path");
            if !compiled_seen.insert((compiled_lhs, compiled_rhs)) {
                continue;
            }
            let trie = PathTrie::new(simple.component_paths().cloned());
            let lhs_idx = simple
                .lhs()
                .iter()
                .map(|p| trie.target_index(p).expect("lhs inserted"))
                .collect();
            let rhs_idx = trie.target_index(&simple.rhs).expect("rhs inserted");
            indexes.push(NfdIndex {
                nfd: nfd.clone(),
                trie,
                lhs_idx,
                rhs_idx,
                groups: HashMap::new(),
            });
        }
        let mut index = ConstraintIndex {
            relation,
            table,
            indexes,
            tuples: 0,
        };
        for elem in instance
            .relation(relation)
            .map_err(|e| CoreError::Nav(e.to_string()))?
            .elems()
        {
            let rec = elem
                .as_record()
                .ok_or_else(|| CoreError::Nav("relation elements must be records".into()))?;
            if let Some(v) = index.insert(rec)? {
                return Err(CoreError::Nav(format!(
                    "instance violates {} before indexing: {v}",
                    index
                        .indexes
                        .iter()
                        .map(|i| i.nfd.to_string())
                        .collect::<Vec<_>>()
                        .join("; ")
                )));
            }
        }
        Ok(index)
    }

    /// The relation this index maintains.
    pub fn relation(&self) -> nfd_model::Label {
        self.relation
    }

    /// The relation's compiled path table the index was built against.
    pub fn table(&self) -> &Arc<PathTable> {
        &self.table
    }

    /// Number of *distinct* compiled dependencies maintained. Smaller than
    /// `sigma.len()` when two NFDs compile to the same simple form.
    pub fn distinct_deps(&self) -> usize {
        self.indexes.len()
    }

    /// Number of tuples currently accounted for.
    pub fn len(&self) -> usize {
        self.tuples
    }

    /// Is the indexed relation empty?
    pub fn is_empty(&self) -> bool {
        self.tuples == 0
    }

    /// Attempts to insert a tuple. On conflict, returns the violation and
    /// leaves the index unchanged; on success the tuple's assignments are
    /// recorded and `None` is returned.
    pub fn insert(&mut self, tuple: &RecordValue) -> Result<Option<Violation>, CoreError> {
        // Two-phase: validate against every NFD first, then commit, so a
        // rejected tuple leaves no partial state.
        let mut staged: Vec<Vec<(Vec<Value>, Value)>> = Vec::with_capacity(self.indexes.len());
        for idx in &self.indexes {
            let mut entries = Vec::new();
            let mut conflict: Option<Violation> = None;
            // Within-tuple consistency: the same LHS key must not map to
            // two RHS values even inside this tuple's own assignments.
            let mut local: HashMap<Vec<Value>, Value> = HashMap::new();
            for_each_assignment(tuple, &idx.trie, |a| {
                if conflict.is_some() {
                    return;
                }
                let key = a.project(&idx.lhs_idx);
                let rhs = a.value(idx.rhs_idx).clone();
                if let Some((existing, _)) = idx.groups.get(&key) {
                    if *existing != rhs {
                        conflict =
                            Some(Violation::new(key.clone(), (existing.clone(), rhs.clone())));
                        return;
                    }
                }
                match local.get(&key) {
                    Some(existing) if *existing != rhs => {
                        conflict =
                            Some(Violation::new(key.clone(), (existing.clone(), rhs.clone())));
                        return;
                    }
                    _ => {
                        local.insert(key.clone(), rhs.clone());
                    }
                }
                entries.push((key, rhs));
            })?;
            if let Some(v) = conflict {
                return Ok(Some(v));
            }
            staged.push(entries);
        }
        for (idx, entries) in self.indexes.iter_mut().zip(staged) {
            for (key, rhs) in entries {
                idx.groups
                    .entry(key)
                    .and_modify(|(_, n)| *n += 1)
                    .or_insert((rhs, 1));
            }
        }
        self.tuples += 1;
        Ok(None)
    }

    /// Removes a previously inserted tuple, decrementing its assignment
    /// multiplicities. The caller is responsible for only removing tuples
    /// that were inserted (removing an unknown tuple is reported).
    pub fn remove(&mut self, tuple: &RecordValue) -> Result<(), CoreError> {
        // Gather all entries first (validation), then commit.
        let mut staged: Vec<Vec<Vec<Value>>> = Vec::with_capacity(self.indexes.len());
        for idx in &self.indexes {
            let mut keys = Vec::new();
            let mut missing = false;
            for_each_assignment(tuple, &idx.trie, |a| {
                let key = a.project(&idx.lhs_idx);
                if !idx.groups.contains_key(&key) {
                    missing = true;
                }
                keys.push(key);
            })?;
            if missing {
                return Err(CoreError::Nav(
                    "removing a tuple that was never inserted".into(),
                ));
            }
            staged.push(keys);
        }
        for (idx, keys) in self.indexes.iter_mut().zip(staged) {
            for key in keys {
                if let Some((_, n)) = idx.groups.get_mut(&key) {
                    *n -= 1;
                    if *n == 0 {
                        idx.groups.remove(&key);
                    }
                }
            }
        }
        self.tuples = self.tuples.saturating_sub(1);
        Ok(())
    }

    /// Total number of grouping entries across all NFDs (a size measure).
    pub fn group_entries(&self) -> usize {
        self.indexes.iter().map(|i| i.groups.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfd::parse_set;
    use crate::satisfy;
    use nfd_model::gen::{GenConfig, Generator};
    use nfd_model::{Label, Type};

    fn course() -> (Schema, Vec<Nfd>) {
        let schema = Schema::parse(
            "Course : { <cnum: string, time: int,
                         students: {<sid: int, age: int, grade: string>}> };",
        )
        .unwrap();
        let sigma = parse_set(
            &schema,
            "Course:[cnum -> time];
             Course:students:[sid -> grade];
             Course:[students:sid -> students:age];",
        )
        .unwrap();
        (schema, sigma)
    }

    fn tuple(schema: &Schema, text: &str) -> RecordValue {
        let inst = Instance::parse(schema, &format!("Course = {{ {text} }};")).unwrap();
        inst.relation(Label::new("Course")).unwrap().elems()[0]
            .as_record()
            .unwrap()
            .clone()
    }

    #[test]
    fn accepts_consistent_insertions() {
        let (schema, sigma) = course();
        let empty = Instance::parse(&schema, "Course = {};").unwrap();
        let mut index = ConstraintIndex::build(&schema, &empty, &sigma).unwrap();
        let t1 = tuple(
            &schema,
            r#"<cnum: "a", time: 1, students: {<sid: 1, age: 20, grade: "A">}>"#,
        );
        let t2 = tuple(
            &schema,
            r#"<cnum: "b", time: 2, students: {<sid: 1, age: 20, grade: "B">}>"#,
        );
        assert!(index.insert(&t1).unwrap().is_none());
        assert!(index.insert(&t2).unwrap().is_none());
        assert_eq!(index.len(), 2);
    }

    #[test]
    fn rejects_cross_tuple_conflicts() {
        let (schema, sigma) = course();
        let empty = Instance::parse(&schema, "Course = {};").unwrap();
        let mut index = ConstraintIndex::build(&schema, &empty, &sigma).unwrap();
        let t1 = tuple(
            &schema,
            r#"<cnum: "a", time: 1, students: {<sid: 1, age: 20, grade: "A">}>"#,
        );
        assert!(index.insert(&t1).unwrap().is_none());
        // Same cnum, different time → violates the key constraint.
        let t2 = tuple(
            &schema,
            r#"<cnum: "a", time: 9, students: {<sid: 2, age: 21, grade: "A">}>"#,
        );
        let v = index.insert(&t2).unwrap().expect("conflict expected");
        assert!(v.to_string().contains("maps to both"));
        // Rejected insert left no state: a retry with consistent time works.
        let t3 = tuple(
            &schema,
            r#"<cnum: "a", time: 1, students: {<sid: 2, age: 21, grade: "A">}>"#,
        );
        assert!(index.insert(&t3).unwrap().is_none());
        assert_eq!(index.len(), 2);
    }

    #[test]
    fn rejects_global_age_drift_but_allows_local_grade_change() {
        let (schema, sigma) = course();
        let empty = Instance::parse(&schema, "Course = {};").unwrap();
        let mut index = ConstraintIndex::build(&schema, &empty, &sigma).unwrap();
        let t1 = tuple(
            &schema,
            r#"<cnum: "a", time: 1, students: {<sid: 1, age: 20, grade: "A">}>"#,
        );
        assert!(index.insert(&t1).unwrap().is_none());
        // Different grade in a different course: allowed (local NFD).
        let t2 = tuple(
            &schema,
            r#"<cnum: "b", time: 2, students: {<sid: 1, age: 20, grade: "C">}>"#,
        );
        assert!(index.insert(&t2).unwrap().is_none());
        // Different AGE anywhere: rejected (global NFD).
        let t3 = tuple(
            &schema,
            r#"<cnum: "c", time: 3, students: {<sid: 1, age: 25, grade: "A">}>"#,
        );
        assert!(index.insert(&t3).unwrap().is_some());
    }

    #[test]
    fn rejects_within_tuple_conflicts() {
        let (schema, sigma) = course();
        let empty = Instance::parse(&schema, "Course = {};").unwrap();
        let mut index = ConstraintIndex::build(&schema, &empty, &sigma).unwrap();
        // One tuple with an internal sid → grade conflict.
        let bad = tuple(
            &schema,
            r#"<cnum: "a", time: 1,
                students: {<sid: 1, age: 20, grade: "A">, <sid: 1, age: 20, grade: "B">}>"#,
        );
        assert!(index.insert(&bad).unwrap().is_some());
        assert_eq!(index.len(), 0);
    }

    #[test]
    fn remove_reopens_the_group() {
        let (schema, sigma) = course();
        let empty = Instance::parse(&schema, "Course = {};").unwrap();
        let mut index = ConstraintIndex::build(&schema, &empty, &sigma).unwrap();
        let t1 = tuple(
            &schema,
            r#"<cnum: "a", time: 1, students: {<sid: 1, age: 20, grade: "A">}>"#,
        );
        let t2_conflicting = tuple(
            &schema,
            r#"<cnum: "a", time: 9, students: {<sid: 9, age: 30, grade: "A">}>"#,
        );
        assert!(index.insert(&t1).unwrap().is_none());
        assert!(index.insert(&t2_conflicting).unwrap().is_some());
        index.remove(&t1).unwrap();
        assert_eq!(index.len(), 0);
        // With t1 gone, the previously conflicting tuple is fine.
        assert!(index.insert(&t2_conflicting).unwrap().is_none());
        // Removing an unknown tuple is an error.
        assert!(index.remove(&t1).is_err());
    }

    /// A local constraint and its pushed-out global spelling compile to
    /// the same `(LHS set, RHS id)` over the shared table, so the index
    /// maintains one grouping table for the pair, not two.
    #[test]
    fn identical_simple_forms_share_one_grouping_table() {
        let (schema, _) = course();
        let sigma = parse_set(
            &schema,
            "Course:students:[sid -> grade];
             Course:[students, students:sid -> students:grade];",
        )
        .unwrap();
        let empty = Instance::parse(&schema, "Course = {};").unwrap();
        let mut index = ConstraintIndex::build(&schema, &empty, &sigma).unwrap();
        assert_eq!(index.distinct_deps(), 1, "duplicate simple forms collapse");
        assert_eq!(index.table().relation(), Label::new("Course"));
        // The collapsed index still enforces the constraint.
        let t1 = tuple(
            &schema,
            r#"<cnum: "a", time: 1, students: {<sid: 1, age: 20, grade: "A">,
                                               <sid: 1, age: 20, grade: "B">}>"#,
        );
        assert!(index.insert(&t1).unwrap().is_some());
    }

    #[test]
    fn build_rejects_preexisting_violation() {
        let (schema, sigma) = course();
        let bad = Instance::parse(
            &schema,
            r#"Course = { <cnum: "a", time: 1, students: {<sid: 1, age: 1, grade: "A">}>,
                          <cnum: "a", time: 2, students: {<sid: 2, age: 2, grade: "A">}> };"#,
        )
        .unwrap();
        assert!(ConstraintIndex::build(&schema, &bad, &sigma).is_err());
    }

    /// Differential test: a random insertion sequence through the index
    /// must agree, at every step, with a from-scratch recheck of the
    /// accumulated instance.
    #[test]
    fn agrees_with_full_recheck_on_random_streams() {
        let (schema, sigma) = course();
        let rec_ty = schema
            .relation_type(Label::new("Course"))
            .unwrap()
            .element_record()
            .unwrap()
            .clone();
        for seed in 0..40u64 {
            let mut g = Generator::new(
                seed,
                GenConfig {
                    min_set: 1,
                    max_set: 2,
                    empty_prob: 0.0,
                    domain: 3,
                },
            );
            let empty = Instance::parse(&schema, "Course = {};").unwrap();
            let mut index = ConstraintIndex::build(&schema, &empty, &sigma).unwrap();
            let mut accepted: Vec<Value> = Vec::new();
            for _ in 0..12 {
                let candidate = g.value(&Type::Record(rec_ty.clone()));
                let rec = candidate.as_record().unwrap().clone();
                // Ground truth: does the accumulated instance + candidate
                // satisfy Σ?
                let mut with = accepted.clone();
                with.push(candidate.clone());
                let trial =
                    Instance::new(&schema, vec![(Label::new("Course"), Value::set(with))]).unwrap();
                let ground_truth = satisfy::satisfies_all(&schema, &trial, &sigma).unwrap();
                let incremental = index.insert(&rec).unwrap().is_none();
                // Subtlety: set semantics — a candidate identical to an
                // accepted tuple changes nothing and always "satisfies";
                // the index counts it as a fresh (consistent) insert.
                // Both report acceptance in that case.
                assert_eq!(
                    incremental, ground_truth,
                    "seed {seed}: index and recheck disagree on {candidate}"
                );
                if incremental {
                    accepted.push(candidate);
                } // rejected candidates left no index state (two-phase)
            }
        }
    }
}
