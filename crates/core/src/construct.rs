//! The Appendix A counterexample construction.
//!
//! Given Σ, a base path `x0` and a LHS set `X`, Appendix A builds an
//! instance `I` such that `I ⊨ Σ` while `I ⊭ x0:[X → y]` for **every**
//! `y` with `x0:y ∉ (x0, X, Σ)*` — the witness family behind the
//! completeness half of Theorem 3.1.
//!
//! The construction follows the paper's pseudocode (`newValue`,
//! `assignX0`, `assignVal`, `assignNew`, `newRow`) exactly:
//!
//! * paths in the closure all share one base constant (the `0` of the
//!   paper's tables), so any two rows agree exactly on the closure;
//! * along the spine of `x0` the instance is a chain of singleton sets, so
//!   the quantified pair `v1, v2` appears only at the end of `x0`;
//! * at `x0` itself, two rows are built that agree on closure paths and
//!   get fresh constants elsewhere;
//! * a set-valued path outside the closure whose attributes are *all* in
//!   the closure receives a second row (`newRow`), differing outside the
//!   constants closure `(p, ∅)*`, so that the set value itself differs
//!   between the two sides.
//!
//! The paper assumes an infinite domain for every base type; schemas using
//! `bool` are therefore rejected.

use crate::closure::constants;
use crate::engine::Engine;
use crate::error::CoreError;
use nfd_model::{BaseType, Instance, RecordType, RecordValue, SetValue, Type, Value};
use nfd_path::table::{PathId, PathSet, PathTable};
use nfd_path::typing::resolve_rooted;
use nfd_path::{Path, RootedPath};
use std::collections::HashMap;
use std::sync::Arc;

/// The result of the Appendix A construction.
#[derive(Clone, Debug)]
pub struct Construction {
    /// The constructed instance (`I ⊨ Σ`, `I ⊭ x0:[X → y]` for all `y`
    /// outside the closure).
    pub instance: Instance,
    /// The closure `(x0, X, Σ)*` the construction was driven by.
    pub closure: Vec<RootedPath>,
}

struct Ctx<'e, 's> {
    engine: &'e Engine<'s>,
    /// The base relation's compiled path table; closure membership is a
    /// bitset test over its id space.
    table: Arc<PathTable>,
    base: RootedPath,
    closure: PathSet,
    /// `value(p)` of the pseudocode, memoized. Populated eagerly for
    /// closure paths (deepest first) and on demand for `(p, ∅)*` members
    /// referenced by `newRow`.
    values: HashMap<RootedPath, Value>,
    /// Constants closures `(p, ∅)*`, memoized per base path id.
    consts: HashMap<PathId, PathSet>,
    next: i64,
}

impl Ctx<'_, '_> {
    fn schema(&self) -> &nfd_model::Schema {
        self.engine.schema()
    }

    /// Is `p` a member of the id set `set` (necessarily of the base
    /// relation)? Paths of other relations are never members.
    fn member(&self, set: &PathSet, p: &RootedPath) -> bool {
        p.relation == self.base.relation
            && self.table.id_of(&p.path).is_some_and(|id| set.contains(id))
    }

    fn in_closure(&self, p: &RootedPath) -> bool {
        self.member(&self.closure, p)
    }

    fn type_of(&self, p: &RootedPath) -> Result<Type, CoreError> {
        Ok(resolve_rooted(self.schema(), p)?.clone())
    }

    /// `newValue()`: a fresh constant of the given base type.
    fn new_value(&mut self, b: BaseType) -> Result<Value, CoreError> {
        let n = self.next;
        self.next += 1;
        match b {
            BaseType::Int => Ok(Value::int(n)),
            BaseType::String => Ok(Value::str(format!("v{n}"))),
            BaseType::Bool => Err(CoreError::Construct(
                "the completeness construction requires infinite base domains; \
                 schemas using `bool` are not supported"
                    .into(),
            )),
        }
    }

    /// A constant of the given base type carrying the shared closure value
    /// `val` (the paper's `0`).
    fn const_value(b: BaseType, val: i64) -> Result<Value, CoreError> {
        match b {
            BaseType::Int => Ok(Value::int(val)),
            BaseType::String => Ok(Value::str(format!("v{val}"))),
            BaseType::Bool => Err(CoreError::Construct(
                "the completeness construction requires infinite base domains; \
                 schemas using `bool` are not supported"
                    .into(),
            )),
        }
    }

    /// `value(p)`: the memoized closure value, computing it on demand for
    /// `(p, ∅)*` members outside the main closure.
    fn value_of(&mut self, p: &RootedPath) -> Result<Value, CoreError> {
        if let Some(v) = self.values.get(p) {
            return Ok(v.clone());
        }
        let v = self.assign_val(0, p)?;
        self.values.insert(p.clone(), v.clone());
        Ok(v)
    }

    /// `assignVal(val, p)` of the pseudocode.
    fn assign_val(&mut self, val: i64, p: &RootedPath) -> Result<Value, CoreError> {
        match self.type_of(p)? {
            Type::Base(b) => Self::const_value(b, val),
            Type::Set(elem) => match &*elem {
                Type::Base(b) => Ok(Value::Set(SetValue::new(vec![Self::const_value(*b, val)?]))),
                Type::Record(rec) => {
                    let r1 = self.closure_row(p, rec, val)?;
                    let r2 = self.closure_row(p, rec, val)?;
                    Ok(Value::Set(SetValue::new(vec![
                        Value::Record(r1),
                        Value::Record(r2),
                    ])))
                }
                Type::Set(_) => Err(CoreError::Construct(
                    "sets of sets cannot occur in a validated schema".into(),
                )),
            },
            Type::Record(_) => Err(CoreError::Construct(
                "paths never resolve to bare records in the nested model".into(),
            )),
        }
    }

    /// One row of `assignVal`'s two-row set: closure children share
    /// `value(p:Ai)`, others are fresh per row.
    fn closure_row(
        &mut self,
        p: &RootedPath,
        rec: &RecordType,
        _val: i64,
    ) -> Result<RecordValue, CoreError> {
        let mut fields = Vec::with_capacity(rec.arity());
        for f in rec.fields() {
            let child = p.child(f.label);
            let v = if self.in_closure(&child) {
                self.value_of(&child)?
            } else {
                self.assign_new(&child)?
            };
            fields.push((f.label, v));
        }
        RecordValue::new(fields).map_err(|e| CoreError::Construct(e.to_string()))
    }

    /// `assignNew(p)` of the pseudocode.
    fn assign_new(&mut self, p: &RootedPath) -> Result<Value, CoreError> {
        match self.type_of(p)? {
            Type::Base(b) => self.new_value(b),
            Type::Set(elem) => match &*elem {
                Type::Base(b) => {
                    let b = *b;
                    Ok(Value::Set(SetValue::new(vec![self.new_value(b)?])))
                }
                Type::Record(rec) => {
                    let rec = rec.clone();
                    let mut fields = Vec::with_capacity(rec.arity());
                    let mut all_closure = true;
                    for f in rec.fields() {
                        let child = p.child(f.label);
                        let v = if self.in_closure(&child) {
                            self.value_of(&child)?
                        } else {
                            all_closure = false;
                            self.assign_new(&child)?
                        };
                        fields.push((f.label, v));
                    }
                    let r = Value::Record(
                        RecordValue::new(fields)
                            .map_err(|e| CoreError::Construct(e.to_string()))?,
                    );
                    if all_closure && rec.arity() > 0 {
                        let same_val = self.constants_of(p)?;
                        let row2 = self.new_row(p, &rec, &same_val)?;
                        Ok(Value::Set(SetValue::new(vec![r, Value::Record(row2)])))
                    } else {
                        Ok(Value::Set(SetValue::new(vec![r])))
                    }
                }
                Type::Set(_) => Err(CoreError::Construct(
                    "sets of sets cannot occur in a validated schema".into(),
                )),
            },
            Type::Record(_) => Err(CoreError::Construct(
                "paths never resolve to bare records in the nested model".into(),
            )),
        }
    }

    /// `(p, ∅)*` as a bitset over the base table, memoized.
    fn constants_of(&mut self, p: &RootedPath) -> Result<PathSet, CoreError> {
        let id = self.table.id_of(&p.path);
        if let Some(id) = id {
            if let Some(c) = self.consts.get(&id) {
                return Ok(c.clone());
            }
        }
        let mut set = self.table.empty_set();
        for q in constants(self.engine, p)? {
            if let Some(qid) = self.table.id_of(&q.path) {
                set.insert(qid);
            }
        }
        if let Some(id) = id {
            self.consts.insert(id, set.clone());
        }
        Ok(set)
    }

    /// `newRow(p, sameVal)` of the pseudocode.
    fn new_row(
        &mut self,
        p: &RootedPath,
        rec: &RecordType,
        same_val: &PathSet,
    ) -> Result<RecordValue, CoreError> {
        let mut fields = Vec::with_capacity(rec.arity());
        for f in rec.fields() {
            let child = p.child(f.label);
            let v = if self.member(same_val, &child) {
                self.value_of(&child)?
            } else {
                match &f.ty {
                    Type::Base(b) => self.new_value(*b)?,
                    Type::Set(elem) => match &**elem {
                        Type::Base(b) => {
                            let b = *b;
                            Value::Set(SetValue::new(vec![self.new_value(b)?]))
                        }
                        Type::Record(inner) => {
                            let inner = inner.clone();
                            let row = self.new_row(&child, &inner, same_val)?;
                            Value::Set(SetValue::new(vec![Value::Record(row)]))
                        }
                        Type::Set(_) => {
                            return Err(CoreError::Construct(
                                "sets of sets cannot occur in a validated schema".into(),
                            ))
                        }
                    },
                    Type::Record(_) => {
                        return Err(CoreError::Construct(
                            "record fields are base- or set-typed in the nested model".into(),
                        ))
                    }
                }
            };
            fields.push((f.label, v));
        }
        RecordValue::new(fields).map_err(|e| CoreError::Construct(e.to_string()))
    }

    /// `assignX0(p)`: singleton chain along the spine of `x0`, doubling at
    /// `x0` itself.
    fn assign_x0(&mut self, p: &RootedPath) -> Result<Value, CoreError> {
        if *p == self.base {
            return self.assign_val(0, p);
        }
        let ty = self.type_of(p)?;
        let Some(rec) = ty.element_record().cloned() else {
            return Err(CoreError::Construct(format!(
                "spine path `{p}` is not a set of records"
            )));
        };
        let mut fields = Vec::with_capacity(rec.arity());
        for f in rec.fields() {
            let child = p.child(f.label);
            let v = if child.is_prefix_of(&self.base) {
                self.assign_x0(&child)?
            } else {
                self.assign_new(&child)?
            };
            fields.push((f.label, v));
        }
        let r = RecordValue::new(fields).map_err(|e| CoreError::Construct(e.to_string()))?;
        Ok(Value::Set(SetValue::new(vec![Value::Record(r)])))
    }
}

/// Runs the Appendix A construction for `x0:[X → ·]` against the engine's
/// Σ. The returned instance satisfies Σ and violates `x0:[X → y]` for
/// every well-typed `y` outside the returned closure (Lemma A.1) — both
/// facts are property-tested in this repository.
pub fn counterexample(
    engine: &Engine<'_>,
    base: &RootedPath,
    lhs: &[Path],
) -> Result<Construction, CoreError> {
    let closure_list = engine.closure(base, lhs)?;
    let table = Arc::clone(engine.tables().get(base.relation).ok_or_else(|| {
        CoreError::Nav(format!("relation `{}` is not in the schema", base.relation))
    })?);
    let mut closure = table.empty_set();
    for p in &closure_list {
        if let Some(id) = table.id_of(&p.path) {
            closure.insert(id);
        }
    }
    let mut ctx = Ctx {
        engine,
        table,
        base: base.clone(),
        closure,
        values: HashMap::new(),
        consts: HashMap::new(),
        next: 1,
    };

    // `value(p) := assignVal(val, p)` for all closure paths, deepest first
    // so that references to deeper values are already evaluated.
    let mut ordered = closure_list.clone();
    ordered.sort_by_key(|p| std::cmp::Reverse(p.path.len()));
    for p in &ordered {
        let v = ctx.assign_val(0, p)?;
        ctx.values.insert(p.clone(), v);
    }

    // `I := assignX0(R)`, plus fresh content for the other relations (the
    // no-empty-sets regime forbids leaving them empty).
    let schema = engine.schema();
    let mut relations = Vec::new();
    for name in schema.relation_names() {
        let rooted = RootedPath::relation_only(name);
        let v = if name == base.relation {
            ctx.assign_x0(&rooted)?
        } else {
            ctx.assign_new(&rooted)?
        };
        relations.push((name, v));
    }
    let instance = Instance::new(schema, relations).map_err(|e| {
        CoreError::Construct(format!("constructed instance failed validation: {e}"))
    })?;
    Ok(Construction {
        instance,
        closure: closure_list,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfd::{parse_set, Nfd};
    use crate::satisfy;
    use nfd_model::{Label, Schema};
    use nfd_path::typing::paths_of_record;

    fn a1() -> (Schema, Vec<Nfd>) {
        let schema = Schema::parse(
            "R : { <A: int, B: {<C: int>}, D: int, E: {<F: int, G: int>},
                   H: {<J: int, L: int>}, I: int, M: {<N: int, O: int>}> };",
        )
        .unwrap();
        let sigma = parse_set(
            &schema,
            "R:[A -> B:C]; R:[B:C -> D]; R:[D -> E:F];
             R:[A -> E:G]; R:[B:C -> H]; R:[I -> H:J];",
        )
        .unwrap();
        (schema, sigma)
    }

    /// Lemma A.1 on Example A.1: the constructed instance satisfies Σ and
    /// violates x0:[X → y] exactly for the paths outside the closure.
    #[test]
    fn example_a1_lemma() {
        let (schema, sigma) = a1();
        let engine = Engine::new(&schema, &sigma).unwrap();
        let base = RootedPath::parse("R").unwrap();
        let x = vec![Path::parse("B").unwrap()];
        let c = counterexample(&engine, &base, &x).unwrap();
        assert!(!c.instance.contains_empty_set());

        // I ⊨ Σ.
        for nfd in &sigma {
            let r = satisfy::check(&schema, &c.instance, nfd).unwrap();
            assert!(r.holds, "constructed instance must satisfy {nfd}");
        }

        // For every relative path q: X → q holds on I iff q is in the
        // closure.
        let rec = schema
            .relation_type(Label::new("R"))
            .unwrap()
            .element_record()
            .unwrap();
        let in_closure: std::collections::HashSet<&RootedPath> = c.closure.iter().collect();
        for q in paths_of_record(rec) {
            let rooted = RootedPath::new(Label::new("R"), q.clone());
            let goal = Nfd::new(base.clone(), x.clone(), q.clone()).unwrap();
            let holds = satisfy::check(&schema, &c.instance, &goal).unwrap().holds;
            assert_eq!(
                holds,
                in_closure.contains(&rooted),
                "path {rooted}: satisfaction must match closure membership"
            );
        }
    }

    /// Structural facts about the Example A.1 table: two rows, closure
    /// columns shared (value 0), B a singleton {<C:0>}, H two rows with
    /// J = 0.
    #[test]
    fn example_a1_structure() {
        let (schema, sigma) = a1();
        let engine = Engine::new(&schema, &sigma).unwrap();
        let c = counterexample(
            &engine,
            &RootedPath::parse("R").unwrap(),
            &[Path::parse("B").unwrap()],
        )
        .unwrap();
        let rel = c.instance.relation(Label::new("R")).unwrap();
        assert_eq!(rel.len(), 2, "two rows at x0");
        let rows: Vec<&RecordValue> = rel.elems().iter().map(|e| e.as_record().unwrap()).collect();
        let get = |r: &RecordValue, l: &str| r.get(Label::new(l)).unwrap().clone();
        // Closure columns agree between the rows…
        for col in ["B", "D", "H"] {
            assert_eq!(get(rows[0], col), get(rows[1], col), "column {col} shared");
        }
        // …and non-closure columns differ.
        for col in ["A", "I", "E", "M"] {
            assert_ne!(get(rows[0], col), get(rows[1], col), "column {col} fresh");
        }
        // B is the singleton {<C: 0>}.
        assert_eq!(
            get(rows[0], "B"),
            Value::set([Value::record_of(vec![("C", Value::int(0))])])
        );
        // D is the shared 0.
        assert_eq!(get(rows[0], "D"), Value::int(0));
        // H has two elements, both with J = 0 and distinct L.
        let h = get(rows[0], "H");
        let h = h.as_set().unwrap();
        assert_eq!(h.len(), 2);
        for e in h.elems() {
            assert_eq!(
                e.as_record().unwrap().get(Label::new("J")),
                Some(&Value::int(0))
            );
        }
        // E is a singleton per row with F = 0 (closure) and fresh G.
        for row in &rows {
            let e = get(row, "E");
            let e = e.as_set().unwrap();
            assert_eq!(e.len(), 1);
            assert_eq!(
                e.elems()[0].as_record().unwrap().get(Label::new("F")),
                Some(&Value::int(0))
            );
        }
    }

    /// Lemma A.1 on Example A.2 (deep nesting, set-valued RHS in Σ).
    #[test]
    fn example_a2_lemma() {
        let schema =
            Schema::parse("R : { <A: {<B: {<C: int, D: int, E: {<F: int, G: int>}>}>}, H: int> };")
                .unwrap();
        let sigma = parse_set(
            &schema,
            "R:[A:B:C -> A:B]; R:[A:B:C -> A:B:E:F]; R:[H -> A:B:D];",
        )
        .unwrap();
        let engine = Engine::new(&schema, &sigma).unwrap();
        let base = RootedPath::parse("R").unwrap();
        let x = vec![Path::parse("A:B:C").unwrap()];
        let c = counterexample(&engine, &base, &x).unwrap();
        assert!(!c.instance.contains_empty_set());
        for nfd in &sigma {
            assert!(
                satisfy::check(&schema, &c.instance, nfd).unwrap().holds,
                "constructed instance must satisfy {nfd}"
            );
        }
        let rec = schema
            .relation_type(Label::new("R"))
            .unwrap()
            .element_record()
            .unwrap();
        let in_closure: std::collections::HashSet<&RootedPath> = c.closure.iter().collect();
        for q in paths_of_record(rec) {
            let rooted = RootedPath::new(Label::new("R"), q.clone());
            let goal = Nfd::new(base.clone(), x.clone(), q.clone()).unwrap();
            let holds = satisfy::check(&schema, &c.instance, &goal).unwrap().holds;
            assert_eq!(
                holds,
                in_closure.contains(&rooted),
                "path {rooted}: satisfaction must match closure membership"
            );
        }
    }

    /// Deep base path: the spine of x0 is a chain of singleton sets.
    #[test]
    fn deep_base_spine_is_singleton_chain() {
        let schema = Schema::parse("R : {<A: {<B: {<C: int, D: int>}>}>};").unwrap();
        let sigma = parse_set(&schema, "R:A:B:[C -> D];").unwrap();
        let engine = Engine::new(&schema, &sigma).unwrap();
        let base = RootedPath::parse("R:A:B").unwrap();
        let c = counterexample(&engine, &base, &[Path::parse("C").unwrap()]).unwrap();
        let rel = c.instance.relation(Label::new("R")).unwrap();
        assert_eq!(rel.len(), 1, "R spine is singleton");
        let a = rel.elems()[0]
            .as_record()
            .unwrap()
            .get(Label::new("A"))
            .unwrap()
            .as_set()
            .unwrap();
        assert_eq!(a.len(), 1, "A spine is singleton");
        let b = a.elems()[0]
            .as_record()
            .unwrap()
            .get(Label::new("B"))
            .unwrap()
            .as_set()
            .unwrap();
        // C is in the closure (reflexivity) and D follows by C → D, so the
        // two constructed rows agree on every field and collapse into one
        // under set semantics. That is fine: every path below x0 is in the
        // closure, so there is nothing the instance needs to violate.
        assert_eq!(b.len(), 1, "rows agree on the whole closure and collapse");
        assert_eq!(
            c.closure.len(),
            2,
            "closure below R:A:B is {{C, D}}: {:?}",
            c.closure
        );
    }

    #[test]
    fn bool_schema_rejected() {
        let schema = Schema::parse("R : {<A: bool, B: {<C: int>}>};").unwrap();
        let engine = Engine::new(&schema, &[]).unwrap();
        let err = counterexample(
            &engine,
            &RootedPath::parse("R").unwrap(),
            &[Path::parse("B").unwrap()],
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Construct(_)));
    }

    #[test]
    fn multi_relation_schemas_fill_other_relations() {
        let schema = Schema::parse("R : {<A: int, B: int>}; S : {<X: int>};").unwrap();
        let sigma = parse_set(&schema, "R:[A -> B];").unwrap();
        let engine = Engine::new(&schema, &sigma).unwrap();
        let c = counterexample(
            &engine,
            &RootedPath::parse("R").unwrap(),
            &[Path::parse("A").unwrap()],
        )
        .unwrap();
        assert!(!c.instance.contains_empty_set());
        assert!(!c.instance.relation(Label::new("S")).unwrap().is_empty());
    }
}
