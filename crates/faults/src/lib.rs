//! Compiled-in failpoints for chaos testing, in the style of TiKV's
//! `fail-rs`.
//!
//! A *failpoint* is a named site in production code where a test can
//! inject a fault: a panic, a spurious "resources exhausted" return, a
//! delay, or a cancellation request. Sites are declared with the
//! [`fail_point!`] macro and cost nothing unless the `failpoints` cargo
//! feature is enabled: with the feature off the macro expands to an empty
//! block and its arguments are not even evaluated, so release builds
//! carry no registry, no branch and no string.
//!
//! With the feature on, every site reports to a process-global registry:
//!
//! * each trigger increments an atomic per-site hit counter (even when no
//!   action is armed), so a test can run a workload once and *census*
//!   which sites it reaches — see [`sites_hit`];
//! * an armed [`FaultAction`] fires on trigger: `Panic` and `Delay` take
//!   effect inside the macro, `ReturnExhausted` and `Cancel` are handed
//!   back to the site, which early-returns its context's error value or
//!   cancels the [`CancelToken`]-like object it was given;
//! * actions can be count-limited (`2*panic` fires twice, then the site
//!   reverts to `Off`), so a test can fault exactly one of many
//!   concurrent workers.
//!
//! Sites are configured programmatically ([`configure`],
//! [`configure_limited`]) or through the `NFD_FAILPOINTS` environment
//! variable, read once at first registry access:
//!
//! ```text
//! NFD_FAILPOINTS="chase::step=return-exhausted;par::worker=1*panic;engine::implies=delay(10)"
//! ```
//!
//! The registry is deliberately global (sites live in code that knows
//! nothing about which test is running), so tests that arm actions must
//! serialize with each other and call [`reset`] when done.
//!
//! This crate has no dependencies so every layer of the workspace can
//! declare sites. Only the `nfd` facade forwards the feature
//! (`failpoints = ["nfd-faults/failpoints"]`); cargo feature unification
//! then arms the macro across all consumer crates at once.

#[cfg(feature = "failpoints")]
mod registry {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock, PoisonError};
    use std::time::Duration;

    /// What an armed failpoint does when its site is reached.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum FaultAction {
        /// Count the hit but inject nothing (the census default).
        Off,
        /// Panic with a message naming the site. Exercises the
        /// `catch_unwind` containment boundaries.
        Panic,
        /// Hand the site [`Fault::Exhausted`]: it early-returns its
        /// context's "resources exhausted" value.
        ReturnExhausted,
        /// Sleep for the given number of milliseconds, then continue.
        /// Shakes out timing assumptions (deadlines, pool scheduling).
        Delay(u64),
        /// Hand the site [`Fault::Cancel`]: it cancels the cancellation
        /// token in scope (if any) and continues cooperatively.
        Cancel,
    }

    /// The fault value a triggered site must act on. `Panic` and `Delay`
    /// never reach the site — the registry applies them itself.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Fault {
        /// Early-return the context's exhaustion value.
        Exhausted,
        /// Cancel the token in scope, then continue.
        Cancel,
    }

    #[derive(Debug)]
    struct Site {
        /// `(action, remaining)`: `remaining = Some(n)` disarms the site
        /// after `n` more firings.
        armed: Mutex<(FaultAction, Option<u64>)>,
        hits: AtomicU64,
    }

    impl Default for Site {
        fn default() -> Site {
            Site::new(FaultAction::Off, None)
        }
    }

    impl Site {
        fn new(action: FaultAction, remaining: Option<u64>) -> Site {
            Site {
                armed: Mutex::new((action, remaining)),
                hits: AtomicU64::new(0),
            }
        }
    }

    fn registry() -> &'static Mutex<HashMap<String, Arc<Site>>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, Arc<Site>>>> = OnceLock::new();
        REGISTRY.get_or_init(|| {
            let mut map = HashMap::new();
            // A malformed spec arms NOTHING: silently arming the entries
            // that happened to parse would hand a chaos run a different
            // fault plan than the one it asked for, which is worse than
            // no faults at all. A library must not panic on a bad
            // environment string, so the failure is a logged no-op.
            if let Ok(spec) = std::env::var("NFD_FAILPOINTS") {
                match parse_spec_strict(&spec) {
                    Ok(entries) => {
                        for (name, action, remaining) in entries {
                            map.insert(name, Arc::new(Site::new(action, remaining)));
                        }
                    }
                    Err(bad) => {
                        eprintln!("warning: NFD_FAILPOINTS ignored ({bad}); no failpoints armed");
                    }
                }
            }
            Mutex::new(map)
        })
    }

    fn site(name: &str) -> Arc<Site> {
        let mut map = registry().lock().unwrap_or_else(PoisonError::into_inner);
        match map.get(name) {
            Some(site) => Arc::clone(site),
            None => {
                let site = Arc::new(Site::default());
                map.insert(name.to_string(), Arc::clone(&site));
                site
            }
        }
    }

    /// Parses one `site=action` list; `None` entries are malformed.
    /// Blank entries (so trailing/doubled `;` separators) are fine.
    #[allow(clippy::type_complexity)]
    fn parse_spec(spec: &str) -> Vec<Option<(String, FaultAction, Option<u64>)>> {
        spec.split(';')
            .map(str::trim)
            .filter(|entry| !entry.is_empty())
            .map(|entry| {
                let (name, action) = entry.split_once('=')?;
                let (name, action) = (name.trim(), action.trim());
                if name.is_empty() {
                    return None;
                }
                let (remaining, action) = match action.split_once('*') {
                    Some((n, rest)) => (Some(n.trim().parse::<u64>().ok()?), rest.trim()),
                    None => (None, action),
                };
                Some((name.to_string(), parse_action(action)?, remaining))
            })
            .collect()
    }

    /// All-or-nothing form of [`parse_spec`]: every entry parses, or the
    /// first malformed entry is reported and the whole spec is rejected.
    /// Shared by the env reader and [`apply_env_str`] so a partial fault
    /// plan can never be armed silently.
    #[allow(clippy::type_complexity)]
    fn parse_spec_strict(spec: &str) -> Result<Vec<(String, FaultAction, Option<u64>)>, String> {
        parse_spec(spec)
            .into_iter()
            .zip(spec.split(';').map(str::trim).filter(|e| !e.is_empty()))
            .map(|(parsed, raw)| parsed.ok_or_else(|| format!("malformed failpoint entry `{raw}`")))
            .collect()
    }

    /// Parses a single action keyword: `off`, `panic`, `return-exhausted`,
    /// `delay(ms)`, `cancel`.
    pub fn parse_action(text: &str) -> Option<FaultAction> {
        match text {
            "off" => Some(FaultAction::Off),
            "panic" => Some(FaultAction::Panic),
            "return-exhausted" => Some(FaultAction::ReturnExhausted),
            "cancel" => Some(FaultAction::Cancel),
            _ => {
                let ms = text.strip_prefix("delay(")?.strip_suffix(')')?;
                Some(FaultAction::Delay(ms.trim().parse().ok()?))
            }
        }
    }

    /// Arms `name` with `action` (unlimited firings). `Off` disarms but
    /// keeps the hit counter.
    pub fn configure(name: &str, action: FaultAction) {
        *site(name)
            .armed
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = (action, None);
    }

    /// Arms `name` with `action` for exactly `count` firings, after which
    /// the site reverts to `Off`. `2*panic` in env syntax.
    pub fn configure_limited(name: &str, count: u64, action: FaultAction) {
        *site(name)
            .armed
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = (action, Some(count));
    }

    /// Applies an `NFD_FAILPOINTS`-syntax string programmatically.
    /// Returns the number of sites armed, or the first malformed entry —
    /// in which case nothing is armed (all-or-nothing, like the env
    /// reader).
    pub fn apply_env_str(spec: &str) -> Result<usize, String> {
        let entries = parse_spec_strict(spec)?;
        let n = entries.len();
        for (name, action, remaining) in entries {
            match remaining {
                Some(count) => configure_limited(&name, count, action),
                None => configure(&name, action),
            }
        }
        Ok(n)
    }

    /// Disarms every site and zeroes every hit counter. Call between
    /// chaos-test cases.
    pub fn reset() {
        registry()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    /// Every site triggered at least once since the last [`reset`], with
    /// its hit count, sorted by name. The census backbone: run a workload
    /// with nothing armed, then read off which sites it reaches.
    pub fn sites_hit() -> Vec<(String, u64)> {
        let map = registry().lock().unwrap_or_else(PoisonError::into_inner);
        let mut hit: Vec<(String, u64)> = map
            .iter()
            .map(|(name, site)| (name.clone(), site.hits.load(Ordering::Relaxed)))
            .filter(|(_, n)| *n > 0)
            .collect();
        hit.sort();
        hit
    }

    /// The hit count of one site (0 if never triggered).
    pub fn hits(name: &str) -> u64 {
        registry()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .map(|site| site.hits.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Called by [`fail_point!`] at every armed-build site. Counts the
    /// hit, applies `Panic`/`Delay` in place, and returns the fault the
    /// site itself must act on, if any.
    #[doc(hidden)]
    pub fn trigger(name: &str) -> Option<Fault> {
        let site = site(name);
        site.hits.fetch_add(1, Ordering::Relaxed);
        let action = {
            let mut armed = site.armed.lock().unwrap_or_else(PoisonError::into_inner);
            match armed.1 {
                Some(0) => FaultAction::Off,
                Some(ref mut n) => {
                    *n -= 1;
                    armed.0
                }
                None => armed.0,
            }
        };
        match action {
            FaultAction::Off => None,
            // Deliberate: the whole point of the Panic action is to prove
            // the `catch_unwind` boundaries contain it (tracked by the
            // unwrap_guard budget for this file).
            FaultAction::Panic => panic!("failpoint `{name}` injected panic"),
            FaultAction::Delay(ms) => {
                std::thread::sleep(Duration::from_millis(ms));
                None
            }
            FaultAction::ReturnExhausted => Some(Fault::Exhausted),
            FaultAction::Cancel => Some(Fault::Cancel),
        }
    }
}

#[cfg(feature = "failpoints")]
pub use registry::{
    apply_env_str, configure, configure_limited, hits, parse_action, reset, sites_hit, trigger,
    Fault, FaultAction,
};

/// Declares a failpoint site.
///
/// Three arities, by what the site can do when a fault is injected:
///
/// * `fail_point!("name")` — observe-only: counts hits; `Panic` and
///   `Delay` actions apply, `ReturnExhausted`/`Cancel` are ignored (the
///   site has no error channel or token). Use in infrastructure code
///   like the worker pool.
/// * `fail_point!("name", expr)` — on `ReturnExhausted` *or* `Cancel`,
///   early-returns `expr` (lazily evaluated) from the enclosing
///   function; use where an error value exists but no token is in scope.
/// * `fail_point!("name", expr, token)` — on `ReturnExhausted`,
///   early-returns `expr`; on `Cancel`, calls `.cancel()` on `token` and
///   *continues*, so the normal cooperative-cancellation machinery (and
///   its propagation to sibling workers) is what gets exercised.
///
/// With the `failpoints` feature disabled this expands to an empty block
/// and none of the arguments are evaluated.
#[cfg(feature = "failpoints")]
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {{
        let _ = $crate::trigger($name);
    }};
    ($name:expr, $ret:expr) => {{
        if $crate::trigger($name).is_some() {
            return $ret;
        }
    }};
    ($name:expr, $ret:expr, $token:expr) => {{
        match $crate::trigger($name) {
            Some($crate::Fault::Exhausted) => return $ret,
            Some($crate::Fault::Cancel) => $token.cancel(),
            None => {}
        }
    }};
}

/// No-op form: the `failpoints` feature is disabled, so sites vanish —
/// arguments are swallowed unevaluated and no code is generated.
#[cfg(not(feature = "failpoints"))]
#[macro_export]
macro_rules! fail_point {
    ($name:expr $(, $rest:expr)* $(,)?) => {{}};
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use std::sync::{Mutex, OnceLock, PoisonError};

    /// The registry is process-global; tests that arm or count must not
    /// interleave. (Site names are unique per test, but `reset` is not.)
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn run(name: &str) -> Result<&'static str, &'static str> {
        fail_point!(name, Err("exhausted"));
        Ok("fine")
    }

    #[test]
    fn unarmed_sites_count_hits_and_do_nothing() {
        let _guard = serial();
        assert_eq!(run("t::unarmed"), Ok("fine"));
        assert_eq!(run("t::unarmed"), Ok("fine"));
        assert_eq!(hits("t::unarmed"), 2);
        assert!(sites_hit()
            .iter()
            .any(|(n, c)| n == "t::unarmed" && *c == 2));
    }

    #[test]
    fn return_exhausted_fires_and_off_disarms() {
        let _guard = serial();
        configure("t::ret", FaultAction::ReturnExhausted);
        assert_eq!(run("t::ret"), Err("exhausted"));
        configure("t::ret", FaultAction::Off);
        assert_eq!(run("t::ret"), Ok("fine"));
        assert_eq!(hits("t::ret"), 2, "disarmed sites still count");
    }

    #[test]
    fn count_limited_actions_disarm_themselves() {
        let _guard = serial();
        configure_limited("t::lim", 2, FaultAction::ReturnExhausted);
        assert_eq!(run("t::lim"), Err("exhausted"));
        assert_eq!(run("t::lim"), Err("exhausted"));
        assert_eq!(run("t::lim"), Ok("fine"), "third firing is disarmed");
    }

    #[test]
    fn panic_action_panics_with_site_name() {
        let _guard = serial();
        configure("t::boom", FaultAction::Panic);
        let err = std::panic::catch_unwind(|| run("t::boom")).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("t::boom"), "{msg}");
        configure("t::boom", FaultAction::Off);
    }

    #[test]
    fn cancel_reaches_the_token_and_continues() {
        let _guard = serial();
        #[derive(Default)]
        struct Token(std::cell::Cell<bool>);
        impl Token {
            fn cancel(&self) {
                self.0.set(true);
            }
        }
        fn site(token: &Token) -> Result<&'static str, &'static str> {
            fail_point!("t::cancel", Err("exhausted"), token);
            Ok("continued")
        }
        configure("t::cancel", FaultAction::Cancel);
        let token = Token::default();
        assert_eq!(site(&token), Ok("continued"), "cancel does not return");
        assert!(token.0.get(), "token observed the cancellation");
        configure("t::cancel", FaultAction::Off);
    }

    #[test]
    fn delay_sleeps_then_continues() {
        let _guard = serial();
        configure("t::delay", FaultAction::Delay(15));
        let start = std::time::Instant::now();
        assert_eq!(run("t::delay"), Ok("fine"));
        assert!(start.elapsed() >= std::time::Duration::from_millis(15));
        configure("t::delay", FaultAction::Off);
    }

    #[test]
    fn env_string_round_trips() {
        let _guard = serial();
        let n =
            apply_env_str("t::env_a = return-exhausted ; t::env_b = delay(5); t::env_c=2*panic")
                .expect("valid spec");
        assert_eq!(n, 3);
        assert_eq!(run("t::env_a"), Err("exhausted"));
        configure("t::env_a", FaultAction::Off);
        configure("t::env_b", FaultAction::Off);
        configure("t::env_c", FaultAction::Off);

        assert!(apply_env_str("justaname").is_err());
        assert!(apply_env_str("x=explode").is_err());
        assert!(apply_env_str("x=delay(abc)").is_err());
        assert!(apply_env_str("=panic").is_err());
        assert_eq!(apply_env_str(" ; ; "), Ok(0), "empty entries are fine");
    }

    #[test]
    fn malformed_specs_are_rejected_whole() {
        let _guard = serial();
        reset();
        // Empty action, unparsable count, dangling count marker, and the
        // same shapes buried mid-list.
        for bad in ["x=", "x=abc*panic", "x=3*", "a=panic;x=", "x= ;b=panic"] {
            let err = apply_env_str(bad).expect_err(bad);
            assert!(err.contains("malformed failpoint entry"), "{bad}: {err}");
        }
        // All-or-nothing: a valid prefix of a bad spec is NOT armed.
        assert!(apply_env_str("t::strict_ok=return-exhausted;oops=").is_err());
        assert_eq!(
            run("t::strict_ok"),
            Ok("fine"),
            "valid prefix stayed unarmed"
        );
        // Trailing and doubled separators are fine, though.
        assert_eq!(apply_env_str("t::trail=off;"), Ok(1));
        assert_eq!(apply_env_str(";;t::trail=off;;"), Ok(1));
        reset();
    }

    #[test]
    fn parse_action_covers_the_vocabulary() {
        assert_eq!(parse_action("off"), Some(FaultAction::Off));
        assert_eq!(parse_action("panic"), Some(FaultAction::Panic));
        assert_eq!(
            parse_action("return-exhausted"),
            Some(FaultAction::ReturnExhausted)
        );
        assert_eq!(parse_action("cancel"), Some(FaultAction::Cancel));
        assert_eq!(parse_action("delay(250)"), Some(FaultAction::Delay(250)));
        assert_eq!(parse_action("delay()"), None);
        assert_eq!(parse_action("nonsense"), None);
    }

    #[test]
    fn reset_clears_actions_and_counters() {
        let _guard = serial();
        configure("t::reset", FaultAction::ReturnExhausted);
        assert_eq!(run("t::reset"), Err("exhausted"));
        reset();
        assert_eq!(hits("t::reset"), 0);
        assert_eq!(run("t::reset"), Ok("fine"));
        reset();
    }
}
