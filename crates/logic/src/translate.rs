//! The Section 2.2 translation of NFDs to logic.
//!
//! Given `f = x0:[x1,…,xm-1 → xm]` with `x0 = A⁰1:…:A⁰k0` and `A⁰1 = R`,
//! the paper's `var`/`parent` construction quantifies
//!
//! * one variable per *interior* base label `A⁰1 … A⁰k0-1`,
//! * a ¹/² pair for the last base label `A⁰k0` (both drawn from the *same*
//!   set — the shared interior navigation), and
//! * a ¹/² pair for every label of `x1…xm` that has a descendant in some
//!   path (the paper's `A*` labels).
//!
//! The body is `(true ∧ eq(x1) ∧ … ∧ eq(xm-1)) → eq(xm)` where `eq(xi)`
//! equates the projections `parent(Aⁱki)¹.Aⁱki = parent(Aⁱki)².Aⁱki`.
//!
//! Because the paper assumes no repeated labels, keying variables by label
//! is equivalent to keying them by path prefix; this implementation keys by
//! prefix (via a [`PathTrie`]), which realizes the same sharing and stays
//! correct even if label uniqueness were relaxed.

use crate::ast::{Formula, SetRef, Term, Var};
use nfd_model::{Label, Schema};
use nfd_path::typing::{base_element_record, resolve_in_record, PathTypeError};
use nfd_path::{Path, PathTrie, RootedPath};
use std::fmt;

/// Errors raised by the translation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TranslateError {
    /// A component path is `ε` (Definition 2.3 requires `ki ≥ 1`).
    EmptyComponentPath,
    /// A path failed to type-check against the schema.
    Type(PathTypeError),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::EmptyComponentPath => {
                f.write_str("NFD component paths must have at least one label")
            }
            TranslateError::Type(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TranslateError {}

impl From<PathTypeError> for TranslateError {
    fn from(e: PathTypeError) -> Self {
        TranslateError::Type(e)
    }
}

/// Allocates variables and remembers the ¹/² pair for each traversed
/// prefix.
struct VarAlloc {
    next: usize,
    quantifiers: Vec<(Var, SetRef)>,
}

impl VarAlloc {
    fn new() -> VarAlloc {
        VarAlloc {
            next: 0,
            quantifiers: Vec::new(),
        }
    }

    fn fresh(&mut self, name: String, range: SetRef) -> usize {
        let id = self.next;
        self.next += 1;
        self.quantifiers.push((Var { id, name }, range));
        id
    }
}

/// A variable copy: id and display name (for building projection terms).
#[derive(Clone)]
struct Copy {
    id: usize,
    name: String,
}

fn display_name(label: Label) -> String {
    label.as_str().to_lowercase()
}

/// Translates an NFD (given by its base path, LHS paths and RHS path) into
/// the Section 2.2 formula. The NFD must be well-typed: the base resolves
/// to a set of records and every component path resolves inside its element
/// record.
pub fn translate_nfd(
    schema: &Schema,
    base: &RootedPath,
    lhs: &[Path],
    rhs: &Path,
) -> Result<Formula, TranslateError> {
    let elem_rec = base_element_record(schema, base)?;
    for p in lhs.iter().chain(std::iter::once(rhs)) {
        if p.is_empty() {
            return Err(TranslateError::EmptyComponentPath);
        }
        resolve_in_record(elem_rec, p)?;
    }

    let mut alloc = VarAlloc::new();

    // ---- Base path: interior chain with single variables. --------------
    // x0 labels are [R, y1, …, yk]; quantify R, y1, …, y(k-1) singly, then
    // the ¹/² pair over the last label's set.
    let rel = base.relation;
    let inner = base.path.labels();
    let (pair1, pair2);
    if inner.is_empty() {
        // x0 = R: the pair is drawn from the relation itself.
        let n = display_name(rel);
        let id1 = alloc.fresh(format!("{n}1"), SetRef::Relation(rel));
        let id2 = alloc.fresh(format!("{n}2"), SetRef::Relation(rel));
        pair1 = Copy {
            id: id1,
            name: format!("{n}1"),
        };
        pair2 = Copy {
            id: id2,
            name: format!("{n}2"),
        };
    } else {
        let rn = display_name(rel);
        let mut parent_id = alloc.fresh(rn.clone(), SetRef::Relation(rel));
        let mut parent_name = rn;
        for &label in &inner[..inner.len() - 1] {
            let n = display_name(label);
            let id = alloc.fresh(
                n.clone(),
                SetRef::Proj(parent_id, parent_name.clone(), label),
            );
            parent_id = id;
            parent_name = n;
        }
        let last = inner[inner.len() - 1];
        let n = display_name(last);
        let id1 = alloc.fresh(
            format!("{n}1"),
            SetRef::Proj(parent_id, parent_name.clone(), last),
        );
        let id2 = alloc.fresh(
            format!("{n}2"),
            SetRef::Proj(parent_id, parent_name.clone(), last),
        );
        pair1 = Copy {
            id: id1,
            name: format!("{n}1"),
        };
        pair2 = Copy {
            id: id2,
            name: format!("{n}2"),
        };
    }

    // ---- Component paths: one ¹/² pair per internal trie node. ---------
    let mut component_paths: Vec<Path> = lhs.to_vec();
    component_paths.push(rhs.clone());
    let trie = PathTrie::new(component_paths.iter().cloned());

    // pairs[i] = the (copy1, copy2) for trie prefix i; prefix_of[path] maps
    // each traversed prefix to its pair. We walk the trie in preorder.
    struct NodePairs {
        prefix: Path,
        c1: Copy,
        c2: Copy,
    }
    let mut node_pairs: Vec<NodePairs> = Vec::new();
    {
        // Preorder over internal nodes; parent pair is the base pair for
        // roots, or the enclosing internal node's pair.
        fn walk(
            nodes: &[nfd_path::trie::TrieNode],
            prefix: &Path,
            parent: (&Copy, &Copy),
            alloc: &mut VarAlloc,
            out: &mut Vec<NodePairs>,
        ) {
            for node in nodes {
                if node.children.is_empty() {
                    continue;
                }
                let p = prefix.child(node.label);
                let n = display_name(node.label);
                let name1 = format!("{n}1");
                let name2 = format!("{n}2");
                let id1 = alloc.fresh(
                    name1.clone(),
                    SetRef::Proj(parent.0.id, parent.0.name.clone(), node.label),
                );
                let id2 = alloc.fresh(
                    name2.clone(),
                    SetRef::Proj(parent.1.id, parent.1.name.clone(), node.label),
                );
                let c1 = Copy {
                    id: id1,
                    name: name1,
                };
                let c2 = Copy {
                    id: id2,
                    name: name2,
                };
                out.push(NodePairs {
                    prefix: p.clone(),
                    c1: c1.clone(),
                    c2: c2.clone(),
                });
                walk(&node.children, &p, (&c1, &c2), alloc, out);
            }
        }
        walk(
            trie.roots(),
            &Path::empty(),
            (&pair1, &pair2),
            &mut alloc,
            &mut node_pairs,
        );
    }

    let pair_for = |prefix: &Path| -> (&Copy, &Copy) {
        if prefix.is_empty() {
            (&pair1, &pair2)
        } else {
            let np = node_pairs
                .iter()
                .find(|np| &np.prefix == prefix)
                .expect("every traversed prefix has a pair");
            (&np.c1, &np.c2)
        }
    };

    let eq_of = |path: &Path| -> Formula {
        let parent_prefix = path.parent().expect("component paths are non-empty");
        let last = path.last().expect("component paths are non-empty");
        let (p1, p2) = pair_for(&parent_prefix);
        Formula::Eq(
            Term {
                var: p1.id,
                var_name: p1.name.clone(),
                label: last,
            },
            Term {
                var: p2.id,
                var_name: p2.name.clone(),
                label: last,
            },
        )
    };

    let antecedent = Formula::And(lhs.iter().map(&eq_of).collect());
    let consequent = eq_of(rhs);
    let mut body = Formula::Implies(Box::new(antecedent), Box::new(consequent));

    for (var, range) in alloc.quantifiers.into_iter().rev() {
        body = Formula::Forall(var, range, Box::new(body));
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::parse(
            "Course : { <cnum: string, time: int,
                         students: {<sid: int, age: int, grade: string>},
                         books: {<isbn: string, title: string>}> };",
        )
        .unwrap()
    }

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    fn rp(s: &str) -> RootedPath {
        RootedPath::parse(s).unwrap()
    }

    /// Example 2.2's translation: Course:[books:isbn → books:title] has
    /// exactly four quantifiers (two course copies, two book copies) even
    /// though `books` occurs twice in the dependency.
    #[test]
    fn example_2_2_variable_count() {
        let s = schema();
        let f = translate_nfd(&s, &rp("Course"), &[p("books:isbn")], &p("books:title")).unwrap();
        assert_eq!(f.quantifier_count(), 4);
        assert_eq!(
            f.to_string(),
            "∀course1 ∈ Course. ∀course2 ∈ Course. \
             ∀books1 ∈ course1.books. ∀books2 ∈ course2.books. \
             (books1.isbn = books2.isbn → books1.title = books2.title)"
        );
    }

    /// Example 2.3's translation: Course:students:[sid → grade] has one
    /// shared course variable and two student copies.
    #[test]
    fn example_2_3_local_dependency() {
        let s = schema();
        let f = translate_nfd(&s, &rp("Course:students"), &[p("sid")], &p("grade")).unwrap();
        assert_eq!(f.quantifier_count(), 3);
        assert_eq!(
            f.to_string(),
            "∀course ∈ Course. \
             ∀students1 ∈ course.students. ∀students2 ∈ course.students. \
             (students1.sid = students2.sid → students1.grade = students2.grade)"
        );
    }

    /// Example 2.4: the global age dependency shares the structure of 2.2.
    #[test]
    fn example_2_4_global_dependency() {
        let s = schema();
        let f = translate_nfd(&s, &rp("Course"), &[p("students:sid")], &p("students:age")).unwrap();
        assert_eq!(f.quantifier_count(), 4);
        let prefix = f.quantifier_prefix();
        // Ranges: Course, Course, course1.students, course2.students.
        assert_eq!(prefix[0].1.to_string(), "Course");
        assert_eq!(prefix[1].1.to_string(), "Course");
        assert_eq!(prefix[2].1.to_string(), "course1.students");
        assert_eq!(prefix[3].1.to_string(), "course2.students");
    }

    /// Degenerate NFD x0:[∅ → xm]: antecedent is the empty conjunction.
    #[test]
    fn degenerate_constant_dependency() {
        let s = schema();
        let f = translate_nfd(&s, &rp("Course"), &[], &p("time")).unwrap();
        assert!(f
            .to_string()
            .ends_with("(true → course1.time = course2.time)"));
    }

    /// Multiple LHS paths under a shared prefix use one variable pair.
    #[test]
    fn shared_prefix_shares_variables() {
        let s = schema();
        let f = translate_nfd(
            &s,
            &rp("Course"),
            &[p("students:sid"), p("students:grade")],
            &p("students:age"),
        )
        .unwrap();
        // 2 course + 2 students copies = 4, despite three component paths.
        assert_eq!(f.quantifier_count(), 4);
    }

    /// A set-valued component that is also traversed (X = {A, A:B}) uses a
    /// projection for the set comparison and a pair for the traversal.
    #[test]
    fn set_compared_and_traversed() {
        let s = Schema::parse("R : {<A: {<B: int, C: int>}>};").unwrap();
        let f = translate_nfd(
            &s,
            &RootedPath::parse("R").unwrap(),
            &[p("A"), p("A:B")],
            &p("A:C"),
        )
        .unwrap();
        // r1, r2, a1, a2.
        assert_eq!(f.quantifier_count(), 4);
        let shown = f.to_string();
        // The set comparison projects A from the tuple copies…
        assert!(shown.contains("r1.A = r2.A"));
        // …while B and C project from the element copies.
        assert!(shown.contains("a1.B = a2.B"));
        assert!(shown.contains("a1.C = a2.C"));
    }

    #[test]
    fn errors_reported() {
        let s = schema();
        assert_eq!(
            translate_nfd(&s, &rp("Course"), &[Path::empty()], &p("time")).unwrap_err(),
            TranslateError::EmptyComponentPath
        );
        assert!(matches!(
            translate_nfd(&s, &rp("Course"), &[p("nope")], &p("time")),
            Err(TranslateError::Type(_))
        ));
        assert!(matches!(
            translate_nfd(&s, &rp("Course:cnum"), &[], &p("time")),
            Err(TranslateError::Type(PathTypeError::BaseNotSet { .. }))
        ));
        assert!(matches!(
            translate_nfd(&s, &rp("Nope"), &[], &p("time")),
            Err(TranslateError::Type(PathTypeError::UnknownRelation(_)))
        ));
    }

    /// Deep base paths chain single variables.
    #[test]
    fn deep_base_path() {
        let s = Schema::parse("R : {<A: {<B: {<C: int, D: int>}>}>};").unwrap();
        let f =
            translate_nfd(&s, &RootedPath::parse("R:A:B").unwrap(), &[p("C")], &p("D")).unwrap();
        // r (single), a (single), b1, b2.
        assert_eq!(f.quantifier_count(), 4);
        let prefix = f.quantifier_prefix();
        assert_eq!(prefix[0].1.to_string(), "R");
        assert_eq!(prefix[1].1.to_string(), "r.A");
        assert_eq!(prefix[2].1.to_string(), "a.B");
        assert_eq!(prefix[3].1.to_string(), "a.B");
    }
}
