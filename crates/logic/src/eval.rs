//! Evaluation of formulas over database instances.
//!
//! This is the second, independent satisfaction checker: an NFD holds on an
//! instance iff its Section 2.2 translation evaluates to `true`. Universal
//! quantification over an empty set is vacuously `true` — which is how the
//! paper's "trivially true" clause (Definition 2.4) and all the Section 3.2
//! empty-set pathologies surface in this semantics.

use crate::ast::{Formula, SetRef, Term};
use nfd_faults::fail_point;
use nfd_govern::{Budget, ResourceKind, ResourceReport};
use nfd_model::{Instance, Value};
use std::fmt;

/// Errors raised during evaluation. These indicate a formula/instance
/// mismatch (e.g. a formula translated against a different schema) or an
/// exhausted resource budget, never a mere "dependency violated".
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// Variable used before being bound by a quantifier.
    UnboundVar(String),
    /// A quantifier range did not evaluate to a set.
    NotASet(String),
    /// A projection was applied to a non-record value.
    NotARecord(String),
    /// A record value lacks the projected field.
    MissingField(String),
    /// The instance has no such relation.
    UnknownRelation(String),
    /// The assignment budget, deadline or cancellation token tripped
    /// before evaluation finished.
    Exhausted(ResourceReport),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVar(v) => write!(f, "unbound variable `{v}`"),
            EvalError::NotASet(s) => write!(f, "range `{s}` is not a set"),
            EvalError::NotARecord(t) => write!(f, "`{t}` projects from a non-record"),
            EvalError::MissingField(t) => write!(f, "`{t}` projects a missing field"),
            EvalError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            EvalError::Exhausted(r) => write!(f, "evaluation exhausted: {r}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluates `formula` over `instance` with no resource limits beyond the
/// standard budget (which leaves assignment enumeration unbounded).
pub fn eval(instance: &Instance, formula: &Formula) -> Result<bool, EvalError> {
    eval_budgeted(instance, formula, &Budget::standard())
}

/// Evaluates `formula` over `instance` under a resource [`Budget`]: every
/// quantifier instantiation is charged against
/// [`Budget::max_assignments`], and the deadline/cancellation token is
/// polled every few thousand instantiations.
pub fn eval_budgeted(
    instance: &Instance,
    formula: &Formula,
    budget: &Budget,
) -> Result<bool, EvalError> {
    fail_point!(
        "logic::eval",
        Err(EvalError::Exhausted(ResourceReport::injected())),
        budget.cancel_token()
    );
    budget.check_live().map_err(EvalError::Exhausted)?;
    let mut env: Vec<Option<Value>> = Vec::new();
    let mut assignments = 0u64;
    eval_with(instance, formula, &mut env, budget, &mut assignments)
}

fn eval_with(
    instance: &Instance,
    formula: &Formula,
    env: &mut Vec<Option<Value>>,
    budget: &Budget,
    assignments: &mut u64,
) -> Result<bool, EvalError> {
    match formula {
        Formula::True => Ok(true),
        Formula::And(cs) => {
            for c in cs {
                if !eval_with(instance, c, env, budget, assignments)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::Implies(a, b) => {
            if eval_with(instance, a, env, budget, assignments)? {
                eval_with(instance, b, env, budget, assignments)
            } else {
                Ok(true)
            }
        }
        Formula::Eq(t1, t2) => Ok(resolve_term(t1, env)? == resolve_term(t2, env)?),
        Formula::Forall(var, range, body) => {
            fail_point!(
                "logic::forall",
                Err(EvalError::Exhausted(ResourceReport::injected())),
                budget.cancel_token()
            );
            let set = resolve_set(instance, range, env)?.clone();
            if env.len() <= var.id {
                env.resize(var.id + 1, None);
            }
            for elem in set.elems() {
                *assignments += 1;
                budget
                    .check_counter(ResourceKind::Assignments, *assignments)
                    .and_then(|()| {
                        if (*assignments).is_multiple_of(4096) {
                            budget.check_live()
                        } else {
                            Ok(())
                        }
                    })
                    .map_err(EvalError::Exhausted)?;
                env[var.id] = Some(elem.clone());
                let ok = eval_with(instance, body, env, budget, assignments)?;
                env[var.id] = None;
                if !ok {
                    return Ok(false);
                }
            }
            Ok(true)
        }
    }
}

fn resolve_set<'a>(
    instance: &'a Instance,
    range: &SetRef,
    env: &'a [Option<Value>],
) -> Result<&'a nfd_model::SetValue, EvalError> {
    match range {
        SetRef::Relation(r) => instance
            .relation(*r)
            .map_err(|_| EvalError::UnknownRelation(r.to_string())),
        SetRef::Proj(var, name, label) => {
            let bound = env
                .get(*var)
                .and_then(Option::as_ref)
                .ok_or_else(|| EvalError::UnboundVar(name.clone()))?;
            let rec = bound
                .as_record()
                .ok_or_else(|| EvalError::NotARecord(format!("{name}.{label}")))?;
            let v = rec
                .get(*label)
                .ok_or_else(|| EvalError::MissingField(format!("{name}.{label}")))?;
            v.as_set()
                .ok_or_else(|| EvalError::NotASet(format!("{name}.{label}")))
        }
    }
}

fn resolve_term<'a>(term: &Term, env: &'a [Option<Value>]) -> Result<&'a Value, EvalError> {
    let bound = env
        .get(term.var)
        .and_then(Option::as_ref)
        .ok_or_else(|| EvalError::UnboundVar(term.var_name.clone()))?;
    let rec = bound
        .as_record()
        .ok_or_else(|| EvalError::NotARecord(term.to_string()))?;
    rec.get(term.label)
        .ok_or_else(|| EvalError::MissingField(term.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::translate_nfd;
    use nfd_model::Schema;
    use nfd_path::{Path, RootedPath};

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    fn rp(s: &str) -> RootedPath {
        RootedPath::parse(s).unwrap()
    }

    fn course_setup() -> (Schema, Instance) {
        let schema = Schema::parse(
            "Course : { <cnum: string, time: int,
                         students: {<sid: int, grade: string>}> };",
        )
        .unwrap();
        // The Section 2 instance of the paper.
        let inst = Instance::parse(
            &schema,
            r#"Course = { <cnum: "cis550", time: 10,
                           students: {<sid: 1001, grade: "A">,
                                      <sid: 2002, grade: "B">}>,
                          <cnum: "cis500", time: 12,
                           students: {<sid: 1001, grade: "A">}> };"#,
        )
        .unwrap();
        (schema, inst)
    }

    #[test]
    fn section2_instance_satisfies_local_grade_dependency() {
        let (s, i) = course_setup();
        let f = translate_nfd(&s, &rp("Course:students"), &[p("sid")], &p("grade")).unwrap();
        assert_eq!(eval(&i, &f), Ok(true));
    }

    #[test]
    fn cnum_key_holds_on_section2_instance() {
        let (s, i) = course_setup();
        let f = translate_nfd(&s, &rp("Course"), &[p("cnum")], &p("time")).unwrap();
        assert_eq!(eval(&i, &f), Ok(true));
        let f = translate_nfd(&s, &rp("Course"), &[p("cnum")], &p("students")).unwrap();
        assert_eq!(eval(&i, &f), Ok(true));
    }

    #[test]
    fn violated_dependency_detected() {
        let (s, i) = course_setup();
        // Two students share grade "A" with different sids, so
        // students:grade → students:sid is violated…
        let inst2 = Instance::parse(
            &s,
            r#"Course = { <cnum: "cis550", time: 10,
                           students: {<sid: 1001, grade: "A">,
                                      <sid: 2002, grade: "A">}> };"#,
        )
        .unwrap();
        let f = translate_nfd(
            &s,
            &rp("Course"),
            &[p("students:grade")],
            &p("students:sid"),
        )
        .unwrap();
        assert_eq!(eval(&inst2, &f), Ok(false));
        // …while the Section 2 instance satisfies sid → grade globally.
        let g = translate_nfd(
            &s,
            &rp("Course"),
            &[p("students:sid")],
            &p("students:grade"),
        )
        .unwrap();
        assert_eq!(eval(&i, &g), Ok(true));
    }

    #[test]
    fn empty_set_makes_quantifier_vacuous() {
        let schema = Schema::parse("R : {<A: int, B: {<C: int>}>};").unwrap();
        let inst = Instance::parse(&schema, "R = { <A: 1, B: {}>, <A: 1, B: {}> };").unwrap();
        // B:C → A would be violated if B had elements with equal C but the
        // two A values differed; with B empty it is vacuously true — even
        // though A is "determined" by nothing.
        let inst2 = Instance::parse(&schema, "R = { <A: 1, B: {}>, <A: 2, B: {}> };").unwrap();
        let f = translate_nfd(
            &schema,
            &RootedPath::parse("R").unwrap(),
            &[p("B:C")],
            &p("A"),
        )
        .unwrap();
        assert_eq!(eval(&inst, &f), Ok(true));
        assert_eq!(eval(&inst2, &f), Ok(true), "vacuous despite differing A");
    }

    #[test]
    fn empty_relation_satisfies_everything() {
        let schema = Schema::parse("R : {<A: int, B: {<C: int>}>};").unwrap();
        let inst = Instance::parse(&schema, "R = {};").unwrap();
        let f = translate_nfd(
            &schema,
            &RootedPath::parse("R").unwrap(),
            &[p("A")],
            &p("B"),
        )
        .unwrap();
        assert_eq!(eval(&inst, &f), Ok(true));
    }

    #[test]
    fn degenerate_constant_nfd() {
        let schema = Schema::parse("R : {<A: int>};").unwrap();
        let konst = Instance::parse(&schema, "R = { <A: 1>, <A: 1> };").unwrap();
        let varying = Instance::parse(&schema, "R = { <A: 1>, <A: 2> };").unwrap();
        let f = translate_nfd(&schema, &RootedPath::parse("R").unwrap(), &[], &p("A")).unwrap();
        assert_eq!(eval(&konst, &f), Ok(true));
        assert_eq!(eval(&varying, &f), Ok(false));
    }

    #[test]
    fn assignment_budget_stops_evaluation() {
        let (s, i) = course_setup();
        let f = translate_nfd(
            &s,
            &rp("Course"),
            &[p("students:sid")],
            &p("students:grade"),
        )
        .unwrap();
        let mut budget = Budget::standard();
        budget.max_assignments = 3;
        assert!(matches!(
            eval_budgeted(&i, &f, &budget),
            Err(EvalError::Exhausted(r)) if r.kind == ResourceKind::Assignments && r.limit == 3
        ));
        // A generous assignment budget agrees with the unbudgeted verdict.
        budget.max_assignments = 1_000;
        assert_eq!(eval_budgeted(&i, &f, &budget), Ok(true));
    }

    #[test]
    fn cancelled_token_stops_evaluation() {
        let (s, i) = course_setup();
        let f = translate_nfd(&s, &rp("Course"), &[p("cnum")], &p("time")).unwrap();
        let budget = Budget::standard();
        budget.cancel_token().cancel();
        assert!(matches!(
            eval_budgeted(&i, &f, &budget),
            Err(EvalError::Exhausted(r)) if r.kind == ResourceKind::Cancelled
        ));
    }

    #[test]
    fn eval_errors_on_schema_mismatch() {
        let schema = Schema::parse("R : {<A: int>};").unwrap();
        let other = Schema::parse("S : {<B: int>};").unwrap();
        let inst = Instance::parse(&other, "S = {<B: 1>};").unwrap();
        let f = translate_nfd(&schema, &RootedPath::parse("R").unwrap(), &[], &p("A")).unwrap();
        assert!(matches!(
            eval(&inst, &f),
            Err(EvalError::UnknownRelation(_))
        ));
    }
}
