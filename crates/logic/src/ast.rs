//! A first-order fragment sufficient for NFD semantics: universal
//! quantification over set values, implication, conjunction, and equality of
//! projection terms.

use nfd_model::Label;
use std::fmt;

/// A quantified variable. Identified by `id`; `name` is only for display
/// (the paper writes `c1, s1, s2, …`).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Var {
    /// Unique index within a formula; the evaluator's environment is a
    /// dense vector over these.
    pub id: usize,
    /// Display name, e.g. `students_1`.
    pub name: String,
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// A reference to a set value: either a relation of the instance or the
/// projection `v.A` of a bound variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SetRef {
    /// A relation `R` of the instance.
    Relation(Label),
    /// The set-valued field `A` of the record bound to a variable.
    Proj(usize, String, Label),
}

impl fmt::Display for SetRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetRef::Relation(r) => write!(f, "{r}"),
            SetRef::Proj(_, name, label) => write!(f, "{name}.{label}"),
        }
    }
}

/// A term: the projection `v.A` of a bound variable (the paper's
/// `parent(A).A`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Term {
    /// Variable id.
    pub var: usize,
    /// Variable display name.
    pub var_name: String,
    /// Projected label.
    pub label: Label,
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.var_name, self.label)
    }
}

/// A formula of the fragment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Formula {
    /// `∀ v ∈ S. φ` — vacuously true when `S` is empty, which is exactly
    /// the Section 3.2 phenomenon.
    Forall(Var, SetRef, Box<Formula>),
    /// `φ → ψ`.
    Implies(Box<Formula>, Box<Formula>),
    /// `φ1 ∧ … ∧ φn` (empty conjunction is `true`, as in the paper's
    /// `(true ∧ …)` antecedent).
    And(Vec<Formula>),
    /// `t1 = t2`.
    Eq(Term, Term),
    /// `true`.
    True,
}

impl Formula {
    /// Number of universal quantifiers in prefix position (the paper counts
    /// these: one per interior base label, two per doubled label).
    pub fn quantifier_count(&self) -> usize {
        match self {
            Formula::Forall(_, _, body) => 1 + body.quantifier_count(),
            _ => 0,
        }
    }

    /// The body under all leading quantifiers.
    pub fn matrix(&self) -> &Formula {
        match self {
            Formula::Forall(_, _, body) => body.matrix(),
            other => other,
        }
    }

    /// The quantifier prefix as `(variable, range)` pairs.
    pub fn quantifier_prefix(&self) -> Vec<(&Var, &SetRef)> {
        let mut out = Vec::new();
        let mut cur = self;
        while let Formula::Forall(v, s, body) = cur {
            out.push((v, s));
            cur = body;
        }
        out
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Forall(v, s, body) => {
                write!(f, "∀{v} ∈ {s}. {body}")
            }
            Formula::Implies(a, b) => write!(f, "({a} → {b})"),
            Formula::And(cs) => {
                if cs.is_empty() {
                    return f.write_str("true");
                }
                if cs.len() == 1 {
                    return write!(f, "{}", cs[0]);
                }
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ∧ ")?;
                    }
                    write!(f, "{c}")?;
                }
                Ok(())
            }
            Formula::Eq(a, b) => write!(f, "{a} = {b}"),
            Formula::True => f.write_str("true"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(id: usize, name: &str) -> Var {
        Var {
            id,
            name: name.into(),
        }
    }

    fn term(id: usize, name: &str, label: &str) -> Term {
        Term {
            var: id,
            var_name: name.into(),
            label: Label::new(label),
        }
    }

    #[test]
    fn display_matches_paper_style() {
        // ∀s1 ∈ c.students. ∀s2 ∈ c.students. (s1.sid = s2.sid → s1.grade = s2.grade)
        let f = Formula::Forall(
            var(0, "s1"),
            SetRef::Proj(9, "c".into(), Label::new("students")),
            Box::new(Formula::Forall(
                var(1, "s2"),
                SetRef::Proj(9, "c".into(), Label::new("students")),
                Box::new(Formula::Implies(
                    Box::new(Formula::And(vec![Formula::Eq(
                        term(0, "s1", "sid"),
                        term(1, "s2", "sid"),
                    )])),
                    Box::new(Formula::Eq(term(0, "s1", "grade"), term(1, "s2", "grade"))),
                )),
            )),
        );
        assert_eq!(
            f.to_string(),
            "∀s1 ∈ c.students. ∀s2 ∈ c.students. (s1.sid = s2.sid → s1.grade = s2.grade)"
        );
        assert_eq!(f.quantifier_count(), 2);
        assert!(matches!(f.matrix(), Formula::Implies(_, _)));
        assert_eq!(f.quantifier_prefix().len(), 2);
    }

    #[test]
    fn empty_conjunction_is_true() {
        assert_eq!(Formula::And(vec![]).to_string(), "true");
        assert_eq!(Formula::True.to_string(), "true");
    }

    #[test]
    fn relation_set_ref_displays_bare() {
        let s = SetRef::Relation(Label::new("Course"));
        assert_eq!(s.to_string(), "Course");
    }
}
