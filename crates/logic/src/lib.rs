//! # nfd-logic — NFDs expressed in logic
//!
//! Section 2.2 of *"Reasoning about Nested Functional Dependencies"* (Hara &
//! Davidson, PODS 1999) gives a "precise translation of NFDs to logic":
//! every NFD `x0:[x1,…,xm-1 → xm]` denotes a universally quantified
//! implication between conjunctions of equalities, with
//!
//! * **one** quantified variable per interior label of the base path `x0`,
//! * **two** quantified variables (the ¹/² copies) for the last label of
//!   `x0` and for every label of `x1…xm` that has a descendant in some
//!   path, and
//! * shared variables for shared path prefixes — the *coincidence*
//!   condition of Definition 2.4.
//!
//! This crate provides:
//!
//! * [`ast`] — a small first-order fragment: `∀v ∈ S. φ`, implication,
//!   conjunction, equality of projection terms;
//! * [`translate`] — the `var`/`parent` construction of Section 2.2;
//! * [`eval()`] — a formula evaluator over instances. Together with the
//!   direct checker in `nfd-core`, this gives two independently derived
//!   satisfaction procedures whose agreement is property-tested.
//!
//! ```
//! use nfd_model::Schema;
//! use nfd_path::{Path, RootedPath};
//! use nfd_logic::translate::translate_nfd;
//!
//! let schema = Schema::parse(
//!     "Course : { <cnum: string, time: int,
//!                  students: {<sid: int, age: int, grade: string>}> };").unwrap();
//! let f = translate_nfd(
//!     &schema,
//!     &RootedPath::parse("Course").unwrap(),
//!     &[Path::parse("students:sid").unwrap()],
//!     &Path::parse("students:age").unwrap(),
//! ).unwrap();
//! let shown = f.to_string();
//! assert!(shown.contains("∀"));
//! assert!(shown.contains("sid"));
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod eval;
pub mod translate;

pub use ast::{Formula, SetRef, Term, Var};
pub use eval::{eval, eval_budgeted, EvalError};
pub use translate::{translate_nfd, TranslateError};
