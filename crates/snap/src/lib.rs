//! # nfd-snap — crash-safe snapshots of compiled sessions.
//!
//! A versioned, length-prefixed, per-section CRC-checksummed binary
//! format for the compiled artifact of an NFD session: the schema and Σ
//! source texts, the empty-set policy, the interned per-relation path
//! tables (prefix / extension / follower bitset matrices), the saturated
//! dependency pools with full provenance, and optionally the warm closure
//! cache. Thawing a snapshot skips the saturation fixpoint entirely, so a
//! huge schema cold-starts in the time it takes to replay its pool.
//!
//! The crate is deliberately *plain data*: [`Snapshot`] holds strings,
//! integers and word vectors, and knows nothing about engines or path
//! tables. The `nfd` facade converts between this representation and the
//! live compiled structures (and proves bit-identity both ways in its
//! differential suite); this crate owns only the bytes.
//!
//! ## Durability contract
//!
//! * **Writes are crash-atomic.** [`write_atomic`] writes to a sibling
//!   temp file, flushes it to disk, then renames over the destination —
//!   a reader never observes a torn snapshot, only the old file or the
//!   new one.
//! * **Reads are strict by default.** [`decode`] verifies the magic, the
//!   format version, every section's CRC-32, the section ordering, and a
//!   whole-file CRC trailer; every malformed, truncated, bit-flipped or
//!   version-skewed input is a typed [`SnapError`] — never a panic, never
//!   a silently wrong artifact. The decoder is strictly bounds-checked:
//!   corrupt length fields are caught before any allocation is sized
//!   from them.
//! * **Salvage is explicit.** [`decode_lenient`] recovers what it can:
//!   if the text sections (schema, Σ, policy) are individually CRC-valid
//!   it returns them even when the compiled sections are damaged, marking
//!   the result *degraded* so the caller can fall back to a fresh compile
//!   instead of rejecting outright. Degradation is a reported event, not
//!   a failure.
//!
//! ## Byte layout (format version 1)
//!
//! ```text
//! magic     8 bytes   b"NFDSNAP1"
//! version   u32 LE    FORMAT_VERSION
//! section*            tag u32 LE · len u64 LE · payload · crc32(payload) u32 LE
//! ```
//!
//! Sections appear in a fixed order — `SCHEMA`, `SIGMA`, `POLICY`,
//! `TABLES`, `POOLS`, optional `CACHE`, then `END`, whose payload is the
//! CRC-32 of every preceding byte of the file. Within payloads, integers
//! are little-endian, strings and vectors are `u64` length-prefixed, and
//! bitsets are dumped as their raw 64-bit words. See `DESIGN.md` for the
//! field-by-field specification and the version-bump policy.
//!
//! Failpoint sites `snap::write`, `snap::rename`, `snap::read` and
//! `snap::verify` let the chaos harness inject torn writes and partial
//! reads; with the (never-default) `failpoints` feature off they vanish.

#![warn(missing_docs)]

use nfd_faults::fail_point;
use std::fmt;
use std::io::Write as _;

/// The 8-byte magic at offset 0 of every snapshot file.
pub const MAGIC: &[u8; 8] = b"NFDSNAP1";

/// The current format version. Bump on ANY change to the byte layout —
/// the decoder rejects other versions with
/// [`SnapError::UnsupportedVersion`] rather than guessing.
pub const FORMAT_VERSION: u32 = 1;

/// Hard ceiling on a single snapshot file (256 MiB). A corrupt length
/// field can claim anything; this bounds what the decoder will even
/// consider, so damage can never translate into an unbounded allocation.
pub const MAX_SNAPSHOT_BYTES: u64 = 256 * 1024 * 1024;

const TAG_SCHEMA: u32 = 1;
const TAG_SIGMA: u32 = 2;
const TAG_POLICY: u32 = 3;
const TAG_TABLES: u32 = 4;
const TAG_POOLS: u32 = 5;
const TAG_CACHE: u32 = 6;
const TAG_END: u32 = 7;

/// Why a snapshot could not be written, read, or accepted. Every
/// corruption mode maps onto one of these — the decoder has no panicking
/// paths (pinned by `tests/unwrap_guard.rs`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapError {
    /// Filesystem-level failure (open, write, flush, rename).
    Io(String),
    /// The file does not start with [`MAGIC`] — not a snapshot at all.
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`].
    UnsupportedVersion(u32),
    /// The input ended before the named field could be read.
    Truncated(String),
    /// A CRC-32 check failed for the named section (or the file trailer).
    Checksum(String),
    /// Structurally invalid content: bad tag, bad ordering, bad enum
    /// discriminant, an over-long length field, trailing garbage.
    Malformed(String),
    /// The snapshot decoded cleanly but does not match the world it is
    /// being thawed into (schema text, Σ, policy, or matrix skew).
    Mismatch(String),
    /// A `snap::*` failpoint injected this failure (chaos testing only).
    Injected,
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot format version {v} (expected {FORMAT_VERSION})"
                )
            }
            SnapError::Truncated(what) => write!(f, "snapshot truncated at {what}"),
            SnapError::Checksum(what) => write!(f, "snapshot checksum mismatch in {what}"),
            SnapError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
            SnapError::Mismatch(what) => write!(f, "snapshot does not match this session: {what}"),
            SnapError::Injected => write!(f, "snapshot fault injected by failpoint"),
        }
    }
}

impl std::error::Error for SnapError {}

/// The empty-set policy of a snapshotted session, as plain data.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum PolicySnap {
    /// `EmptySetPolicy::Forbidden`.
    #[default]
    Forbidden,
    /// `EmptySetPolicy::Annotated` with the sorted rendered rooted paths
    /// declared non-empty.
    Annotated(Vec<String>),
}

/// One relation's interned path table: the id space and the compiled
/// prefix / extension / follower matrices, dumped verbatim so a thaw can
/// verify the rebuilt tables are bit-identical before trusting the pools.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableSnap {
    /// Relation label text.
    pub relation: String,
    /// Bitset width in 64-bit words.
    pub words: u64,
    /// Rendered paths in id order (id `i` = `paths[i]`).
    pub paths: Vec<String>,
    /// Parent id per path; `u32::MAX` encodes "no parent".
    pub parents: Vec<u32>,
    /// Set-of-records flag per path.
    pub set_record: Vec<bool>,
    /// Row `i`: the raw words of `prefixes_of(i)`.
    pub prefixes: Vec<Vec<u64>>,
    /// Row `i`: the raw words of `extensions_of(i)`.
    pub extensions: Vec<Vec<u64>>,
    /// Row `i`: the raw words of `followers_of(i)`.
    pub followers: Vec<Vec<u64>>,
}

/// Provenance of one pool dependency, mirroring the engine's `Prov`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProvSnap {
    /// Normalized form of the i-th NFD of Σ.
    Given(u64),
    /// Prefix-weakening of pool entry `dep`, shortening path `shortened`.
    Prefix {
        /// Pool index of the premise.
        dep: u64,
        /// Path id that was shortened.
        shortened: u32,
    },
    /// Full-locality of pool entry `dep` at prefix `x`.
    FullLocality {
        /// Pool index of the premise.
        dep: u64,
        /// Path id of the localized prefix.
        x: u32,
    },
    /// Resolution of `target` with `supplier` on path `on`.
    Resolve {
        /// Pool index of the rewritten dependency.
        target: u64,
        /// Pool index of the supplying dependency.
        supplier: u64,
        /// Path id that was discharged.
        on: u32,
    },
    /// Singleton introduction at set-valued path `x`.
    Singleton {
        /// Path id of the singleton set.
        x: u32,
    },
}

/// One compiled dependency of a frozen pool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DepSnap {
    /// LHS bitset as raw words.
    pub lhs: Vec<u64>,
    /// RHS path id.
    pub rhs: u32,
    /// How the dependency was derived.
    pub prov: ProvSnap,
    /// Subsumption flag at freeze time.
    pub subsumed: bool,
}

/// One relation's saturated pool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolSnap {
    /// Relation label text.
    pub relation: String,
    /// Pool entries in pool order.
    pub deps: Vec<DepSnap>,
    /// Set-of-records path ids whose singleton rule has fired.
    pub singletons: Vec<u32>,
}

/// One warm closure-cache entry: `(relation, key words, closure words)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheEntrySnap {
    /// Relation label text.
    pub relation: String,
    /// The normalized LHS bitset the closure was computed for.
    pub key: Vec<u64>,
    /// The cached closure bitset.
    pub closure: Vec<u64>,
}

/// A decoded snapshot: everything needed to reinstall a compiled session
/// without re-running saturation, plus the source texts needed to verify
/// it (or rebuild from scratch when verification fails).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Schema source text (the `nfd_model` grammar), as rendered by
    /// `Schema`'s `Display`.
    pub schema_text: String,
    /// Σ source text (`;`-separated NFDs), as rendered by `Nfd`'s
    /// `Display`.
    pub sigma_text: String,
    /// The empty-set policy the pools were saturated under.
    pub policy: PolicySnap,
    /// Per-relation path-table dumps, sorted by relation text.
    pub tables: Vec<TableSnap>,
    /// Per-relation saturated pools, sorted by relation text.
    pub pools: Vec<PoolSnap>,
    /// Warm closure-cache entries (empty when the cache was cold or
    /// deliberately excluded).
    pub cache: Vec<CacheEntrySnap>,
}

/// Result of a lenient decode: the best [`Snapshot`] the bytes support.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Salvaged {
    /// The recovered snapshot. When `degraded` is true its compiled
    /// sections (`tables`, `pools`, `cache`) are empty and only the text
    /// sections should be trusted.
    pub snapshot: Snapshot,
    /// True when any compiled section (or the file trailer) failed
    /// verification and was dropped: the caller must fall back to a
    /// fresh compile from the embedded texts.
    pub degraded: bool,
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320)
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// The CRC-32 (IEEE) of `bytes` — the checksum used for every section
/// and for the whole-file trailer.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn words(&mut self, w: &[u64]) {
        self.u64(w.len() as u64);
        for &x in w {
            self.u64(x);
        }
    }
}

fn encode_policy(e: &mut Enc, p: &PolicySnap) {
    match p {
        PolicySnap::Forbidden => e.u8(0),
        PolicySnap::Annotated(paths) => {
            e.u8(1);
            e.u64(paths.len() as u64);
            for p in paths {
                e.str(p);
            }
        }
    }
}

fn encode_tables(e: &mut Enc, tables: &[TableSnap]) {
    e.u64(tables.len() as u64);
    for t in tables {
        e.str(&t.relation);
        e.u64(t.words);
        e.u64(t.paths.len() as u64);
        for p in &t.paths {
            e.str(p);
        }
        e.u64(t.parents.len() as u64);
        for &p in &t.parents {
            e.u32(p);
        }
        e.u64(t.set_record.len() as u64);
        for &b in &t.set_record {
            e.u8(b as u8);
        }
        for matrix in [&t.prefixes, &t.extensions, &t.followers] {
            e.u64(matrix.len() as u64);
            for row in matrix {
                e.words(row);
            }
        }
    }
}

fn encode_prov(e: &mut Enc, p: &ProvSnap) {
    match p {
        ProvSnap::Given(i) => {
            e.u8(0);
            e.u64(*i);
        }
        ProvSnap::Prefix { dep, shortened } => {
            e.u8(1);
            e.u64(*dep);
            e.u32(*shortened);
        }
        ProvSnap::FullLocality { dep, x } => {
            e.u8(2);
            e.u64(*dep);
            e.u32(*x);
        }
        ProvSnap::Resolve {
            target,
            supplier,
            on,
        } => {
            e.u8(3);
            e.u64(*target);
            e.u64(*supplier);
            e.u32(*on);
        }
        ProvSnap::Singleton { x } => {
            e.u8(4);
            e.u32(*x);
        }
    }
}

fn encode_pools(e: &mut Enc, pools: &[PoolSnap]) {
    e.u64(pools.len() as u64);
    for pool in pools {
        e.str(&pool.relation);
        e.u64(pool.deps.len() as u64);
        for d in &pool.deps {
            e.words(&d.lhs);
            e.u32(d.rhs);
            encode_prov(e, &d.prov);
            e.u8(d.subsumed as u8);
        }
        e.u64(pool.singletons.len() as u64);
        for &s in &pool.singletons {
            e.u32(s);
        }
    }
}

fn encode_cache(e: &mut Enc, cache: &[CacheEntrySnap]) {
    e.u64(cache.len() as u64);
    for c in cache {
        e.str(&c.relation);
        e.words(&c.key);
        e.words(&c.closure);
    }
}

fn push_section(out: &mut Vec<u8>, tag: u32, payload: &[u8]) {
    out.extend_from_slice(&tag.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

/// Serializes a snapshot to its on-disk byte representation. Encoding is
/// deterministic: the same snapshot value always yields the same bytes
/// (section order is fixed; the facade sorts relations and cache entries
/// before building the [`Snapshot`]).
pub fn encode(snap: &Snapshot) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());

    let mut e = Enc { buf: Vec::new() };
    e.str(&snap.schema_text);
    push_section(&mut out, TAG_SCHEMA, &e.buf);

    e.buf.clear();
    e.str(&snap.sigma_text);
    push_section(&mut out, TAG_SIGMA, &e.buf);

    e.buf.clear();
    encode_policy(&mut e, &snap.policy);
    push_section(&mut out, TAG_POLICY, &e.buf);

    e.buf.clear();
    encode_tables(&mut e, &snap.tables);
    push_section(&mut out, TAG_TABLES, &e.buf);

    e.buf.clear();
    encode_pools(&mut e, &snap.pools);
    push_section(&mut out, TAG_POOLS, &e.buf);

    if !snap.cache.is_empty() {
        e.buf.clear();
        encode_cache(&mut e, &snap.cache);
        push_section(&mut out, TAG_CACHE, &e.buf);
    }

    let file_crc = crc32(&out);
    push_section(&mut out, TAG_END, &file_crc.to_le_bytes());
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Bounds-checked little-endian reader over a byte slice. Every read
/// names what it was reading so truncation errors are self-describing.
struct Cur<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(bytes: &'a [u8]) -> Cur<'a> {
        Cur { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.pos)
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated(what.to_string()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, SnapError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, SnapError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, SnapError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Validates a decoded element count against the bytes actually
    /// available (`min_elem` bytes per element), so a corrupt count can
    /// never size an allocation beyond the input itself.
    fn count(&self, n: u64, min_elem: usize, what: &str) -> Result<usize, SnapError> {
        let cap = self.remaining() / min_elem.max(1);
        if n as usize > cap {
            return Err(SnapError::Malformed(format!(
                "{what} count {n} exceeds remaining input"
            )));
        }
        Ok(n as usize)
    }

    fn str(&mut self, what: &str) -> Result<String, SnapError> {
        let n = self.u64(what)?;
        let n = self.count(n, 1, what)?;
        let raw = self.take(n, what)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| SnapError::Malformed(format!("{what} is not UTF-8")))
    }

    fn words(&mut self, what: &str) -> Result<Vec<u64>, SnapError> {
        let n = self.u64(what)?;
        let n = self.count(n, 8, what)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64(what)?);
        }
        Ok(out)
    }
}

fn decode_policy(c: &mut Cur<'_>) -> Result<PolicySnap, SnapError> {
    match c.u8("policy tag")? {
        0 => Ok(PolicySnap::Forbidden),
        1 => {
            let n = c.u64("policy path count")?;
            let n = c.count(n, 8, "policy paths")?;
            let mut paths = Vec::with_capacity(n);
            for _ in 0..n {
                paths.push(c.str("policy path")?);
            }
            Ok(PolicySnap::Annotated(paths))
        }
        t => Err(SnapError::Malformed(format!("unknown policy tag {t}"))),
    }
}

fn decode_tables(c: &mut Cur<'_>) -> Result<Vec<TableSnap>, SnapError> {
    let n = c.u64("table count")?;
    let n = c.count(n, 8, "tables")?;
    let mut tables = Vec::with_capacity(n);
    for _ in 0..n {
        let relation = c.str("table relation")?;
        let words = c.u64("table words")?;
        let paths_n = c.u64("table path count")?;
        let paths_n = c.count(paths_n, 8, "table paths")?;
        let mut paths = Vec::with_capacity(paths_n);
        for _ in 0..paths_n {
            paths.push(c.str("table path")?);
        }
        let parents_n = c.u64("table parent count")?;
        let parents_n = c.count(parents_n, 4, "table parents")?;
        let mut parents = Vec::with_capacity(parents_n);
        for _ in 0..parents_n {
            parents.push(c.u32("table parent")?);
        }
        let sr_n = c.u64("table set-record count")?;
        let sr_n = c.count(sr_n, 1, "table set-record flags")?;
        let mut set_record = Vec::with_capacity(sr_n);
        for _ in 0..sr_n {
            set_record.push(match c.u8("table set-record flag")? {
                0 => false,
                1 => true,
                b => {
                    return Err(SnapError::Malformed(format!(
                        "set-record flag byte {b} is not a bool"
                    )))
                }
            });
        }
        let mut matrices: Vec<Vec<Vec<u64>>> = Vec::with_capacity(3);
        for name in ["prefix matrix", "extension matrix", "follower matrix"] {
            let rows = c.u64(name)?;
            let rows = c.count(rows, 8, name)?;
            let mut matrix = Vec::with_capacity(rows);
            for _ in 0..rows {
                matrix.push(c.words(name)?);
            }
            matrices.push(matrix);
        }
        let followers = matrices.pop().unwrap_or_default();
        let extensions = matrices.pop().unwrap_or_default();
        let prefixes = matrices.pop().unwrap_or_default();
        tables.push(TableSnap {
            relation,
            words,
            paths,
            parents,
            set_record,
            prefixes,
            extensions,
            followers,
        });
    }
    Ok(tables)
}

fn decode_prov(c: &mut Cur<'_>) -> Result<ProvSnap, SnapError> {
    match c.u8("provenance tag")? {
        0 => Ok(ProvSnap::Given(c.u64("given index")?)),
        1 => Ok(ProvSnap::Prefix {
            dep: c.u64("prefix dep")?,
            shortened: c.u32("prefix shortened")?,
        }),
        2 => Ok(ProvSnap::FullLocality {
            dep: c.u64("locality dep")?,
            x: c.u32("locality x")?,
        }),
        3 => Ok(ProvSnap::Resolve {
            target: c.u64("resolve target")?,
            supplier: c.u64("resolve supplier")?,
            on: c.u32("resolve on")?,
        }),
        4 => Ok(ProvSnap::Singleton {
            x: c.u32("singleton x")?,
        }),
        t => Err(SnapError::Malformed(format!("unknown provenance tag {t}"))),
    }
}

fn decode_pools(c: &mut Cur<'_>) -> Result<Vec<PoolSnap>, SnapError> {
    let n = c.u64("pool count")?;
    let n = c.count(n, 8, "pools")?;
    let mut pools = Vec::with_capacity(n);
    for _ in 0..n {
        let relation = c.str("pool relation")?;
        let deps_n = c.u64("pool dep count")?;
        let deps_n = c.count(deps_n, 14, "pool deps")?;
        let mut deps = Vec::with_capacity(deps_n);
        for _ in 0..deps_n {
            let lhs = c.words("dep lhs")?;
            let rhs = c.u32("dep rhs")?;
            let prov = decode_prov(c)?;
            let subsumed = match c.u8("dep subsumed flag")? {
                0 => false,
                1 => true,
                b => {
                    return Err(SnapError::Malformed(format!(
                        "subsumed flag byte {b} is not a bool"
                    )))
                }
            };
            deps.push(DepSnap {
                lhs,
                rhs,
                prov,
                subsumed,
            });
        }
        let singles_n = c.u64("singleton count")?;
        let singles_n = c.count(singles_n, 4, "singletons")?;
        let mut singletons = Vec::with_capacity(singles_n);
        for _ in 0..singles_n {
            singletons.push(c.u32("singleton id")?);
        }
        pools.push(PoolSnap {
            relation,
            deps,
            singletons,
        });
    }
    Ok(pools)
}

fn decode_cache(c: &mut Cur<'_>) -> Result<Vec<CacheEntrySnap>, SnapError> {
    let n = c.u64("cache entry count")?;
    let n = c.count(n, 8, "cache entries")?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        entries.push(CacheEntrySnap {
            relation: c.str("cache relation")?,
            key: c.words("cache key")?,
            closure: c.words("cache closure")?,
        });
    }
    Ok(entries)
}

/// One framed section as sliced (and CRC-verified) out of the file.
struct Section<'a> {
    tag: u32,
    payload: &'a [u8],
    /// Byte offset of this section's tag within the whole file — the
    /// file-CRC trailer covers everything before the END section's tag.
    start: usize,
}

fn next_section<'a>(c: &mut Cur<'a>) -> Result<Section<'a>, SnapError> {
    let start = c.pos;
    let tag = c.u32("section tag")?;
    let len = c.u64("section length")?;
    // The +4 reserves the section's own CRC field, so a corrupt length
    // can never claim the trailing checksum bytes as payload.
    if (len as u128) + 4 > c.remaining() as u128 {
        return Err(SnapError::Truncated(format!("section {tag} payload")));
    }
    let payload = c.take(len as usize, "section payload")?;
    let stored = c.u32("section checksum")?;
    if crc32(payload) != stored {
        return Err(SnapError::Checksum(section_name(tag).to_string()));
    }
    Ok(Section {
        tag,
        payload,
        start,
    })
}

fn section_name(tag: u32) -> &'static str {
    match tag {
        TAG_SCHEMA => "SCHEMA",
        TAG_SIGMA => "SIGMA",
        TAG_POLICY => "POLICY",
        TAG_TABLES => "TABLES",
        TAG_POOLS => "POOLS",
        TAG_CACHE => "CACHE",
        TAG_END => "END",
        _ => "unknown section",
    }
}

/// Requires the payload cursor to be fully consumed — trailing garbage
/// inside a CRC-valid section still counts as malformed.
fn finish_payload(c: &Cur<'_>, tag: u32) -> Result<(), SnapError> {
    if c.remaining() != 0 {
        return Err(SnapError::Malformed(format!(
            "{} section has {} trailing byte(s)",
            section_name(tag),
            c.remaining()
        )));
    }
    Ok(())
}

fn decode_header(c: &mut Cur<'_>) -> Result<(), SnapError> {
    let magic = c.take(MAGIC.len(), "magic")?;
    if magic != MAGIC {
        return Err(SnapError::BadMagic);
    }
    let version = c.u32("format version")?;
    if version != FORMAT_VERSION {
        return Err(SnapError::UnsupportedVersion(version));
    }
    Ok(())
}

/// Strictly decodes snapshot bytes: every section CRC, the fixed section
/// order, the whole-file trailer CRC, and full structural validation. Any
/// deviation is a typed [`SnapError`]; this function never panics.
pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapError> {
    fail_point!("snap::verify", Err(SnapError::Injected));
    if bytes.len() as u64 > MAX_SNAPSHOT_BYTES {
        return Err(SnapError::Malformed(format!(
            "snapshot of {} bytes exceeds the {MAX_SNAPSHOT_BYTES}-byte ceiling",
            bytes.len()
        )));
    }
    let mut c = Cur::new(bytes);
    decode_header(&mut c)?;

    let mut snap = Snapshot::default();
    let order = [TAG_SCHEMA, TAG_SIGMA, TAG_POLICY, TAG_TABLES, TAG_POOLS];
    for &expect in &order {
        let s = next_section(&mut c)?;
        if s.tag != expect {
            return Err(SnapError::Malformed(format!(
                "expected {} section, found {}",
                section_name(expect),
                section_name(s.tag)
            )));
        }
        let mut p = Cur::new(s.payload);
        match expect {
            TAG_SCHEMA => snap.schema_text = p.str("schema text")?,
            TAG_SIGMA => snap.sigma_text = p.str("sigma text")?,
            TAG_POLICY => snap.policy = decode_policy(&mut p)?,
            TAG_TABLES => snap.tables = decode_tables(&mut p)?,
            _ => snap.pools = decode_pools(&mut p)?,
        }
        finish_payload(&p, expect)?;
    }

    let s = next_section(&mut c)?;
    let end = if s.tag == TAG_CACHE {
        let mut p = Cur::new(s.payload);
        snap.cache = decode_cache(&mut p)?;
        finish_payload(&p, TAG_CACHE)?;
        next_section(&mut c)?
    } else {
        s
    };
    if end.tag != TAG_END {
        return Err(SnapError::Malformed(format!(
            "expected END section, found {}",
            section_name(end.tag)
        )));
    }
    let mut p = Cur::new(end.payload);
    let stored_file_crc = p.u32("file checksum")?;
    finish_payload(&p, TAG_END)?;
    if crc32(&bytes[..end.start]) != stored_file_crc {
        return Err(SnapError::Checksum("file trailer".to_string()));
    }
    if c.remaining() != 0 {
        return Err(SnapError::Malformed(format!(
            "{} byte(s) of trailing garbage after END",
            c.remaining()
        )));
    }
    Ok(snap)
}

/// Leniently decodes snapshot bytes, salvaging what verification allows.
///
/// The header and the three text sections (SCHEMA, SIGMA, POLICY) are
/// mandatory — if any of them is damaged the snapshot is useless and the
/// error is returned. The compiled sections (TABLES, POOLS, CACHE) and
/// the file trailer are best-effort: the first failure drops every
/// compiled section and marks the result degraded, telling the caller to
/// fall back to a fresh compile from the embedded texts. Used by `serve`
/// `RESTORE`, where a damaged-but-salvageable snapshot should admit the
/// tenant cold rather than reject it.
pub fn decode_lenient(bytes: &[u8]) -> Result<Salvaged, SnapError> {
    fail_point!("snap::verify", Err(SnapError::Injected));
    // The strict path is also the fast path: fully valid bytes salvage
    // to themselves.
    match decode(bytes) {
        Ok(snapshot) => {
            return Ok(Salvaged {
                snapshot,
                degraded: false,
            })
        }
        Err(SnapError::Injected) => return Err(SnapError::Injected),
        Err(_) => {}
    }
    if bytes.len() as u64 > MAX_SNAPSHOT_BYTES {
        return Err(SnapError::Malformed(format!(
            "snapshot of {} bytes exceeds the {MAX_SNAPSHOT_BYTES}-byte ceiling",
            bytes.len()
        )));
    }
    let mut c = Cur::new(bytes);
    decode_header(&mut c)?;
    let mut snap = Snapshot::default();
    for &expect in &[TAG_SCHEMA, TAG_SIGMA, TAG_POLICY] {
        let s = next_section(&mut c)?;
        if s.tag != expect {
            return Err(SnapError::Malformed(format!(
                "expected {} section, found {}",
                section_name(expect),
                section_name(s.tag)
            )));
        }
        let mut p = Cur::new(s.payload);
        match expect {
            TAG_SCHEMA => snap.schema_text = p.str("schema text")?,
            TAG_SIGMA => snap.sigma_text = p.str("sigma text")?,
            _ => snap.policy = decode_policy(&mut p)?,
        }
        finish_payload(&p, expect)?;
    }
    // Text sections are intact; the strict decode failed somewhere after
    // them, so the compiled state is untrustworthy. Drop it wholesale —
    // a half-trusted pool is exactly the hybrid state thaw must never
    // produce.
    snap.tables.clear();
    snap.pools.clear();
    snap.cache.clear();
    Ok(Salvaged {
        snapshot: snap,
        degraded: true,
    })
}

// ---------------------------------------------------------------------
// File I/O
// ---------------------------------------------------------------------

/// Reads a snapshot file into memory, bounding the read at
/// [`MAX_SNAPSHOT_BYTES`].
pub fn read_file(path: &std::path::Path) -> Result<Vec<u8>, SnapError> {
    fail_point!(
        "snap::read",
        Err(SnapError::Io("injected read fault".to_string()))
    );
    let meta =
        std::fs::metadata(path).map_err(|e| SnapError::Io(format!("{}: {e}", path.display())))?;
    if meta.len() > MAX_SNAPSHOT_BYTES {
        return Err(SnapError::Malformed(format!(
            "snapshot of {} bytes exceeds the {MAX_SNAPSHOT_BYTES}-byte ceiling",
            meta.len()
        )));
    }
    std::fs::read(path).map_err(|e| SnapError::Io(format!("{}: {e}", path.display())))
}

/// Writes snapshot bytes crash-atomically: a sibling temp file is
/// written, flushed and fsynced, then renamed over `path`. A crash (or
/// injected fault) at any point leaves either the old snapshot or the
/// new one — never a torn file. The temp file is cleaned up on failure,
/// best-effort.
pub fn write_atomic(path: &std::path::Path, bytes: &[u8]) -> Result<(), SnapError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let result = write_atomic_inner(path, &tmp, bytes);
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

fn write_atomic_inner(
    path: &std::path::Path,
    tmp: &std::path::Path,
    bytes: &[u8],
) -> Result<(), SnapError> {
    fail_point!(
        "snap::write",
        Err(SnapError::Io("injected write fault".to_string()))
    );
    let mut f =
        std::fs::File::create(tmp).map_err(|e| SnapError::Io(format!("{}: {e}", tmp.display())))?;
    f.write_all(bytes)
        .map_err(|e| SnapError::Io(format!("{}: {e}", tmp.display())))?;
    f.sync_all()
        .map_err(|e| SnapError::Io(format!("{}: {e}", tmp.display())))?;
    drop(f);
    fail_point!(
        "snap::rename",
        Err(SnapError::Io("injected rename fault".to_string()))
    );
    std::fs::rename(tmp, path).map_err(|e| SnapError::Io(format!("{}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            schema_text: "R : {<A: int, B: int>};\n".to_string(),
            sigma_text: "R:[A -> B];".to_string(),
            policy: PolicySnap::Annotated(vec!["R:B".to_string()]),
            tables: vec![TableSnap {
                relation: "R".to_string(),
                words: 1,
                paths: vec!["A".to_string(), "B".to_string()],
                parents: vec![u32::MAX, u32::MAX],
                set_record: vec![false, false],
                prefixes: vec![vec![0b01], vec![0b10]],
                extensions: vec![vec![0], vec![0]],
                followers: vec![vec![0b01], vec![0b10]],
            }],
            pools: vec![PoolSnap {
                relation: "R".to_string(),
                deps: vec![DepSnap {
                    lhs: vec![0b01],
                    rhs: 1,
                    prov: ProvSnap::Given(0),
                    subsumed: false,
                }],
                singletons: vec![],
            }],
            cache: vec![CacheEntrySnap {
                relation: "R".to_string(),
                key: vec![0b01],
                closure: vec![0b11],
            }],
        }
    }

    #[test]
    fn round_trip_is_identity() {
        let snap = sample();
        let bytes = encode(&snap);
        assert_eq!(decode(&bytes).unwrap(), snap);
        // Deterministic bytes.
        assert_eq!(encode(&snap), bytes);
    }

    #[test]
    fn round_trip_without_cache_section() {
        let mut snap = sample();
        snap.cache.clear();
        let bytes = encode(&snap);
        assert_eq!(decode(&bytes).unwrap(), snap);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = encode(&sample());
        for n in 0..bytes.len() {
            let err = decode(&bytes[..n]).expect_err("truncation must be rejected");
            assert!(
                matches!(
                    err,
                    SnapError::Truncated(_)
                        | SnapError::Checksum(_)
                        | SnapError::Malformed(_)
                        | SnapError::BadMagic
                        | SnapError::UnsupportedVersion(_)
                ),
                "truncation to {n} gave {err:?}"
            );
        }
    }

    #[test]
    fn every_byte_flip_is_rejected() {
        let bytes = encode(&sample());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xFF;
            assert!(decode(&bad).is_err(), "flip at byte {i} was accepted");
        }
    }

    #[test]
    fn lenient_salvages_text_when_compiled_sections_are_damaged() {
        let snap = sample();
        let bytes = encode(&snap);
        // Find the POOLS payload and flip a byte inside it.
        let tables_payload_start = bytes
            .windows(4)
            .position(|w| w == TAG_POOLS.to_le_bytes())
            .unwrap();
        let mut bad = bytes.clone();
        bad[tables_payload_start + 12 + 4] ^= 0xFF; // inside the POOLS payload
        assert!(decode(&bad).is_err());
        let salvaged = decode_lenient(&bad).expect("text sections intact");
        assert!(salvaged.degraded);
        assert_eq!(salvaged.snapshot.schema_text, snap.schema_text);
        assert_eq!(salvaged.snapshot.sigma_text, snap.sigma_text);
        assert_eq!(salvaged.snapshot.policy, snap.policy);
        assert!(salvaged.snapshot.pools.is_empty());
        assert!(salvaged.snapshot.tables.is_empty());
    }

    #[test]
    fn lenient_rejects_damaged_text_sections() {
        let bytes = encode(&sample());
        // The schema payload starts right after the header + section
        // frame; flip a byte of the schema text itself.
        let off = MAGIC.len() + 4 + 4 + 8 + 8 + 2;
        let mut bad = bytes.clone();
        bad[off] ^= 0xFF;
        assert!(decode(&bad).is_err());
        assert!(decode_lenient(&bad).is_err());
    }

    #[test]
    fn lenient_on_clean_bytes_is_not_degraded() {
        let bytes = encode(&sample());
        let salvaged = decode_lenient(&bytes).unwrap();
        assert!(!salvaged.degraded);
        assert_eq!(salvaged.snapshot, sample());
    }

    #[test]
    fn version_skew_is_typed() {
        let mut bytes = encode(&sample());
        bytes[8] = 0xFE; // version field, little-endian low byte
        match decode(&bytes) {
            Err(SnapError::UnsupportedVersion(v)) => assert_eq!(v, 0xFE + (FORMAT_VERSION & !0xFF)),
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = encode(&sample());
        bytes[0] = b'X';
        assert_eq!(decode(&bytes), Err(SnapError::BadMagic));
    }

    #[test]
    fn corrupt_count_fields_cannot_balloon_allocations() {
        // Craft a payload whose count field claims u64::MAX entries; the
        // decoder must reject it before sizing anything from it.
        let mut bytes = encode(&sample());
        // Find the TABLES section payload and smash its leading count.
        let pos = bytes
            .windows(4)
            .position(|w| w == TAG_TABLES.to_le_bytes())
            .unwrap();
        for b in &mut bytes[pos + 12..pos + 20] {
            *b = 0xFF;
        }
        let err = decode(&bytes).expect_err("ballooned count must be rejected");
        // The CRC catches it first (the count bytes are covered), which
        // is fine — the important property is "typed error, no panic,
        // no allocation".
        assert!(matches!(
            err,
            SnapError::Checksum(_) | SnapError::Malformed(_) | SnapError::Truncated(_)
        ));
    }

    #[test]
    fn atomic_write_round_trips_and_replaces() {
        let dir = std::env::temp_dir().join(format!("nfd_snap_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.nfdsnap");
        let bytes = encode(&sample());
        write_atomic(&path, &bytes).unwrap();
        assert_eq!(read_file(&path).unwrap(), bytes);
        // Overwrite with a different snapshot: the rename replaces.
        let mut other = sample();
        other.sigma_text.push_str(" R:[B -> A];");
        let bytes2 = encode(&other);
        write_atomic(&path, &bytes2).unwrap();
        assert_eq!(read_file(&path).unwrap(), bytes2);
        // No temp file left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is 0xCBF43926; of "" it is 0.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn errors_render_human_readably() {
        for (err, needle) in [
            (SnapError::BadMagic, "magic"),
            (SnapError::UnsupportedVersion(9), "version 9"),
            (SnapError::Truncated("x".into()), "truncated"),
            (SnapError::Checksum("POOLS".into()), "POOLS"),
            (SnapError::Malformed("y".into()), "malformed"),
            (SnapError::Mismatch("z".into()), "does not match"),
            (SnapError::Injected, "injected"),
        ] {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
