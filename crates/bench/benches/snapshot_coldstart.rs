//! Bench `snapshot_coldstart` (EXPERIMENTS.md §B17): warm-starting a
//! session from an `nfd-snap` image against compiling it fresh.
//!
//! A snapshot stores the *outputs* of compilation — interned path
//! tables, the saturated Σ pool with provenance, the warm closure
//! cache — so a thaw replaces the saturation fixpoint (the superlinear
//! part of startup) with a validated linear replay of the frozen pool.
//! This harness measures the full cold-start path a CLI warm start
//! actually performs — read the image from disk, strictly decode it
//! (every section CRC checked), thaw, answer one query — against the
//! only alternative: parse-free fresh compilation over the same
//! in-memory schema and Σ, then the same query.
//!
//! * `wide_sigma_coldstart` — the headline shape: one relation with a
//!   wide overlapping Σ (the B14/B15 family) where saturation dominates
//!   startup and the thaw's linear replay wins.
//! * `multi_wide_coldstart` — 8 isomorphic wide-Σ relations: the
//!   schema-registry restart shape (`nfdtool serve` RESTORE).
//! * `course_coldstart` — the honest row: the paper's 7-NFD Course
//!   schema, where there is almost no saturation to skip and the CRC
//!   sweep + validated replay is pure overhead, so fresh compilation
//!   wins or ties and the record says so.
//!
//! Custom `harness = false` main emitting `BENCH_B17.json` (path
//! overridable via `BENCH_B17_OUT`) in the shared record schema.
//! Honours the `--test` smoke flag.

use nfd::session::Session;
use nfd_bench::*;
use nfd_core::{EmptySetPolicy, Nfd, TierPreference};
use nfd_govern::Budget;
use nfd_model::Schema;
use std::hint::black_box;
use std::time::Instant;

/// Best-of-`iters` wall time of `f`, in nanoseconds (minimum, to shed
/// scheduler noise).
fn time_ns<T>(iters: usize, mut f: impl FnMut() -> T) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..iters {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_nanos());
    }
    best
}

fn fresh<'s>(schema: &'s Schema, sigma: &[Nfd]) -> Session<'s> {
    Session::with_budget(schema, sigma, EmptySetPolicy::Forbidden, Budget::standard()).unwrap()
}

/// Fresh compile + one query: the cold start a snapshot-less stack pays.
fn fresh_coldstart_ns(schema: &Schema, sigma: &[Nfd], goal: &Nfd, iters: usize) -> u128 {
    time_ns(iters, || fresh(schema, sigma).implies(goal).unwrap())
}

/// Disk read → strict decode → thaw + the same query: the warm start.
/// Returns the best-of time and the image size in bytes.
fn thaw_coldstart_ns(
    schema: &Schema,
    sigma: &[Nfd],
    goal: &Nfd,
    path: &std::path::Path,
    iters: usize,
) -> (u128, usize) {
    let image = fresh(schema, sigma).freeze();
    let bytes = nfd::snap::encode(&image);
    nfd::snap::write_atomic(path, &bytes).unwrap();
    let ns = time_ns(iters, || {
        let bytes = nfd::snap::read_file(path).unwrap();
        let decoded = nfd::snap::decode(&bytes).unwrap();
        let session = Session::thaw(
            schema,
            sigma,
            EmptySetPolicy::Forbidden,
            Budget::standard(),
            TierPreference::Auto,
            &decoded,
        )
        .unwrap();
        session.implies(goal).unwrap()
    });
    (ns, bytes.len())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let iters = if smoke { 1 } else { 5 };
    let dir = std::env::temp_dir().join(format!("nfd-bench-b17-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut rows: Vec<BenchRecord> = Vec::new();
    let mut sizes: Vec<(String, usize)> = Vec::new();

    // Headline: one relation, wide overlapping Σ — saturation dominates
    // the fresh compile, the thaw replays its output linearly.
    const ATTRS: usize = 24;
    let wide_sizes: &[usize] = if smoke { &[16] } else { &[64, 128] };
    for &n in wide_sizes {
        let schema = flat_schema(ATTRS);
        let sigma = wide_sigma(&schema, ATTRS, n);
        let goal = Nfd::parse(&schema, "R:[a0, a1 -> a2]").unwrap();
        let path = dir.join(format!("wide-{n}.snap"));
        let (thaw_ns, size) = thaw_coldstart_ns(&schema, &sigma, &goal, &path, iters);
        sizes.push((format!("wide_sigma/{n}"), size));
        rows.push(BenchRecord {
            bench_id: "B17",
            workload: "wide_sigma_coldstart",
            param: n,
            baseline: "fresh",
            baseline_ns: fresh_coldstart_ns(&schema, &sigma, &goal, iters),
            candidate: "thaw",
            candidate_ns: thaw_ns,
        });
    }

    // Registry-restart shape: 8 isomorphic wide-Σ relations.
    const RELS: usize = 8;
    let multi_sizes: &[usize] = if smoke { &[8] } else { &[32, 64] };
    let multi_iters = if smoke { 1 } else { 3 };
    for &n in multi_sizes {
        let schema = multi_flat_schema(RELS, ATTRS);
        let sigma = multi_wide_sigma(&schema, RELS, ATTRS, n);
        let goal = Nfd::parse(&schema, "R0:[r0a0, r0a1 -> r0a2]").unwrap();
        let path = dir.join(format!("multi-{n}.snap"));
        let (thaw_ns, size) = thaw_coldstart_ns(&schema, &sigma, &goal, &path, multi_iters);
        sizes.push((format!("multi_wide/{n}"), size));
        rows.push(BenchRecord {
            bench_id: "B17",
            workload: "multi_wide_coldstart",
            param: n,
            baseline: "fresh",
            baseline_ns: fresh_coldstart_ns(&schema, &sigma, &goal, multi_iters),
            candidate: "thaw",
            candidate_ns: thaw_ns,
        });
    }

    // Honest row: the paper's Course schema — Σ of seven NFDs leaves
    // almost no saturation to skip, so the checksum sweep and validated
    // replay are pure overhead here.
    let (schema, sigma) = course();
    let goal = Nfd::parse(&schema, "Course:[time, students:sid -> books]").unwrap();
    let path = dir.join("course.snap");
    let (thaw_ns, size) = thaw_coldstart_ns(&schema, &sigma, &goal, &path, iters);
    sizes.push(("course".to_string(), size));
    rows.push(BenchRecord {
        bench_id: "B17",
        workload: "course_coldstart",
        param: sigma.len(),
        baseline: "fresh",
        baseline_ns: fresh_coldstart_ns(&schema, &sigma, &goal, iters),
        candidate: "thaw",
        candidate_ns: thaw_ns,
    });

    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "B17 snapshot cold start — read+decode+thaw vs fresh compile ({} iteration(s), best-of)",
        iters
    );
    println!(
        "{:<24} {:>6} {:>10} {:>14} {:>10} {:>14} {:>9}",
        "workload", "param", "baseline", "ns", "candidate", "ns", "speedup"
    );
    for r in &rows {
        println!(
            "{:<24} {:>6} {:>10} {:>14} {:>10} {:>14} {:>8.2}x",
            r.workload,
            r.param,
            r.baseline,
            r.baseline_ns,
            r.candidate,
            r.candidate_ns,
            r.speedup()
        );
    }
    let image_sizes = format!(
        "{{{}}}",
        sizes
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("image sizes (bytes): {image_sizes}");

    BenchReport {
        bench_id: "B17",
        bench: "snapshot_coldstart",
        mode: if smoke { "smoke" } else { "full" },
        iters,
        records: rows,
        extra: vec![("image_bytes".to_string(), image_sizes)],
    }
    .write("BENCH_B17_OUT");
}
