//! Bench `tier_select` (EXPERIMENTS.md §B15): the tiered engine router
//! against the fixed baselines it arbitrates between.
//!
//! B14 exposed the motivating asymmetry: the indexed kernel wins big on
//! wide-Σ builds but loses (≈0.6×) on uncached one-shot flat-chain
//! queries, the naive scan's best case. The tiered router is the fix,
//! and this harness measures it on exactly those shapes:
//!
//! * `flat_chain_uncached` — the former 0.6× case. One cold all-pairs
//!   sweep through a bare auto-routed engine (no closure cache), against
//!   the naive engine. Tier 0's goal-directed pass scan plus mid-sweep
//!   promotion to the dense matrix must hold this at ≥ 1.0×.
//! * `flat_chain_sweep_dense` — the B14 cached-sweep shape (repeated
//!   all-pairs passes) with the candidate forced onto the dense tier,
//!   against the naive engine recomputing every chain. The dense closure
//!   matrix answers each goal with a handful of bitset word ops, so this
//!   is the ≥ 10× acceptance row.
//! * `ladder_goal_auto` / `wide_sigma_auto` — the remaining B14 query
//!   families through cold auto-routed sessions, confirming auto never
//!   gives back what the indexed kernel won.
//!
//! Custom `harness = false` main emitting `BENCH_B15.json` (path
//! overridable via `BENCH_B15_OUT`) in the shared record schema, for CI
//! to archive next to B14. Honours the `--test` smoke flag.

use nfd::session::Session;
use nfd_bench::*;
use nfd_core::engine::Engine;
use nfd_core::naive::NaiveEngine;
use nfd_core::{EmptySetPolicy, Nfd, SelectState, Tier, TierPreference};
use nfd_govern::Budget;
use nfd_model::Schema;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Best-of-`iters` wall time of `f`, in nanoseconds (minimum, to shed
/// scheduler noise).
fn time_ns<T>(iters: usize, mut f: impl FnMut() -> T) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..iters {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_nanos());
    }
    best
}

/// All-pairs single-attribute goals over a flat schema.
fn all_pairs_goals(schema: &Schema, n: usize) -> Vec<Nfd> {
    let mut goals = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                goals.push(Nfd::parse(schema, &format!("R:[a{i} -> a{j}]")).unwrap());
            }
        }
    }
    goals
}

/// Sweep `goals` `passes` times through a prebuilt naive engine.
fn naive_sweep_ns(naive: &NaiveEngine<'_>, goals: &[Nfd], passes: usize, iters: usize) -> u128 {
    time_ns(iters, || {
        (0..passes)
            .map(|_| goals.iter().filter(|g| naive.implies(g).unwrap()).count())
            .sum::<usize>()
    })
}

/// Sweep `goals` `passes` times through a cold tier-routed engine built
/// with `pref`: fresh selection state every iteration, so the router's
/// query counting, promotion and dense build all land inside the timed
/// region, and no closure cache — like-for-like against the bare naive
/// engine, exactly how B14 measured the indexed kernel.
fn cold_engine_sweep_ns(
    schema: &Schema,
    sigma: &[Nfd],
    pref: TierPreference,
    goals: &[Nfd],
    passes: usize,
    iters: usize,
) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..iters {
        let engine = Engine::new(schema, sigma)
            .unwrap()
            .with_engine_select(Arc::new(SelectState::new(pref)));
        let t = Instant::now();
        let implied = (0..passes)
            .map(|_| goals.iter().filter(|g| engine.implies(g).unwrap()).count())
            .sum::<usize>();
        black_box(implied);
        best = best.min(t.elapsed().as_nanos());
    }
    best
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let iters = if smoke { 1 } else { 5 };
    let mut rows: Vec<BenchRecord> = Vec::new();

    // The former 0.6× case: one cold, uncached all-pairs sweep.
    let flat_sizes: &[usize] = if smoke { &[8] } else { &[16, 24, 32] };
    for &n in flat_sizes {
        let schema = flat_schema(n);
        let sigma = flat_chain_sigma(&schema, n);
        let goals = all_pairs_goals(&schema, n);
        let naive = NaiveEngine::new(&schema, &sigma).unwrap();
        rows.push(BenchRecord {
            bench_id: "B15",
            workload: "flat_chain_uncached",
            param: n,
            baseline: "naive",
            baseline_ns: naive_sweep_ns(&naive, &goals, 1, iters),
            candidate: "auto",
            candidate_ns: cold_engine_sweep_ns(
                &schema,
                &sigma,
                TierPreference::Auto,
                &goals,
                1,
                iters,
            ),
        });
    }

    // The B14 cached-sweep shape, candidate forced onto the dense tier:
    // the matrix is built on the first query and every later goal is a
    // row union. Per-query fixed costs (goal interning, liveness polls)
    // are identical on both sides, so the ratio tracks chain length —
    // the larger sizes are where the dense tier's constant-time query
    // pulls decisively ahead of the naive pass scan's O(k·n).
    let dense_sizes: &[usize] = if smoke { &[8] } else { &[16, 24, 32, 48, 64] };
    for &n in dense_sizes {
        let schema = flat_schema(n);
        let sigma = flat_chain_sigma(&schema, n);
        let goals = all_pairs_goals(&schema, n);
        let naive = NaiveEngine::new(&schema, &sigma).unwrap();
        let passes = 4;
        rows.push(BenchRecord {
            bench_id: "B15",
            workload: "flat_chain_sweep_dense",
            param: n,
            baseline: "naive",
            baseline_ns: naive_sweep_ns(&naive, &goals, passes, iters),
            candidate: "dense",
            candidate_ns: cold_engine_sweep_ns(
                &schema,
                &sigma,
                TierPreference::Fixed(Tier::Dense),
                &goals,
                passes,
                iters,
            ),
        });
    }

    // Ladder: one deep goal, repeated — the closure cache and (once
    // promoted) the dense matrix both amortize it.
    let depths: &[usize] = if smoke { &[4] } else { &[6, 8] };
    for &depth in depths {
        let schema = ladder_schema(depth);
        let sigma = ladder_sigma(&schema, depth);
        let goals = vec![ladder_goal(&schema, depth)];
        let naive = NaiveEngine::new(&schema, &sigma).unwrap();
        let passes = 32;
        rows.push(BenchRecord {
            bench_id: "B15",
            workload: "ladder_goal_auto",
            param: depth,
            baseline: "naive",
            baseline_ns: naive_sweep_ns(&naive, &goals, passes, iters),
            candidate: "auto",
            candidate_ns: cold_engine_sweep_ns(
                &schema,
                &sigma,
                TierPreference::Auto,
                &goals,
                passes,
                iters,
            ),
        });
    }

    // Wide Σ: the indexed kernel's home turf — auto must keep the win.
    const WIDE_ATTRS: usize = 24;
    let wide_sizes: &[usize] = if smoke { &[32] } else { &[64, 128] };
    let wide_iters = if smoke { 1 } else { 2 };
    for &n in wide_sizes {
        let schema = flat_schema(WIDE_ATTRS);
        let sigma = wide_sigma(&schema, WIDE_ATTRS, n);
        let mut goals = all_pairs_goals(&schema, WIDE_ATTRS);
        goals.truncate(200);
        let naive = NaiveEngine::new(&schema, &sigma).unwrap();
        rows.push(BenchRecord {
            bench_id: "B15",
            workload: "wide_sigma_auto",
            param: n,
            baseline: "naive",
            baseline_ns: naive_sweep_ns(&naive, &goals, 1, wide_iters),
            candidate: "auto",
            candidate_ns: cold_engine_sweep_ns(
                &schema,
                &sigma,
                TierPreference::Auto,
                &goals,
                1,
                wide_iters,
            ),
        });
    }

    // Course session trailer: the hot-relation batch shape; by the
    // second sweep auto is on the dense tier.
    let (schema, sigma) = course();
    let session = Session::with_tiers(
        &schema,
        &sigma,
        EmptySetPolicy::Forbidden,
        Budget::standard(),
        TierPreference::Auto,
    )
    .unwrap();
    let attrs = ["cnum", "time", "room", "books", "students"];
    let mut goals = Vec::new();
    for a in attrs {
        for b in attrs {
            if a != b {
                if let Ok(g) = Nfd::parse(&schema, &format!("Course:[{a} -> {b}]")) {
                    goals.push(g);
                }
            }
        }
    }
    let budget = Budget::standard();
    let sweeps = if smoke { 2 } else { 8 };
    let course_ns = time_ns(1, || {
        for _ in 0..sweeps {
            session.implies_batch(&goals, &budget, 1).unwrap();
        }
    });
    let relation = nfd_model::Label::new("Course");
    let dense_built = session.select_state().dense_built(relation);

    println!(
        "B15 tier selection — tiered router vs fixed baselines ({} iteration(s), best-of)",
        iters
    );
    println!(
        "{:<26} {:>6} {:>10} {:>14} {:>10} {:>14} {:>9}",
        "workload", "param", "baseline", "ns", "candidate", "ns", "speedup"
    );
    for r in &rows {
        println!(
            "{:<26} {:>6} {:>10} {:>14} {:>10} {:>14} {:>8.2}x",
            r.workload,
            r.param,
            r.baseline,
            r.baseline_ns,
            r.candidate,
            r.candidate_ns,
            r.speedup()
        );
    }
    println!(
        "course session (auto): {} goals x {} sweeps in {} ns; dense tier built: {}",
        goals.len(),
        sweeps,
        course_ns,
        dense_built
    );

    let course_session = format!(
        "{{\"goals\": {}, \"sweeps\": {}, \"total_ns\": {}, \"dense_built\": {}}}",
        goals.len(),
        sweeps,
        course_ns,
        dense_built
    );
    BenchReport {
        bench_id: "B15",
        bench: "tier_select",
        mode: if smoke { "smoke" } else { "full" },
        iters,
        records: rows,
        extra: vec![("course_session".to_string(), course_session)],
    }
    .write("BENCH_B15_OUT");
}
