//! Bench `session_amortized` (EXPERIMENTS.md §B10): what the
//! query-amortizing `Session` buys over building a fresh `Engine` per
//! query.
//!
//! A fresh engine repeats schema interning, Σ normalization and the full
//! resolution saturation for every goal; a session pays that once and
//! answers each goal with a single bitset fixed point over the cached
//! pool. The gap therefore grows with |Σ| (saturation is the superlinear
//! part) and with the number of goals amortized over.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nfd::session::Session;
use nfd_bench::*;
use nfd_core::engine::Engine;
use nfd_core::Nfd;
use nfd_model::Schema;
use std::hint::black_box;
use std::time::Duration;

/// The goal batch: every single-attribute implication question over the
/// flat chain (mixed implied / not-implied verdicts).
fn goal_batch(schema: &Schema, n: usize) -> Vec<Nfd> {
    let mut goals = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                goals.push(Nfd::parse(schema, &format!("R:[a{i} -> a{j}]")).unwrap());
            }
        }
    }
    goals
}

fn bench_fresh_vs_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("session/fresh_vs_session");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for n in [8usize, 16, 24] {
        let schema = flat_schema(n);
        let sigma = flat_chain_sigma(&schema, n);
        let goals = goal_batch(&schema, n);

        // One fresh engine per query: the pre-session idiom.
        group.bench_with_input(BenchmarkId::new("fresh_engine_per_query", n), &n, |b, _| {
            b.iter(|| {
                let mut yes = 0usize;
                for goal in &goals {
                    let engine = Engine::new(black_box(&schema), black_box(&sigma)).unwrap();
                    if engine.implies(goal).unwrap() {
                        yes += 1;
                    }
                }
                yes
            })
        });

        // One session, many queries.
        group.bench_with_input(
            BenchmarkId::new("one_session_many_queries", n),
            &n,
            |b, _| {
                b.iter(|| {
                    let session = Session::new(black_box(&schema), black_box(&sigma)).unwrap();
                    let mut yes = 0usize;
                    for goal in &goals {
                        if session.implies(goal).unwrap() {
                            yes += 1;
                        }
                    }
                    yes
                })
            },
        );
    }
    group.finish();
}

fn bench_amortized_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("session/steady_state_query");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for n in [8usize, 16, 24] {
        let schema = flat_schema(n);
        let sigma = flat_chain_sigma(&schema, n);
        let goals = goal_batch(&schema, n);
        let session = Session::new(&schema, &sigma).unwrap();
        // Steady state: the per-query cost once compilation is sunk.
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                goals
                    .iter()
                    .filter(|g| session.implies(black_box(g)).unwrap())
                    .count()
            })
        });
    }
    group.finish();
}

fn bench_reconfigure(c: &mut Criterion) {
    let mut group = c.benchmark_group("session/reconfigure_vs_rebuild");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let (schema, sigma) = course();
    let session = Session::new(&schema, &sigma).unwrap();
    group.bench_function(BenchmarkId::new("rebuild", "course"), |b| {
        b.iter(|| {
            Session::with_policy(
                black_box(&schema),
                black_box(&sigma),
                nfd_core::EmptySetPolicy::pessimistic(),
            )
            .unwrap()
            .sigma()
            .len()
        })
    });
    group.bench_function(BenchmarkId::new("reconfigure", "course"), |b| {
        b.iter(|| {
            session
                .reconfigure(nfd_core::EmptySetPolicy::pessimistic())
                .unwrap()
                .sigma()
                .len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fresh_vs_session,
    bench_amortized_query,
    bench_reconfigure
);
criterion_main!(benches);
