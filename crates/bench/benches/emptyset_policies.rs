//! Bench `emptyset_policies` (EXPERIMENTS.md §B7): overhead of the
//! Section 3.2 gated rules (modified transitivity via `follows`, modified
//! prefix via annotations) relative to the Theorem 3.1 engine.
//!
//! Expected shape: the gates add per-step path comparisons during
//! saturation and chaining — a modest constant factor; the pessimistic
//! policy additionally *prunes* derivations, which can make its pool
//! smaller and its queries faster despite the gate cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nfd_bench::*;
use nfd_core::engine::Engine;
use nfd_core::{EmptySetPolicy, Nfd};
use nfd_path::RootedPath;
use std::hint::black_box;
use std::time::Duration;

fn policies(schema: &nfd_model::Schema, depth: usize) -> Vec<(&'static str, EmptySetPolicy)> {
    // Annotate every spine set of the ladder as non-empty.
    let rel = schema.relation_names().next().unwrap();
    let mut spine = String::new();
    let mut annotated = Vec::new();
    for d in 0..depth {
        if !spine.is_empty() {
            spine.push(':');
        }
        spine.push_str(&format!("s{d}"));
        annotated.push(RootedPath::parse(&format!("{rel}:{spine}")).unwrap());
    }
    vec![
        ("forbidden", EmptySetPolicy::Forbidden),
        ("pessimistic", EmptySetPolicy::pessimistic()),
        ("annotated", EmptySetPolicy::non_empty(annotated)),
    ]
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("emptyset_policies/build");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    let depth = 3;
    let schema = ladder_schema(depth);
    let sigma = ladder_sigma(&schema, depth);
    for (name, policy) in policies(&schema, depth) {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| {
                Engine::with_policy(black_box(&schema), black_box(&sigma), policy.clone())
                    .unwrap()
                    .pool_size()
            })
        });
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("emptyset_policies/query");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let depth = 3;
    let schema = ladder_schema(depth);
    let sigma = ladder_sigma(&schema, depth);
    let goal = ladder_goal(&schema, depth);
    for (name, policy) in policies(&schema, depth) {
        let engine = Engine::with_policy(&schema, &sigma, policy).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| engine.implies(black_box(&goal)).unwrap())
        });
    }
    group.finish();
}

/// Satisfaction checking on instances with empty sets: vacuous branches
/// make checking *cheaper*, quantifying the Section 3.2 phenomenon.
fn bench_check_with_empties(c: &mut Criterion) {
    use nfd_model::gen::{GenConfig, Generator};
    let (schema, _) = course();
    let global = Nfd::parse(&schema, "Course:[students:sid -> students:age]").unwrap();
    let mut group = c.benchmark_group("emptyset_policies/check_vs_empty_rate");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for pct in [0u32, 25, 50, 75] {
        let mut g = Generator::new(
            7,
            GenConfig {
                min_set: 0,
                max_set: 4,
                empty_prob: f64::from(pct) / 100.0,
                domain: 64,
            },
        );
        let inst = g.instance(&schema);
        group.bench_with_input(BenchmarkId::from_parameter(pct), &pct, |b, _| {
            b.iter(|| {
                nfd_core::check(&schema, black_box(&inst), &global)
                    .unwrap()
                    .assignments_checked
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build, bench_query, bench_check_with_empties);
criterion_main!(benches);
