//! Bench `budgeted_overhead` (EXPERIMENTS.md §B11): the price of
//! resource governance.
//!
//! Every saturation loop, chase expansion and quantifier enumeration now
//! carries cooperative budget checks — a counter comparison on the hot
//! path plus a deadline/cancellation poll every few thousand iterations.
//! This bench reruns the B10 session workload (flat chain, all-pairs goal
//! batch) under three budgets to measure what those checks cost:
//!
//! * `standard`  — the default budget (generous counters, no deadline);
//! * `unlimited` — every counter at `u64::MAX`, no deadline;
//! * `deadline`  — unlimited counters plus a far-future deadline and a
//!   cancellation token, so every `check_live` poll reads the clock and
//!   the atomic.
//!
//! The acceptance bar for the governance PR is `deadline` within 5% of
//! `standard` on the B10 workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nfd::session::Session;
use nfd_bench::*;
use nfd_core::{EmptySetPolicy, Nfd};
use nfd_govern::{Budget, CancelToken};
use nfd_model::Schema;
use std::hint::black_box;
use std::time::Duration;

fn goal_batch(schema: &Schema, n: usize) -> Vec<Nfd> {
    let mut goals = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                goals.push(Nfd::parse(schema, &format!("R:[a{i} -> a{j}]")).unwrap());
            }
        }
    }
    goals
}

fn budgets() -> Vec<(&'static str, Budget)> {
    vec![
        ("standard", Budget::standard()),
        ("unlimited", Budget::unlimited()),
        (
            "deadline",
            Budget::unlimited()
                .with_timeout(Duration::from_secs(3600))
                .with_cancel(CancelToken::new()),
        ),
    ]
}

/// Build + all-pairs query batch under each budget flavour — the same
/// work as B10's `one_session_many_queries`, now with governance on.
fn bench_session_under_budgets(c: &mut Criterion) {
    let mut group = c.benchmark_group("govern/session_batch");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for n in [8usize, 16, 24] {
        let schema = flat_schema(n);
        let sigma = flat_chain_sigma(&schema, n);
        let goals = goal_batch(&schema, n);
        for (label, budget) in budgets() {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    let session = Session::with_budget(
                        black_box(&schema),
                        black_box(&sigma),
                        EmptySetPolicy::Forbidden,
                        budget.clone(),
                    )
                    .unwrap();
                    goals
                        .iter()
                        .filter(|g| session.implies(black_box(g)).unwrap())
                        .count()
                })
            });
        }
    }
    group.finish();
}

/// Steady-state single queries over a prebuilt session, per budget — the
/// per-query overhead with compilation sunk.
fn bench_steady_state_under_budgets(c: &mut Criterion) {
    let mut group = c.benchmark_group("govern/steady_state");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let n = 16usize;
    let schema = flat_schema(n);
    let sigma = flat_chain_sigma(&schema, n);
    let goals = goal_batch(&schema, n);
    for (label, budget) in budgets() {
        let session =
            Session::with_budget(&schema, &sigma, EmptySetPolicy::Forbidden, budget).unwrap();
        group.bench_function(BenchmarkId::new(label, n), |b| {
            b.iter(|| {
                goals
                    .iter()
                    .filter(|g| session.implies(black_box(g)).unwrap())
                    .count()
            })
        });
    }
    group.finish();
}

/// The chase under governance: assignment counting dominates its checks.
fn bench_chase_under_budgets(c: &mut Criterion) {
    let mut group = c.benchmark_group("govern/chase");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let (schema, sigma) = course();
    let goal = Nfd::parse(&schema, "Course:[time, students:sid -> books]").unwrap();
    for (label, budget) in budgets() {
        group.bench_function(BenchmarkId::new(label, "course"), |b| {
            b.iter(|| {
                nfd_chase::chase_with(
                    black_box(&schema),
                    black_box(&sigma),
                    black_box(&goal),
                    &budget,
                )
                .unwrap()
                .implied
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_session_under_budgets,
    bench_steady_state_under_budgets,
    bench_chase_under_budgets
);
criterion_main!(benches);
