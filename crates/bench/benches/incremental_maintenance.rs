//! Bench `incremental_maintenance` (EXPERIMENTS.md §B16): delta Σ
//! maintenance against full reconfiguration.
//!
//! The delta layer (`Engine::add_dep` / `Engine::remove_dep`) rebuilds
//! only the relation a mutated dependency names, leaving every other
//! relation's pool untouched and bit-identical. This harness measures
//! the round-trip a live session actually performs — mutate, answer a
//! query, mutate back, answer again — against the only alternative: a
//! full from-scratch rebuild of the session for each Σ revision.
//!
//! * `multi_wide_roundtrip` — the headline shape: 8 relations, each
//!   carrying a wide Σ of `n ≥ 32` overlapping dependencies. A
//!   single-dep mutation touches 1/8 of the saturation work a full
//!   reconfigure redoes, so this is the ≥ 5× acceptance row.
//! * `flat_chain_roundtrip` — the honest row. One relation, small
//!   chain Σ: the delta rebuild IS a full rebuild of the only relation,
//!   plus the retraction's over-delete bookkeeping, so rebuild wins or
//!   ties and the record says so.
//! * `course_roundtrip` — the paper's Course schema (7 NFDs): small-Σ
//!   honest trailer on a nested shape.
//!
//! Custom `harness = false` main emitting `BENCH_B16.json` (path
//! overridable via `BENCH_B16_OUT`) in the shared record schema.
//! Honours the `--test` smoke flag.

use nfd::session::Session;
use nfd_bench::*;
use nfd_core::{EmptySetPolicy, Nfd};
use nfd_govern::Budget;
use nfd_model::Schema;
use std::hint::black_box;
use std::time::Instant;

/// Best-of-`iters` wall time of `f`, in nanoseconds (minimum, to shed
/// scheduler noise).
fn time_ns<T>(iters: usize, mut f: impl FnMut() -> T) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..iters {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_nanos());
    }
    best
}

fn session<'s>(schema: &'s Schema, sigma: &[Nfd]) -> Session<'s> {
    Session::with_budget(schema, sigma, EmptySetPolicy::Forbidden, Budget::standard()).unwrap()
}

/// One Σ-revision round-trip through the delta layer: add `extra`,
/// answer `goal`, retract `extra`, answer again. The session is mutated
/// in place and ends each iteration back at the original Σ, so best-of
/// timing stays comparable across iterations.
fn delta_roundtrip_ns(
    schema: &Schema,
    sigma: &[Nfd],
    extra: &Nfd,
    goal: &Nfd,
    iters: usize,
) -> u128 {
    let mut live = session(schema, sigma);
    time_ns(iters, || {
        live.add_deps(std::slice::from_ref(extra)).unwrap();
        let grown = live.implies(goal).unwrap();
        live.remove_deps(std::slice::from_ref(extra)).unwrap();
        (grown, live.implies(goal).unwrap())
    })
}

/// The same two Σ revisions answered the only way a delta-less stack
/// can: a full from-scratch session rebuild per revision.
fn rebuild_roundtrip_ns(
    schema: &Schema,
    sigma: &[Nfd],
    extra: &Nfd,
    goal: &Nfd,
    iters: usize,
) -> u128 {
    let mut grown_sigma = sigma.to_vec();
    grown_sigma.push(extra.clone());
    time_ns(iters, || {
        let grown = session(schema, &grown_sigma).implies(goal).unwrap();
        (grown, session(schema, sigma).implies(goal).unwrap())
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let iters = if smoke { 1 } else { 5 };
    let mut rows: Vec<BenchRecord> = Vec::new();

    // Headline: 8 wide-Σ relations, single-dep mutations in one of them.
    const RELS: usize = 8;
    const ATTRS: usize = 24;
    let wide_sizes: &[usize] = if smoke { &[8] } else { &[32, 64] };
    let wide_iters = if smoke { 1 } else { 3 };
    for &n in wide_sizes {
        let schema = multi_flat_schema(RELS, ATTRS);
        let sigma = multi_wide_sigma(&schema, RELS, ATTRS, n);
        let extra = Nfd::parse(&schema, &format!("R0:[r0a0 -> r0a{}]", ATTRS - 1)).unwrap();
        let goal = Nfd::parse(&schema, "R0:[r0a0 -> r0a1]").unwrap();
        rows.push(BenchRecord {
            bench_id: "B16",
            workload: "multi_wide_roundtrip",
            param: n,
            baseline: "rebuild",
            baseline_ns: rebuild_roundtrip_ns(&schema, &sigma, &extra, &goal, wide_iters),
            candidate: "delta",
            candidate_ns: delta_roundtrip_ns(&schema, &sigma, &extra, &goal, wide_iters),
        });
    }

    // Honest row: one relation, so the delta rebuild redoes everything
    // the full rebuild does, plus retraction bookkeeping.
    let chain_sizes: &[usize] = if smoke { &[4] } else { &[8, 16] };
    for &n in chain_sizes {
        let schema = flat_schema(n);
        let sigma = flat_chain_sigma(&schema, n);
        let extra = Nfd::parse(&schema, &format!("R:[a{} -> a0]", n - 1)).unwrap();
        let goal = Nfd::parse(&schema, &format!("R:[a0 -> a{}]", n - 1)).unwrap();
        rows.push(BenchRecord {
            bench_id: "B16",
            workload: "flat_chain_roundtrip",
            param: n,
            baseline: "rebuild",
            baseline_ns: rebuild_roundtrip_ns(&schema, &sigma, &extra, &goal, iters),
            candidate: "delta",
            candidate_ns: delta_roundtrip_ns(&schema, &sigma, &extra, &goal, iters),
        });
    }

    // Honest trailer: the paper's Course schema, Σ of seven NFDs.
    let (schema, sigma) = course();
    let extra = Nfd::parse(&schema, "Course:[time -> books:isbn]").unwrap();
    let goal = Nfd::parse(&schema, "Course:[students:sid -> books:isbn]").unwrap();
    rows.push(BenchRecord {
        bench_id: "B16",
        workload: "course_roundtrip",
        param: sigma.len(),
        baseline: "rebuild",
        baseline_ns: rebuild_roundtrip_ns(&schema, &sigma, &extra, &goal, iters),
        candidate: "delta",
        candidate_ns: delta_roundtrip_ns(&schema, &sigma, &extra, &goal, iters),
    });

    // Observability trailer: what one retraction on the headline shape
    // actually touches (scoped to R0; overdeleted = counting pass size).
    let schema = multi_flat_schema(RELS, ATTRS);
    let n = wide_sizes[wide_sizes.len() - 1];
    let sigma = multi_wide_sigma(&schema, RELS, ATTRS, n);
    let mut live = session(&schema, &sigma);
    // Retract the R0 given with the largest over-delete set, so the
    // profile shows the counting pass doing real work.
    let target = sigma[..n]
        .iter()
        .max_by_key(|d| live.engine().retraction_impact(d).unwrap())
        .unwrap()
        .clone();
    let report = live
        .remove_deps(std::slice::from_ref(&target))
        .unwrap()
        .remove(0);
    let mutation_profile = format!(
        "{{\"relations\": {}, \"relation\": \"{}\", \"pool_before\": {}, \"pool_after\": {}, \"overdeleted\": {}}}",
        RELS, report.relation, report.pool_before, report.pool_after, report.overdeleted
    );

    println!(
        "B16 incremental maintenance — delta mutation vs full reconfigure ({} iteration(s), best-of)",
        iters
    );
    println!(
        "{:<24} {:>6} {:>10} {:>14} {:>10} {:>14} {:>9}",
        "workload", "param", "baseline", "ns", "candidate", "ns", "speedup"
    );
    for r in &rows {
        println!(
            "{:<24} {:>6} {:>10} {:>14} {:>10} {:>14} {:>8.2}x",
            r.workload,
            r.param,
            r.baseline,
            r.baseline_ns,
            r.candidate,
            r.candidate_ns,
            r.speedup()
        );
    }
    println!("retraction profile: {mutation_profile}");

    BenchReport {
        bench_id: "B16",
        bench: "incremental_maintenance",
        mode: if smoke { "smoke" } else { "full" },
        iters,
        records: rows,
        extra: vec![("mutation_profile".to_string(), mutation_profile)],
    }
    .write("BENCH_B16_OUT");
}
