//! Bench `parallel_scaling` (EXPERIMENTS.md §B12): throughput of
//! `Session::implies_batch` at 1/2/4/8 worker threads on the B10
//! workload (the flat transitive chain with every single-attribute
//! implication question as the goal batch).
//!
//! The batch contract is results bit-identical to a sequential
//! `implies_with` loop at every thread count, so before timing anything
//! this harness asserts exactly that — a benchmark of a pool that
//! answers differently would be meaningless. Speedup is bounded by the
//! cores the machine actually exposes (`nfd::par::available()`, printed
//! below); on a single-core box all thread counts degenerate to
//! sequential execution and the interesting number is the pool overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nfd::prelude::*;
use nfd::session::Decision;
use nfd_bench::*;
use nfd_core::Nfd;
use nfd_model::Schema;
use std::hint::black_box;
use std::time::Duration;

/// The B10 goal batch: every `R:[ai -> aj]`, `i ≠ j` (mixed verdicts).
fn goal_batch(schema: &Schema, n: usize) -> Vec<Nfd> {
    let mut goals = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                goals.push(Nfd::parse(schema, &format!("R:[a{i} -> a{j}]")).unwrap());
            }
        }
    }
    goals
}

fn bench_parallel_scaling(c: &mut Criterion) {
    println!(
        "parallel_scaling: machine exposes {} core(s); speedup is bounded by that",
        nfd::par::available()
    );
    let mut group = c.benchmark_group("par/batch_threads");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for n in [16usize, 24] {
        let schema = flat_schema(n);
        let sigma = flat_chain_sigma(&schema, n);
        let goals = goal_batch(&schema, n);
        let session = Session::new(&schema, &sigma).unwrap();
        let budget = Budget::standard();

        // The contract the numbers rest on: every thread count reproduces
        // the sequential loop exactly.
        let sequential: Vec<Result<Decision, nfd::prelude::CoreError>> = goals
            .iter()
            .map(|g| Ok(session.implies_with(g, &budget).unwrap()))
            .collect();
        for threads in [1usize, 2, 4, 8] {
            let batch = session.implies_batch(&goals, &budget, threads).unwrap();
            assert_eq!(
                batch.decisions, sequential,
                "threads = {threads}: batch deviates from the sequential loop"
            );
        }

        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(&format!("threads_{threads}"), n),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        session
                            .implies_batch(black_box(&goals), &budget, threads)
                            .unwrap()
                            .implied_count()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_scaling);
criterion_main!(benches);
