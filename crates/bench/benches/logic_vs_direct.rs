//! Bench `logic_vs_direct` (EXPERIMENTS.md §B3): the ablation between the
//! two satisfaction checkers — the direct Definition 2.4 checker (hash
//! grouping) and the Section 2.2 logic-translation evaluator (naive
//! quantifier nesting).
//!
//! Expected shape: identical verdicts everywhere (property-tested);
//! the logic evaluator pays a quadratic factor for the explicit `v1, v2`
//! pair enumeration that grouping avoids, so the gap widens with tuple
//! count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nfd_bench::*;
use nfd_core::{check, Nfd};
use std::hint::black_box;
use std::time::Duration;

fn bench_checkers(c: &mut Criterion) {
    let (schema, _) = course();
    let global = Nfd::parse(&schema, "Course:[students:sid -> students:age]").unwrap();
    let formula = global.to_formula(&schema).unwrap();

    let mut group = c.benchmark_group("logic_vs_direct");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    for tuples in [2usize, 4, 8, 16, 32] {
        let inst = course_instance(&schema, tuples, 3);
        // Verdicts must agree — assert once outside the timed loop.
        let direct_verdict = check(&schema, &inst, &global).unwrap().holds;
        let logic_verdict = nfd_logic::eval(&inst, &formula).unwrap();
        assert_eq!(direct_verdict, logic_verdict, "checkers must agree");

        group.bench_with_input(BenchmarkId::new("direct", tuples), &tuples, |b, _| {
            b.iter(|| check(&schema, black_box(&inst), &global).unwrap().holds)
        });
        group.bench_with_input(BenchmarkId::new("logic_eval", tuples), &tuples, |b, _| {
            b.iter(|| nfd_logic::eval(black_box(&inst), &formula).unwrap())
        });
    }
    group.finish();
}

fn bench_translation(c: &mut Criterion) {
    let (schema, sigma) = course();
    let mut group = c.benchmark_group("logic_vs_direct/translate");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500));
    group.bench_function("translate_all_course_nfds", |b| {
        b.iter(|| {
            sigma
                .iter()
                .map(|n| n.to_formula(black_box(&schema)).unwrap().quantifier_count())
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_checkers, bench_translation);
criterion_main!(benches);
