//! Bench `chase_vs_axioms` (EXPERIMENTS.md §B8): the two decision
//! procedures for NFD implication — the axiomatic saturation engine
//! (Theorem 3.1) and the nested tableau chase (the paper's §4 future
//! work) — on identical problems.
//!
//! Expected shape: identical verdicts (differentially tested); the chase
//! re-enumerates tableau assignments per step, so it scales worse with
//! nesting depth and Σ size, while the engine amortizes saturation across
//! queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nfd_bench::*;
use nfd_chase::chase;
use nfd_core::engine::Engine;
use nfd_core::Nfd;
use std::hint::black_box;
use std::time::Duration;

fn bench_worked_example(c: &mut Criterion) {
    let (schema, sigma, goal) = worked_example();
    let mut group = c.benchmark_group("chase_vs_axioms/worked_example");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    group.bench_function("axioms_cold", |b| {
        b.iter(|| {
            Engine::new(black_box(&schema), black_box(&sigma))
                .unwrap()
                .implies(&goal)
                .unwrap()
        })
    });
    let engine = Engine::new(&schema, &sigma).unwrap();
    group.bench_function("axioms_warm", |b| {
        b.iter(|| engine.implies(black_box(&goal)).unwrap())
    });
    group.bench_function("chase", |b| {
        b.iter(|| chase(black_box(&schema), &sigma, &goal).unwrap().implied)
    });
    group.finish();
}

fn bench_flat_chains(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase_vs_axioms/flat_chain");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    for n in [4usize, 8, 12] {
        let schema = flat_schema(n);
        let sigma = flat_chain_sigma(&schema, n);
        let goal = Nfd::parse(&schema, &format!("R:[a0 -> a{}]", n - 1)).unwrap();
        // Verdicts must agree.
        let engine = Engine::new(&schema, &sigma).unwrap();
        assert_eq!(
            engine.implies(&goal).unwrap(),
            chase(&schema, &sigma, &goal).unwrap().implied
        );
        group.bench_with_input(BenchmarkId::new("axioms_cold", n), &n, |b, _| {
            b.iter(|| {
                Engine::new(black_box(&schema), black_box(&sigma))
                    .unwrap()
                    .implies(&goal)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("chase", n), &n, |b, _| {
            b.iter(|| chase(black_box(&schema), &sigma, &goal).unwrap().implied)
        });
    }
    group.finish();
}

fn bench_nested(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase_vs_axioms/ladder");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for depth in [1usize, 2] {
        let schema = ladder_schema(depth);
        let sigma = ladder_sigma(&schema, depth);
        let goal = ladder_goal(&schema, depth);
        let engine = Engine::new(&schema, &sigma).unwrap();
        assert_eq!(
            engine.implies(&goal).unwrap(),
            chase(&schema, &sigma, &goal).unwrap().implied
        );
        group.bench_with_input(BenchmarkId::new("axioms_cold", depth), &depth, |b, _| {
            b.iter(|| {
                Engine::new(black_box(&schema), black_box(&sigma))
                    .unwrap()
                    .implies(&goal)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("chase", depth), &depth, |b, _| {
            b.iter(|| chase(black_box(&schema), &sigma, &goal).unwrap().implied)
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_worked_example,
    bench_flat_chains,
    bench_nested
);
criterion_main!(benches);
