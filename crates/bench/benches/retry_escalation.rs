//! Bench `retry_escalation` (EXPERIMENTS.md §B13): what graceful
//! degradation costs, and what the failpoint plumbing costs when it is
//! compiled out.
//!
//! Two questions:
//!
//! * **Escalation vs. one big budget.** A starved budget that heals
//!   itself by retrying under escalating limits (`implies_retry`, factor
//!   4) does the early rounds' work only to throw it away. How much
//!   slower is starting tiny and escalating to a workable budget than
//!   granting that final budget up front? The early rounds exhaust almost
//!   immediately (that is the point of cooperative budgets), so the
//!   overhead should be a modest constant, not a multiple.
//!
//! * **Feature-off failpoint overhead.** `fail_point!` sites thread the
//!   hot paths of every crate; with the `failpoints` feature disabled
//!   (always, for benches) the macro expands to an empty block. The
//!   `baseline` group runs the B10/B11-shaped all-pairs workload through
//!   per-goal `implies_with` (each call pays a fresh budgeted cascade, so
//!   every instrumented layer is on the measured path). Its numbers are
//!   recorded in EXPERIMENTS.md §B13 as their own drift baseline — the
//!   acceptance bar for failpoint plumbing is <1% drift on re-runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nfd::prelude::*;
use nfd_bench::*;
use nfd_core::Nfd;
use nfd_model::Schema;
use std::hint::black_box;
use std::time::Duration;

/// The B10/B11 goal batch: every `R:[ai -> aj]`, `i ≠ j`.
fn goal_batch(schema: &Schema, n: usize) -> Vec<Nfd> {
    let mut goals = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                goals.push(Nfd::parse(schema, &format!("R:[a{i} -> a{j}]")).unwrap());
            }
        }
    }
    goals
}

/// Starved-start retries vs. the final budget granted up front, on one
/// implication query over the flat chain.
fn bench_escalation_vs_upfront(c: &mut Criterion) {
    let mut group = c.benchmark_group("retry/escalation_vs_upfront");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for n in [16usize, 24] {
        let schema = flat_schema(n);
        let sigma = flat_chain_sigma(&schema, n);
        let session = Session::new(&schema, &sigma).unwrap();
        let goal = Nfd::parse(&schema, &format!("R:[a0 -> a{}]", n - 1)).unwrap();

        // Calibrate: starting from 1, how many ×4 escalations until the
        // budget decides, and what budget is that? `implies_retry` must
        // end on an answer, not exhaustion, for the comparison to be fair.
        let policy = RetryPolicy::new(12).with_escalation(4.0);
        let decision = session
            .implies_retry(&goal, &Budget::limited(1), &policy)
            .unwrap();
        let rounds = decision.attempts.iter().map(|a| a.round).max().unwrap();
        assert!(
            decision.verdict.as_bool().is_some() && rounds >= 1,
            "calibration: escalation must retry at least once and then answer"
        );
        let final_cap = 4u64.pow(rounds);

        group.bench_with_input(BenchmarkId::new("escalating", n), &n, |b, _| {
            b.iter(|| {
                session
                    .implies_retry(black_box(&goal), &Budget::limited(1), &policy)
                    .unwrap()
                    .verdict
                    .as_bool()
            })
        });
        group.bench_with_input(BenchmarkId::new("upfront", n), &n, |b, _| {
            b.iter(|| {
                session
                    .implies_with(black_box(&goal), &Budget::limited(final_cap))
                    .unwrap()
                    .verdict
                    .as_bool()
            })
        });
    }
    group.finish();
}

/// The B11 standard-budget workload, rerun so feature-off failpoint
/// overhead shows up as drift against EXPERIMENTS.md §B11.
fn bench_failpoint_free_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("retry/failpoint_free_baseline");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for n in [12usize, 16] {
        let schema = flat_schema(n);
        let sigma = flat_chain_sigma(&schema, n);
        let goals = goal_batch(&schema, n);
        let budget = Budget::standard();
        group.bench_with_input(BenchmarkId::new("standard", n), &n, |b, _| {
            b.iter(|| {
                let session = Session::new(&schema, &sigma).unwrap();
                let mut implied = 0usize;
                for goal in &goals {
                    let d = session.implies_with(black_box(goal), &budget).unwrap();
                    if d.verdict.as_bool() == Some(true) {
                        implied += 1;
                    }
                }
                implied
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_escalation_vs_upfront,
    bench_failpoint_free_baseline
);
criterion_main!(benches);
