//! B18 — read-parallel registry throughput (`nfdtool serve --workers N`).
//!
//! One hot tenant carrying a wide Σ (the B14/B15 overlapping-paths
//! family) is hammered with BATCH requests by concurrent TCP clients.
//! The sequential daemon (`--workers 1`) answers every request from a
//! fresh per-request engine — it re-saturates Σ each time, exactly as
//! the historical one-actor-per-tenant registry did. The read-parallel
//! registry (`--workers ≥ 2`) keeps a compiled resident session per
//! epoch and answers from it, so the per-request saturation cost is
//! amortised away entirely.
//!
//! Two sweeps, both over the same request corpus:
//!
//! * `batch_vs_workers` — 8 clients, workers ∈ {1, 2, 4, 8}; baseline
//!   is the sequential daemon. The headline acceptance row is
//!   workers = 8: ≥ 3× BATCH throughput.
//! * `batch_vs_clients` — workers = 8, clients ∈ {1, 2, 4, 8}; baseline
//!   is the sequential daemon at the *same* client count, so the row
//!   isolates what residency buys at each concurrency level.
//!
//! Every response from every run is asserted byte-identical to the
//! expected transcript before any time is recorded — the speedup is
//! only meaningful if the parallel daemon is answering the same
//! question the same way.
//!
//! On a single-core host the win is architectural (resident-engine
//! reuse), not thread-level parallelism; extra workers beyond 2 mostly
//! overlap socket turnaround. The report records host parallelism so
//! readers can interpret the workers = 2 vs 8 spread.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;
use std::time::Instant;

use nfd::prelude::*;
use nfd::serve::{Registry, RegistryConfig};
use nfd_bench::{flat_schema, wide_sigma, BenchRecord, BenchReport};

/// One benchmark server: a registry at the given worker count behind a
/// TCP acceptor with enough admission slots for every client below.
fn start(workers: usize) -> (SocketAddr, JoinHandle<ServerStats>) {
    let registry = Registry::new(RegistryConfig {
        workers,
        ..RegistryConfig::default()
    });
    let server_cfg = ServerConfig {
        idle_poll_ms: 2,
        max_inflight: 32,
        queue_depth: 64,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", server_cfg, registry).expect("bind");
    let addr = server.local_addr().expect("addr");
    (addr, std::thread::spawn(move || server.run().expect("run")))
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn ask(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").expect("send");
        self.writer.flush().expect("flush");
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("recv");
        resp.trim_end().to_string()
    }
}

/// The hot tenant's sources: a flat schema and the wide-Σ family
/// rendered back to one-line daemon wire text.
fn tenant_sources(attrs: usize, sigma_n: usize) -> (String, String) {
    let schema = flat_schema(attrs);
    let fields = (0..attrs)
        .map(|i| format!("a{i}: int"))
        .collect::<Vec<_>>()
        .join(", ");
    let schema_src = format!("R : {{<{fields}>}};");
    let deps_src = wide_sigma(&schema, attrs, sigma_n)
        .iter()
        .map(|nfd| format!("{nfd};"))
        .collect::<Vec<_>>()
        .join(" ");
    (schema_src, deps_src)
}

/// The measured request: one BATCH whose goals mix members of Σ
/// (implied) with goals the wide family does not derive. Verdicts are
/// irrelevant to the cost model — what matters is that the sequential
/// daemon pays a full Σ saturation to answer it and the resident daemon
/// does not.
fn batch_request(attrs: usize) -> String {
    let goals = [
        format!("R:[a0, a1 -> a{}]", attrs - 1),
        "R:[a0 -> a1]".to_string(),
        format!("R:[a{} -> a0]", attrs - 2),
        "R:[a1, a2 -> a3]".to_string(),
    ];
    format!("BATCH hot {};", goals.join("; "))
}

/// Runs one configuration to completion and returns total wall
/// nanoseconds for `clients × reqs_per_client` BATCH requests. Every
/// response is asserted equal to `expected` before the time counts.
fn run(
    workers: usize,
    clients: usize,
    reqs_per_client: usize,
    load: &str,
    batch: &str,
    expected: &str,
) -> u128 {
    let (addr, server) = start(workers);
    let mut control = Client::connect(addr);
    assert!(
        control.ask(load).starts_with("OK loaded"),
        "LOAD failed at workers={workers}"
    );
    // Prime once so listener-side lazy work (first-epoch spin-up) is
    // outside the timed window for every configuration equally.
    assert_eq!(control.ask(batch), expected, "prime diverged");

    let started = Instant::now();
    let threads: Vec<JoinHandle<()>> = (0..clients)
        .map(|client| {
            let batch = batch.to_string();
            let expected = expected.to_string();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                for _ in 0..reqs_per_client {
                    let resp = c.ask(&batch);
                    assert_eq!(
                        resp, expected,
                        "client {client} (workers={workers}) diverged from the transcript"
                    );
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    let elapsed = started.elapsed().as_nanos();

    assert_eq!(control.ask("SHUTDOWN"), "OK draining");
    let stats = server.join().expect("server");
    assert_eq!(stats.contained_panics, 0, "bench run contained a panic");
    elapsed
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let (attrs, sigma_n, reqs_per_client, iters) = if smoke {
        (12, 16, 2, 1)
    } else {
        (24, 64, 8, 2)
    };

    let (schema_src, deps_src) = tenant_sources(attrs, sigma_n);
    let load = format!("LOAD hot {schema_src} | {deps_src}");
    let batch = batch_request(attrs);

    // The reference transcript comes from a single-client sequential
    // daemon — the same code path the historical registry served.
    let expected = {
        let (addr, server) = start(1);
        let mut c = Client::connect(addr);
        assert!(c.ask(&load).starts_with("OK loaded"));
        let expected = c.ask(&batch);
        assert!(
            expected.starts_with("OK "),
            "reference BATCH failed: {expected}"
        );
        assert_eq!(c.ask("SHUTDOWN"), "OK draining");
        server.join().expect("server");
        expected
    };

    let best = |workers: usize, clients: usize| -> u128 {
        (0..iters)
            .map(|_| run(workers, clients, reqs_per_client, &load, &batch, &expected))
            .min()
            .expect("at least one iter")
    };

    let mut records = Vec::new();
    println!("B18 serve_throughput (wide Σ: {attrs} attrs × {sigma_n} deps, {reqs_per_client} BATCH/client)");
    println!(
        "{:<22} {:>14} {:>14} {:>9}",
        "row", "workers=1 ns", "candidate ns", "speedup"
    );

    // Sweep 1: fixed 8 clients, workers 1 → 8.
    let seq_8c = best(1, 8);
    for (workers, candidate) in [
        (1usize, "workers=1"),
        (2, "workers=2"),
        (4, "workers=4"),
        (8, "workers=8"),
    ] {
        let candidate_ns = if workers == 1 {
            seq_8c
        } else {
            best(workers, 8)
        };
        let rec = BenchRecord {
            bench_id: "B18",
            workload: "batch_vs_workers",
            param: workers,
            baseline: "workers=1",
            baseline_ns: seq_8c,
            candidate,
            candidate_ns,
        };
        println!(
            "{:<22} {:>14} {:>14} {:>8.2}x",
            format!("8 clients, {candidate}"),
            rec.baseline_ns,
            rec.candidate_ns,
            rec.speedup()
        );
        records.push(rec);
    }

    // Sweep 2: fixed 8 workers, clients 1 → 8; baseline is the
    // sequential daemon at the same client count.
    for clients in [1usize, 2, 4, 8] {
        let baseline_ns = if clients == 8 {
            seq_8c
        } else {
            best(1, clients)
        };
        let rec = BenchRecord {
            bench_id: "B18",
            workload: "batch_vs_clients",
            param: clients,
            baseline: "workers=1",
            baseline_ns,
            candidate: "workers=8",
            candidate_ns: best(8, clients),
        };
        println!(
            "{:<22} {:>14} {:>14} {:>8.2}x",
            format!("{clients} clients, workers=8"),
            rec.baseline_ns,
            rec.candidate_ns,
            rec.speedup()
        );
        records.push(rec);
    }

    let headline = records
        .iter()
        .find(|r| r.workload == "batch_vs_workers" && r.param == 8)
        .expect("headline row");
    let total_requests = 8 * reqs_per_client;
    let qps = |ns: u128| total_requests as f64 / (ns as f64 / 1e9);
    println!(
        "headline: {:.0} → {:.0} BATCH/s at 8 clients ({:.2}x)",
        qps(headline.baseline_ns),
        qps(headline.candidate_ns),
        headline.speedup()
    );
    if !smoke && headline.speedup() < 3.0 {
        eprintln!(
            "warning: headline speedup {:.2}x is under the 3x acceptance bar",
            headline.speedup()
        );
    }

    BenchReport {
        bench_id: "B18",
        bench: "serve_throughput",
        mode: if smoke { "smoke" } else { "full" },
        iters,
        records,
        extra: vec![
            ("attrs".to_string(), attrs.to_string()),
            ("sigma".to_string(), sigma_n.to_string()),
            ("reqs_per_client".to_string(), reqs_per_client.to_string()),
            (
                "host_parallelism".to_string(),
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
                    .to_string(),
            ),
        ],
    }
    .write("BENCH_B18_OUT");
}
