//! Bench `armstrong_baseline` (EXPERIMENTS.md §B5): on flat schemas the
//! NFD engine and the classical attribute-closure algorithm solve the
//! same problem — this measures what the generality of NFDs costs.
//!
//! Expected shape: Armstrong closure is linear and allocation-light; the
//! NFD engine pays a polynomial saturation cost up front (prefix /
//! locality / resolution scans that can never fire on flat paths) and a
//! fixpoint-chaining query. The baseline should win by one to two orders
//! of magnitude — the price of handling nesting uniformly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nfd_bench::*;
use nfd_core::engine::Engine;
use nfd_core::Nfd;
use nfd_relational::{attrs, closure, implies, Fd};
use std::hint::black_box;
use std::time::Duration;

fn bench_implication(c: &mut Criterion) {
    let mut group = c.benchmark_group("armstrong_baseline/implication");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for n in [4usize, 8, 16, 32] {
        let schema = flat_schema(n);
        let sigma_nfd = flat_chain_sigma(&schema, n);
        let sigma_fd = flat_chain_fds(n);
        let goal_nfd = Nfd::parse(&schema, &format!("R:[a0 -> a{}]", n - 1)).unwrap();
        let goal_fd = Fd::of(["a0"], [format!("a{}", n - 1).as_str()]);

        group.bench_with_input(BenchmarkId::new("armstrong", n), &n, |b, _| {
            b.iter(|| implies(black_box(&sigma_fd), black_box(&goal_fd)))
        });
        group.bench_with_input(BenchmarkId::new("nfd_engine_cold", n), &n, |b, _| {
            b.iter(|| {
                Engine::new(black_box(&schema), black_box(&sigma_nfd))
                    .unwrap()
                    .implies(&goal_nfd)
                    .unwrap()
            })
        });
        let engine = Engine::new(&schema, &sigma_nfd).unwrap();
        group.bench_with_input(BenchmarkId::new("nfd_engine_warm", n), &n, |b, _| {
            b.iter(|| engine.implies(black_box(&goal_nfd)).unwrap())
        });
    }
    group.finish();
}

fn bench_closure_computation(c: &mut Criterion) {
    let mut group = c.benchmark_group("armstrong_baseline/closure");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for n in [8usize, 32] {
        let schema = flat_schema(n);
        let sigma_nfd = flat_chain_sigma(&schema, n);
        let sigma_fd = flat_chain_fds(n);
        let engine = Engine::new(&schema, &sigma_nfd).unwrap();
        let base = nfd_path::RootedPath::parse("R").unwrap();
        let x_paths = vec![nfd_path::Path::parse("a0").unwrap()];
        let x_attrs = attrs(["a0"]);

        group.bench_with_input(BenchmarkId::new("armstrong", n), &n, |b, _| {
            b.iter(|| closure(black_box(&sigma_fd), black_box(&x_attrs)).len())
        });
        group.bench_with_input(BenchmarkId::new("nfd_engine", n), &n, |b, _| {
            b.iter(|| {
                engine
                    .closure(black_box(&base), black_box(&x_paths))
                    .unwrap()
                    .len()
            })
        });
    }
    group.finish();
}

fn bench_design_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("armstrong_baseline/design");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500));
    let n = 8;
    let sigma = flat_chain_fds(n);
    let names: Vec<String> = (0..n).map(|i| format!("a{i}")).collect();
    let universe = attrs(names.iter().map(String::as_str));
    group.bench_function("candidate_keys", |b| {
        b.iter(|| nfd_relational::candidate_keys(black_box(&universe), black_box(&sigma)).len())
    });
    group.bench_function("minimal_cover", |b| {
        b.iter(|| nfd_relational::minimal_cover(black_box(&sigma)).len())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_implication,
    bench_closure_computation,
    bench_design_algorithms
);
criterion_main!(benches);
