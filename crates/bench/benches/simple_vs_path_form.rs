//! Bench `simple_vs_path_form` (EXPERIMENTS.md §B6): the Section 3.2
//! discussion contrasts the eight-rule path-form presentation against the
//! six-rule simple form. The engine normalizes to simple form internally,
//! so the measurable difference is (a) the normalization cost itself and
//! (b) whether Σ arrives pre-normalized.
//!
//! Expected shape: normalization is cheap (linear in base-path length);
//! engine construction dominated by saturation either way, with the
//! pre-normalized variant saving only the push-in passes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nfd_bench::*;
use nfd_core::engine::Engine;
use nfd_core::{simple, Nfd};
use std::hint::black_box;
use std::time::Duration;

fn bench_normalization(c: &mut Criterion) {
    let mut group = c.benchmark_group("simple_vs_path_form/normalize");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500));
    for depth in [1usize, 2, 3, 4] {
        let schema = ladder_schema(depth);
        // The deepest local NFD of the ladder.
        let base: String = (0..depth).map(|d| format!(":s{d}")).collect();
        let local = Nfd::parse(&schema, &format!("R{base}:[k{depth} -> v{depth}]")).unwrap();
        group.bench_with_input(BenchmarkId::new("to_simple", depth), &depth, |b, _| {
            b.iter(|| simple::to_simple(black_box(&local)))
        });
        let simple_form = simple::to_simple(&local);
        group.bench_with_input(BenchmarkId::new("localize", depth), &depth, |b, _| {
            b.iter(|| simple::localize(black_box(&simple_form)))
        });
    }
    group.finish();
}

fn bench_engine_by_input_form(c: &mut Criterion) {
    let mut group = c.benchmark_group("simple_vs_path_form/engine_build");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    for depth in [2usize, 3, 4] {
        let schema = ladder_schema(depth);
        let sigma_local = ladder_sigma(&schema, depth);
        let sigma_simple: Vec<Nfd> = sigma_local.iter().map(simple::to_simple).collect();
        group.bench_with_input(BenchmarkId::new("path_form", depth), &depth, |b, _| {
            b.iter(|| {
                Engine::new(black_box(&schema), black_box(&sigma_local))
                    .unwrap()
                    .pool_size()
            })
        });
        group.bench_with_input(BenchmarkId::new("simple_form", depth), &depth, |b, _| {
            b.iter(|| {
                Engine::new(black_box(&schema), black_box(&sigma_simple))
                    .unwrap()
                    .pool_size()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_normalization, bench_engine_by_input_form);
criterion_main!(benches);
