//! Bench `saturation_kernel` (EXPERIMENTS.md §B14): the indexed
//! semi-naive kernel against the retained naive engine, like for like.
//!
//! `nfd_core::naive` preserves the pre-index saturation verbatim (full
//! pool subsumption scans, all-pairs resolution, pass-structured
//! chaining), so this harness times the *same* workloads through both
//! implementations:
//!
//! * B1's flat-chain and ladder families (build + query);
//! * a synthetic wide-Σ family — one flat relation, many overlapping
//!   dependencies — where the all-pairs saturation scan is quadratic
//!   while the occurrence-indexed worklist touches only resolvable
//!   pairs;
//! * B10's course session batch, reporting the session closure-cache
//!   hit rate on a repeated all-pairs goal sweep.
//!
//! This is a custom `harness = false` main rather than a criterion
//! bench so it can emit machine-readable `BENCH_B14.json` (path
//! overridable via `BENCH_B14_OUT`) for CI to archive. It honours the
//! workspace-wide `--test` smoke flag: one iteration on the smallest
//! sizes, still writing the JSON.

use nfd::session::Session;
use nfd_bench::*;
use nfd_core::engine::Engine;
use nfd_core::naive::NaiveEngine;
use nfd_core::{ClosureCache, Nfd, DEFAULT_CLOSURE_CACHE_CAPACITY};
use nfd_govern::Budget;
use nfd_model::Schema;
use std::hint::black_box;
use std::time::Instant;

/// One naive-vs-indexed measurement in the shared record schema.
fn row(workload: &'static str, param: usize, naive_ns: u128, indexed_ns: u128) -> BenchRecord {
    BenchRecord {
        bench_id: "B14",
        workload,
        param,
        baseline: "naive",
        baseline_ns: naive_ns,
        candidate: "indexed",
        candidate_ns: indexed_ns,
    }
}

/// Best-of-`iters` wall time of `f`, in nanoseconds. Minimum (not mean)
/// because the quantity of interest is the cost of the work itself, not
/// scheduler noise.
fn time_ns<T>(iters: usize, mut f: impl FnMut() -> T) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..iters {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_nanos());
    }
    best
}

/// All-pairs single-attribute goals over a flat schema.
fn all_pairs_goals(schema: &Schema, n: usize) -> Vec<Nfd> {
    let mut goals = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                goals.push(Nfd::parse(schema, &format!("R:[a{i} -> a{j}]")).unwrap());
            }
        }
    }
    goals
}

/// Build-time comparison: `NaiveEngine` vs `Engine` on identical
/// `(schema, Σ)` inputs.
fn bench_build(
    workload: &'static str,
    param: usize,
    schema: &Schema,
    sigma: &[Nfd],
    iters: usize,
) -> BenchRecord {
    let naive_ns = time_ns(iters, || NaiveEngine::new(schema, sigma).unwrap());
    let indexed_ns = time_ns(iters, || Engine::new(schema, sigma).unwrap());
    row(workload, param, naive_ns, indexed_ns)
}

/// Query-time comparison over pre-built engines.
fn bench_queries(
    workload: &'static str,
    param: usize,
    naive: &NaiveEngine<'_>,
    indexed: &Engine<'_>,
    goals: &[Nfd],
    iters: usize,
) -> BenchRecord {
    let naive_ns = time_ns(iters, || {
        goals.iter().filter(|g| naive.implies(g).unwrap()).count()
    });
    let indexed_ns = time_ns(iters, || {
        goals.iter().filter(|g| indexed.implies(g).unwrap()).count()
    });
    row(workload, param, naive_ns, indexed_ns)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let iters = if smoke { 1 } else { 5 };
    let mut rows: Vec<BenchRecord> = Vec::new();

    // B1 flat chain: a0 → a1 → … → a{n-1}.
    let flat_sizes: &[usize] = if smoke { &[8] } else { &[16, 24, 32] };
    for &n in flat_sizes {
        let schema = flat_schema(n);
        let sigma = flat_chain_sigma(&schema, n);
        rows.push(bench_build("flat_chain_build", n, &schema, &sigma, iters));
        let naive = NaiveEngine::new(&schema, &sigma).unwrap();
        let indexed = Engine::new(&schema, &sigma).unwrap();
        let goals = all_pairs_goals(&schema, n);
        rows.push(bench_queries(
            "flat_chain_queries",
            n,
            &naive,
            &indexed,
            &goals,
            iters,
        ));

        // The production repeated-query path: an engine with a closure
        // cache answers the sweep twice (the second pass is all hits),
        // against the naive engine recomputing every chain both times.
        let cached = Engine::new(&schema, &sigma)
            .unwrap()
            .with_closure_cache(std::sync::Arc::new(ClosureCache::with_capacity(
                DEFAULT_CLOSURE_CACHE_CAPACITY,
            )));
        let naive_ns = time_ns(iters, || {
            (0..2)
                .map(|_| goals.iter().filter(|g| naive.implies(g).unwrap()).count())
                .sum::<usize>()
        });
        let indexed_ns = time_ns(iters, || {
            (0..2)
                .map(|_| goals.iter().filter(|g| cached.implies(g).unwrap()).count())
                .sum::<usize>()
        });
        rows.push(row("flat_chain_queries_cached", n, naive_ns, indexed_ns));
    }

    // B1 ladder: nested prefixes exercising prefix-weakening and
    // full-locality during saturation.
    let depths: &[usize] = if smoke { &[4] } else { &[6, 8] };
    for &depth in depths {
        let schema = ladder_schema(depth);
        let sigma = ladder_sigma(&schema, depth);
        rows.push(bench_build("ladder_build", depth, &schema, &sigma, iters));
        let naive = NaiveEngine::new(&schema, &sigma).unwrap();
        let indexed = Engine::new(&schema, &sigma).unwrap();
        let goals = vec![ladder_goal(&schema, depth)];
        rows.push(bench_queries(
            "ladder_goal",
            depth,
            &naive,
            &indexed,
            &goals,
            iters,
        ));
    }

    // Wide Σ: the acceptance workload — overlapping dependencies over a
    // flat relation, scaling |Σ|.
    const WIDE_ATTRS: usize = 24;
    let wide_sizes: &[usize] = if smoke { &[32] } else { &[64, 128, 256] };
    // The naive engine takes seconds per build here — two iterations keep
    // the whole harness under half a minute without hiding the gap.
    let wide_iters = if smoke { 1 } else { 2 };
    for &n in wide_sizes {
        let schema = flat_schema(WIDE_ATTRS);
        let sigma = wide_sigma(&schema, WIDE_ATTRS, n);
        rows.push(bench_build(
            "wide_sigma_build",
            n,
            &schema,
            &sigma,
            wide_iters,
        ));
    }

    // B10 course session: a repeated all-pairs sweep through the session
    // front end; the second sweep should be served by the closure cache.
    let (schema, sigma) = course();
    let session = Session::new(&schema, &sigma).unwrap();
    let goals: Vec<Nfd> = {
        // Every pair of top-level course attributes.
        let attrs = ["cnum", "time", "room", "books", "students"];
        let mut out = Vec::new();
        for a in attrs {
            for b in attrs {
                if a != b {
                    if let Ok(g) = Nfd::parse(&schema, &format!("Course:[{a} -> {b}]")) {
                        out.push(g);
                    }
                }
            }
        }
        out
    };
    let budget = Budget::standard();
    let sweeps = if smoke { 2 } else { 8 };
    let course_ns = time_ns(1, || {
        for _ in 0..sweeps {
            session.implies_batch(&goals, &budget, 1).unwrap();
        }
    });
    let cache = session.cache_stats();

    // Human-readable report.
    println!(
        "B14 saturation kernel — naive vs indexed ({} iteration(s), best-of)",
        iters
    );
    println!(
        "{:<26} {:>6} {:>14} {:>14} {:>9}",
        "workload", "param", "naive (ns)", "indexed (ns)", "speedup"
    );
    for r in &rows {
        println!(
            "{:<26} {:>6} {:>14} {:>14} {:>8.2}x",
            r.workload,
            r.param,
            r.baseline_ns,
            r.candidate_ns,
            r.speedup()
        );
    }
    println!(
        "course session: {} goals x {} sweeps in {} ns; closure cache {} hits / {} misses",
        goals.len(),
        sweeps,
        course_ns,
        cache.hits,
        cache.misses
    );

    // Machine-readable BENCH_B14.json in the shared record schema
    // (workspace root by default so CI and EXPERIMENTS.md agree on one
    // path; override with BENCH_B14_OUT).
    let course_session = format!(
        "{{\"goals\": {}, \"sweeps\": {}, \"total_ns\": {}, \"cache_hits\": {}, \"cache_misses\": {}}}",
        goals.len(),
        sweeps,
        course_ns,
        cache.hits,
        cache.misses
    );
    BenchReport {
        bench_id: "B14",
        bench: "saturation_kernel",
        mode: if smoke { "smoke" } else { "full" },
        iters,
        records: rows,
        extra: vec![("course_session".to_string(), course_session)],
    }
    .write("BENCH_B14_OUT");
}
