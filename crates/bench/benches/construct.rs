//! Bench `construct` (EXPERIMENTS.md §B4): the Appendix A counterexample
//! construction as the schema widens and deepens.
//!
//! Expected shape: linear in the number of schema paths for fixed depth
//! (one `assignVal` per closure path, one `assignNew` per non-closure
//! child); deeper ladders additionally pay for the constants closures
//! `(p, ∅)*` that `newRow` consults.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nfd_bench::*;
use nfd_core::{construct, engine::Engine};
use nfd_path::{Path, RootedPath};
use std::hint::black_box;
use std::time::Duration;

fn bench_flat_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("construct/flat_width");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for n in [4usize, 8, 16, 32] {
        let schema = flat_schema(n);
        let sigma = flat_chain_sigma(&schema, n);
        let engine = Engine::new(&schema, &sigma).unwrap();
        let base = RootedPath::parse("R").unwrap();
        let x = vec![Path::parse("a0").unwrap()];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                construct::counterexample(black_box(&engine), &base, &x)
                    .unwrap()
                    .instance
                    .base_count()
            })
        });
    }
    group.finish();
}

fn bench_ladder_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("construct/ladder_depth");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    for depth in [1usize, 2, 3, 4] {
        let schema = ladder_schema(depth);
        let sigma = ladder_sigma(&schema, depth);
        let engine = Engine::new(&schema, &sigma).unwrap();
        let base = RootedPath::parse("R").unwrap();
        let x = vec![Path::parse("k0").unwrap()];
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| {
                construct::counterexample(black_box(&engine), &base, &x)
                    .unwrap()
                    .instance
                    .base_count()
            })
        });
    }
    group.finish();
}

/// Construction + full Lemma A.1 validation (what the completeness test
/// suite pays per trial).
fn bench_construct_and_validate(c: &mut Criterion) {
    let (schema, sigma, _) = worked_example();
    let engine = Engine::new(&schema, &sigma).unwrap();
    let base = RootedPath::parse("R").unwrap();
    let x = vec![Path::parse("A:B:C").unwrap()];
    let mut group = c.benchmark_group("construct/validate");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500));
    group.bench_function("worked_example", |b| {
        b.iter(|| {
            let built = construct::counterexample(black_box(&engine), &base, &x).unwrap();
            sigma
                .iter()
                .filter(|n| nfd_core::check(&schema, &built.instance, n).unwrap().holds)
                .count()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_flat_width,
    bench_ladder_depth,
    bench_construct_and_validate
);
criterion_main!(benches);
