//! Bench `closure` (EXPERIMENTS.md §B1): cost of the saturation engine —
//! pool construction and implication queries — as Σ grows (flat chains)
//! and as nesting deepens (ladders).
//!
//! Expected shape: pool construction superlinear in |Σ| (resolution
//! saturation), queries cheap after construction; depth multiplies the
//! path vocabulary and the full-locality opportunities, so ladders grow
//! faster than flat chains of the same |Σ|.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nfd_bench::*;
use nfd_core::engine::Engine;
use nfd_core::Nfd;
use std::hint::black_box;
use std::time::Duration;

fn bench_flat_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("closure/flat_chain");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for n in [4usize, 8, 16, 32] {
        let schema = flat_schema(n);
        let sigma = flat_chain_sigma(&schema, n);
        group.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
            b.iter(|| {
                Engine::new(black_box(&schema), black_box(&sigma))
                    .unwrap()
                    .pool_size()
            })
        });
        let engine = Engine::new(&schema, &sigma).unwrap();
        let goal = Nfd::parse(&schema, &format!("R:[a0 -> a{}]", n - 1)).unwrap();
        group.bench_with_input(BenchmarkId::new("query", n), &n, |b, _| {
            b.iter(|| engine.implies(black_box(&goal)).unwrap())
        });
    }
    group.finish();
}

fn bench_ladder(c: &mut Criterion) {
    let mut group = c.benchmark_group("closure/ladder_depth");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for depth in [1usize, 2, 3, 4] {
        let schema = ladder_schema(depth);
        let sigma = ladder_sigma(&schema, depth);
        let goal = ladder_goal(&schema, depth);
        group.bench_with_input(BenchmarkId::new("build", depth), &depth, |b, _| {
            b.iter(|| {
                Engine::new(black_box(&schema), black_box(&sigma))
                    .unwrap()
                    .pool_size()
            })
        });
        let engine = Engine::new(&schema, &sigma).unwrap();
        group.bench_with_input(BenchmarkId::new("query", depth), &depth, |b, _| {
            b.iter(|| engine.implies(black_box(&goal)).unwrap())
        });
    }
    group.finish();
}

fn bench_closure_set(c: &mut Criterion) {
    let mut group = c.benchmark_group("closure/closure_set");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for depth in [1usize, 2, 3] {
        let schema = ladder_schema(depth);
        let sigma = ladder_sigma(&schema, depth);
        let engine = Engine::new(&schema, &sigma).unwrap();
        let base = nfd_path::RootedPath::parse("R").unwrap();
        let x = vec![nfd_path::Path::parse("k0").unwrap()];
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| {
                engine
                    .closure(black_box(&base), black_box(&x))
                    .unwrap()
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flat_chain, bench_ladder, bench_closure_set);
criterion_main!(benches);
