//! Bench `incremental` (EXPERIMENTS.md §B9): constraint maintenance under
//! updates — the paper's "later updated" motivation. Compares validating
//! a stream of insertions through the persistent [`ConstraintIndex`]
//! against from-scratch rechecks after every insertion.
//!
//! Expected shape: full recheck is quadratic in stream length (each of
//! the n insertions rechecks O(n) accumulated tuples); the index is
//! linear (each insertion touches only its own assignments).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nfd_bench::course;
use nfd_core::incremental::ConstraintIndex;
use nfd_core::satisfy;
use nfd_model::gen::{GenConfig, Generator};
use nfd_model::{Instance, Label, RecordValue, Type, Value};
use std::hint::black_box;
use std::time::Duration;

fn stream(n: usize) -> (nfd_model::Schema, Vec<nfd_core::Nfd>, Vec<RecordValue>) {
    let (schema, sigma) = course();
    let rec_ty = schema
        .relation_type(Label::new("Course"))
        .unwrap()
        .element_record()
        .unwrap()
        .clone();
    let mut g = Generator::new(
        9,
        GenConfig {
            min_set: 1,
            max_set: 2,
            empty_prob: 0.0,
            domain: 64, // large domain: most insertions are accepted
        },
    );
    let tuples: Vec<RecordValue> = (0..n)
        .map(|_| {
            g.value(&Type::Record(rec_ty.clone()))
                .as_record()
                .unwrap()
                .clone()
        })
        .collect();
    (schema, sigma, tuples)
}

fn bench_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental/stream");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for n in [8usize, 32, 128] {
        let (schema, sigma, tuples) = stream(n);
        group.bench_with_input(BenchmarkId::new("index_insert", n), &n, |b, _| {
            b.iter(|| {
                let empty = Instance::parse(&schema, "Course = {};").unwrap();
                let mut index = ConstraintIndex::build(&schema, &empty, &sigma).unwrap();
                let mut accepted = 0usize;
                for t in &tuples {
                    if index.insert(black_box(t)).unwrap().is_none() {
                        accepted += 1;
                    }
                }
                accepted
            })
        });
        group.bench_with_input(BenchmarkId::new("full_recheck", n), &n, |b, _| {
            b.iter(|| {
                let mut accepted: Vec<Value> = Vec::new();
                let mut count = 0usize;
                for t in &tuples {
                    let mut with = accepted.clone();
                    with.push(Value::Record(t.clone()));
                    let trial =
                        Instance::new(&schema, vec![(Label::new("Course"), Value::set(with))])
                            .unwrap();
                    if satisfy::satisfies_all(&schema, black_box(&trial), &sigma).unwrap() {
                        accepted.push(Value::Record(t.clone()));
                        count += 1;
                    }
                }
                count
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stream);
criterion_main!(benches);
