//! Bench `satisfy` (EXPERIMENTS.md §B2): satisfaction checking cost as the
//! instance grows, for local vs global NFDs.
//!
//! Expected shape: a global NFD groups assignments from all tuples of the
//! relation (work ∝ tuples × fanout); a local NFD groups within one set
//! at a time, so the same totals with much smaller tables. Both are
//! linear in the number of assignments — the violation check is
//! hash-grouped rather than pairwise.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nfd_bench::*;
use nfd_core::{check, Nfd};
use std::hint::black_box;
use std::time::Duration;

fn bench_tuples(c: &mut Criterion) {
    let (schema, _) = course();
    let local = Nfd::parse(&schema, "Course:students:[sid -> grade]").unwrap();
    let global = Nfd::parse(&schema, "Course:[students:sid -> students:age]").unwrap();
    let key = Nfd::parse(&schema, "Course:[cnum -> books]").unwrap();

    let mut group = c.benchmark_group("satisfy/tuples");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for tuples in [4usize, 16, 64, 256] {
        let inst = course_instance(&schema, tuples, 3);
        for (name, nfd) in [("local", &local), ("global", &global), ("key", &key)] {
            group.bench_with_input(BenchmarkId::new(name, tuples), &tuples, |b, _| {
                b.iter(|| {
                    check(&schema, black_box(&inst), nfd)
                        .unwrap()
                        .assignments_checked
                })
            });
        }
    }
    group.finish();
}

fn bench_fanout(c: &mut Criterion) {
    let (schema, _) = course();
    let global = Nfd::parse(&schema, "Course:[students:sid -> students:age]").unwrap();
    let mut group = c.benchmark_group("satisfy/fanout");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for fanout in [1usize, 2, 4, 8, 16] {
        let inst = course_instance(&schema, 32, fanout);
        group.bench_with_input(BenchmarkId::from_parameter(fanout), &fanout, |b, _| {
            b.iter(|| {
                check(&schema, black_box(&inst), &global)
                    .unwrap()
                    .assignments_checked
            })
        });
    }
    group.finish();
}

/// Multi-path NFDs multiply assignments (cross product of trie branches).
fn bench_lhs_width(c: &mut Criterion) {
    let (schema, _) = course();
    let inst = course_instance(&schema, 32, 4);
    let goals = [
        ("one_path", "Course:[students:sid -> time]"),
        ("two_paths", "Course:[students:sid, books:isbn -> time]"),
        (
            "three_paths",
            "Course:[students:sid, students:grade, books:isbn -> time]",
        ),
    ];
    let mut group = c.benchmark_group("satisfy/lhs_width");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for (name, text) in goals {
        let nfd = Nfd::parse(&schema, text).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| {
                check(&schema, black_box(&inst), &nfd)
                    .unwrap()
                    .assignments_checked
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tuples, bench_fanout, bench_lhs_width);
criterion_main!(benches);
