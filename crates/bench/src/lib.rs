//! # nfd-bench — workload generators for the benchmark harness
//!
//! The Criterion benches under `benches/` regenerate the performance
//! characterization recorded in `EXPERIMENTS.md` (the paper itself is
//! theory-only, so its "evaluation" artifacts are reproduced exactly in
//! the test suite; the benches characterize the algorithms it introduces).
//!
//! Everything here is deterministic: workloads are parameterized by size,
//! never by randomness, so bench runs are comparable.

#![warn(missing_docs)]

use nfd_core::nfd::parse_set;
use nfd_core::Nfd;
use nfd_model::gen::{GenConfig, Generator};
use nfd_model::{Instance, Schema};
use std::fmt::Write as _;

/// One measurement in the stable bench-record schema shared by the
/// machine-readable emitters (`BENCH_B14.json`, `BENCH_B15.json`).
///
/// Every record names its `bench_id`, `workload`, the `baseline` and
/// `candidate` implementations being compared, their best-of wall times,
/// and the derived `speedup` — so the performance trajectory stays
/// diffable across PRs without each bench inventing its own keys.
pub struct BenchRecord {
    /// Experiment id (`"B14"`, `"B15"`).
    pub bench_id: &'static str,
    /// Workload family (`"flat_chain_queries"`, …).
    pub workload: &'static str,
    /// Workload size parameter.
    pub param: usize,
    /// What `baseline_ns` measured (`"naive"`, …).
    pub baseline: &'static str,
    /// Best-of wall time of the baseline, nanoseconds.
    pub baseline_ns: u128,
    /// What `candidate_ns` measured (`"indexed"`, `"auto"`, `"dense"`).
    pub candidate: &'static str,
    /// Best-of wall time of the candidate, nanoseconds.
    pub candidate_ns: u128,
}

impl BenchRecord {
    /// Baseline time over candidate time (>1 means the candidate wins).
    pub fn speedup(&self) -> f64 {
        if self.candidate_ns == 0 {
            return f64::INFINITY;
        }
        self.baseline_ns as f64 / self.candidate_ns as f64
    }

    fn json(&self) -> String {
        format!(
            "{{\"bench_id\": \"{}\", \"workload\": \"{}\", \"param\": {}, \
             \"baseline\": \"{}\", \"baseline_ns\": {}, \
             \"candidate\": \"{}\", \"candidate_ns\": {}, \"speedup\": {:.3}}}",
            self.bench_id,
            self.workload,
            self.param,
            self.baseline,
            self.baseline_ns,
            self.candidate,
            self.candidate_ns,
            self.speedup()
        )
    }
}

/// A full machine-readable bench report in the shared schema: header,
/// `results` array of [`BenchRecord`]s, and optional bench-specific
/// trailer fields (pre-rendered JSON values).
pub struct BenchReport {
    /// Experiment id (`"B14"`).
    pub bench_id: &'static str,
    /// Harness name (`"saturation_kernel"`).
    pub bench: &'static str,
    /// `"smoke"` under `--test`, `"full"` otherwise.
    pub mode: &'static str,
    /// Best-of iteration count the times were taken over.
    pub iters: usize,
    /// The measurements.
    pub records: Vec<BenchRecord>,
    /// Extra top-level fields: `(key, rendered JSON value)`.
    pub extra: Vec<(String, String)>,
}

impl BenchReport {
    /// Render the whole report as stable, human-diffable JSON.
    pub fn to_json(&self) -> String {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"bench_id\": \"{}\",", self.bench_id);
        let _ = writeln!(json, "  \"bench\": \"{}\",", self.bench);
        let _ = writeln!(json, "  \"mode\": \"{}\",", self.mode);
        let _ = writeln!(json, "  \"iters\": {},", self.iters);
        let _ = writeln!(json, "  \"results\": [");
        for (i, r) in self.records.iter().enumerate() {
            let comma = if i + 1 < self.records.len() { "," } else { "" };
            let _ = writeln!(json, "    {}{comma}", r.json());
        }
        let trailer = if self.extra.is_empty() { "" } else { "," };
        let _ = writeln!(json, "  ]{trailer}");
        for (i, (key, value)) in self.extra.iter().enumerate() {
            let comma = if i + 1 < self.extra.len() { "," } else { "" };
            let _ = writeln!(json, "  \"{key}\": {value}{comma}");
        }
        json.push('}');
        json.push('\n');
        json
    }

    /// Write the report to `$env_var` if set, else to
    /// `BENCH_<bench_id>.json` at the workspace root (benches run with
    /// the package as cwd, so the default is anchored to the manifest).
    pub fn write(&self, env_var: &str) {
        let out = std::env::var(env_var).unwrap_or_else(|_| {
            format!(
                "{}/../../BENCH_{}.json",
                env!("CARGO_MANIFEST_DIR"),
                self.bench_id
            )
        });
        if let Err(e) = std::fs::write(&out, self.to_json()) {
            eprintln!("warning: could not write {out}: {e}");
        } else {
            println!("wrote {out}");
        }
    }
}

/// A flat schema `R : {<a0: int, …, a{n-1}: int>}`.
pub fn flat_schema(n: usize) -> Schema {
    let fields = (0..n)
        .map(|i| format!("a{i}: int"))
        .collect::<Vec<_>>()
        .join(", ");
    Schema::parse(&format!("R : {{<{fields}>}};")).expect("flat schema parses")
}

/// A transitive chain `a0 → a1, a1 → a2, …` over [`flat_schema`]`(n)`.
pub fn flat_chain_sigma(schema: &Schema, n: usize) -> Vec<Nfd> {
    let text = (0..n - 1)
        .map(|i| format!("R:[a{i} -> a{}];", i + 1))
        .collect::<String>();
    parse_set(schema, &text).expect("chain parses")
}

/// The same chain as classical FDs for the Armstrong baseline.
pub fn flat_chain_fds(n: usize) -> Vec<nfd_relational::Fd> {
    (0..n - 1)
        .map(|i| {
            nfd_relational::Fd::of([format!("a{i}").as_str()], [format!("a{}", i + 1).as_str()])
        })
        .collect()
}

/// A nested "ladder" schema of the given depth:
/// `R : {<k0: int, v0: int, s0: {<k1: int, v1: int, s1: {…}>}>}`.
pub fn ladder_schema(depth: usize) -> Schema {
    fn level(d: usize, depth: usize) -> String {
        if d == depth {
            format!("{{<k{d}: int, v{d}: int>}}")
        } else {
            format!("{{<k{d}: int, v{d}: int, s{d}: {}>}}", level(d + 1, depth))
        }
    }
    Schema::parse(&format!("R : {};", level(0, depth))).expect("ladder schema parses")
}

/// Per-level key constraints on a ladder: at every level, `k` determines
/// `v` and the nested set.
pub fn ladder_sigma(schema: &Schema, depth: usize) -> Vec<Nfd> {
    let mut text = String::new();
    let mut base = String::from("R");
    for d in 0..=depth {
        text.push_str(&format!("{base}:[k{d} -> v{d}];"));
        if d < depth {
            text.push_str(&format!("{base}:[k{d} -> s{d}];"));
            base.push_str(&format!(":s{d}"));
        }
    }
    parse_set(schema, &text).expect("ladder sigma parses")
}

/// The goal "the keys of every level jointly determine the innermost
/// value" — derivable, but only by chaining through every level of the
/// ladder (set determination at each step, then the local key inside).
pub fn ladder_goal(schema: &Schema, depth: usize) -> Nfd {
    let mut lhs = vec!["k0".to_string()];
    let mut spine = String::new();
    for d in 0..depth {
        if !spine.is_empty() {
            spine.push(':');
        }
        spine.push_str(&format!("s{d}"));
        lhs.push(format!("{spine}:k{}", d + 1));
    }
    let rhs = if spine.is_empty() {
        format!("v{depth}")
    } else {
        format!("{spine}:v{depth}")
    };
    Nfd::parse(schema, &format!("R:[{} -> {rhs}]", lhs.join(", "))).expect("ladder goal parses")
}

/// The wide-Σ family over [`flat_schema`]`(attrs)`: `n` deterministic
/// two-LHS dependencies whose paths overlap heavily, so almost every
/// pool entry shares paths with many others — the shape where all-pairs
/// naive saturation degrades quadratically (B14/B15).
pub fn wide_sigma(schema: &Schema, attrs: usize, n: usize) -> Vec<Nfd> {
    // Deterministic splitmix-style attribute picks: a polynomial in `i`
    // mod `attrs` would repeat with period `attrs` and collapse under
    // subsumption, so hash `i` into well-spread 64-bit states instead.
    let pick = |i: usize, salt: u64| -> usize {
        let mut z = (i as u64)
            .wrapping_add(salt)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) as usize % attrs
    };
    (0..n)
        .map(|i| {
            let a = pick(i, 1);
            let b = pick(i, 2);
            let c = pick(i, 3);
            Nfd::parse(schema, &format!("R:[a{a}, a{b} -> a{c}]")).unwrap()
        })
        .collect()
}

/// A multi-relation flat schema: `relations` copies of
/// [`flat_schema`]`(attrs)` named `R0 … R{relations-1}`, attributes
/// prefixed per relation (`r0a0, …`) so every label stays globally
/// unique (the paper's no-repeated-labels assumption).
pub fn multi_flat_schema(relations: usize, attrs: usize) -> Schema {
    let mut text = String::new();
    for r in 0..relations.max(1) {
        let fields = (0..attrs)
            .map(|i| format!("r{r}a{i}: int"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(text, "R{r} : {{<{fields}>}};");
    }
    Schema::parse(&text).expect("multi flat schema parses")
}

/// The wide-Σ family over every relation of a
/// [`multi_flat_schema`]`(relations, attrs)`: `n` overlapping two-LHS
/// dependencies per relation, same deterministic attribute hashing as
/// [`wide_sigma`]. Every relation gets the *same* pick sequence modulo
/// its label prefix, so the relations are isomorphic and each one
/// contributes exactly 1/`relations` of the saturation work — the
/// controlled shape for the incremental-maintenance headline: a
/// single-dep mutation names one relation, so a delta rebuild redoes
/// precisely that share of what a full reconfigure redoes. (Saturation
/// cost is highly sensitive to the dep structure; per-relation salting
/// would make the touched relation's share an uncontrolled variable.)
pub fn multi_wide_sigma(schema: &Schema, relations: usize, attrs: usize, n: usize) -> Vec<Nfd> {
    let pick = |i: usize, salt: u64| -> usize {
        let mut z = (i as u64)
            .wrapping_add(salt)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) as usize % attrs
    };
    let mut sigma = Vec::with_capacity(relations * n);
    for r in 0..relations.max(1) {
        for i in 0..n {
            let a = pick(i, 1);
            let b = pick(i, 2);
            let c = pick(i, 3);
            sigma.push(
                Nfd::parse(schema, &format!("R{r}:[r{r}a{a}, r{r}a{b} -> r{r}a{c}]")).unwrap(),
            );
        }
    }
    sigma
}

/// The Course schema and constraints of the paper (E1).
pub fn course() -> (Schema, Vec<Nfd>) {
    let schema = Schema::parse(
        "Course : { <cnum: string, time: int,
                     students: {<sid: int, age: int, grade: string>},
                     books: {<isbn: string, title: string>}> };",
    )
    .unwrap();
    let sigma = parse_set(
        &schema,
        "Course:[cnum -> time]; Course:[cnum -> students]; Course:[cnum -> books];
         Course:[books:isbn -> books:title];
         Course:students:[sid -> grade];
         Course:[students:sid -> students:age];
         Course:[time, students:sid -> cnum];",
    )
    .unwrap();
    (schema, sigma)
}

/// A deterministic Course-shaped instance with `tuples` courses and
/// `fanout` students/books each.
pub fn course_instance(schema: &Schema, tuples: usize, fanout: usize) -> Instance {
    let mut g = Generator::new(
        42,
        GenConfig {
            min_set: fanout,
            max_set: fanout,
            empty_prob: 0.0,
            domain: (tuples * fanout * 8).max(16) as u32,
        },
    );
    // The generator draws set sizes; for the relation itself we assemble
    // the requested number of tuples explicitly.
    let rec = schema
        .relation_type(nfd_model::Label::new("Course"))
        .unwrap()
        .element_record()
        .unwrap()
        .clone();
    let elems: Vec<nfd_model::Value> = (0..tuples)
        .map(|_| g.value(&nfd_model::Type::Record(rec.clone())))
        .collect();
    Instance::new(
        schema,
        vec![(
            nfd_model::Label::new("Course"),
            nfd_model::Value::set(elems),
        )],
    )
    .expect("generated instance validates")
}

/// The Section 3.1 worked example: schema, Σ, goal.
pub fn worked_example() -> (Schema, Vec<Nfd>, Nfd) {
    let schema =
        Schema::parse("R : { <A: {<B: {<C: int>}, E: {<F: int, G: int>}>}, D: int> };").unwrap();
    let sigma = parse_set(&schema, "R:[A:B:C, D -> A:E:F]; R:A:[B -> E:G];").unwrap();
    let goal = Nfd::parse(&schema, "R:A:[B -> E]").unwrap();
    (schema, sigma, goal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfd_core::engine::Engine;

    #[test]
    fn flat_chain_workload_is_consistent() {
        let schema = flat_schema(6);
        let sigma = flat_chain_sigma(&schema, 6);
        assert_eq!(sigma.len(), 5);
        let engine = Engine::new(&schema, &sigma).unwrap();
        let goal = Nfd::parse(&schema, "R:[a0 -> a5]").unwrap();
        assert!(engine.implies(&goal).unwrap());
    }

    #[test]
    fn ladder_workload_is_consistent() {
        for depth in 1..=3 {
            let schema = ladder_schema(depth);
            let sigma = ladder_sigma(&schema, depth);
            let goal = ladder_goal(&schema, depth);
            let engine = Engine::new(&schema, &sigma).unwrap();
            assert!(engine.implies(&goal).unwrap(), "depth {depth}");
        }
    }

    #[test]
    fn course_instance_scales() {
        let (schema, sigma) = course();
        let inst = course_instance(&schema, 8, 3);
        assert!(
            inst.relation(nfd_model::Label::new("Course"))
                .unwrap()
                .len()
                >= 6
        );
        // The generated instance need not satisfy Σ — it is a checking
        // workload — but checking must run without errors.
        for nfd in &sigma {
            nfd_core::check(&schema, &inst, nfd).unwrap();
        }
    }

    #[test]
    fn multi_wide_workload_is_consistent() {
        let schema = multi_flat_schema(3, 8);
        let sigma = multi_wide_sigma(&schema, 3, 8, 6);
        assert_eq!(sigma.len(), 18);
        let mut engine = Engine::new(&schema, &sigma).unwrap();
        // A mutation in R0 leaves the other relations' pools untouched
        // and stays bit-identical to a fresh build.
        let extra = Nfd::parse(&schema, "R0:[r0a0 -> r0a7]").unwrap();
        engine.add_dep(&extra).unwrap();
        let mut grown = sigma.clone();
        grown.push(extra);
        assert_eq!(
            engine.pool_dump(),
            Engine::new(&schema, &grown).unwrap().pool_dump()
        );
    }

    #[test]
    fn worked_example_is_consistent() {
        let (schema, sigma, goal) = worked_example();
        let engine = Engine::new(&schema, &sigma).unwrap();
        assert!(engine.implies(&goal).unwrap());
    }
}
