//! Cost-model calibration: replaying the B14 workload shapes through the
//! session front end, the auto router must never be more than 1.5x
//! slower than the best fixed tier on the same workload.
//!
//! This is the guard on the `CostModel` constants in
//! `nfd_core::select`: if a threshold drifts so far that auto routes a
//! workload to a tier grossly worse than the best available one, this
//! test fails. Timing comparisons are inherently noisy, so each workload
//! gets several attempts and passes if any attempt lands inside the bar;
//! the bar itself (1.5x) is deliberately generous — the target is
//! "never catastrophically misrouted", not "always optimal".

use nfd::session::Session;
use nfd_bench::*;
use nfd_core::{EmptySetPolicy, Nfd, Tier, TierPreference};
use nfd_govern::Budget;
use nfd_model::Schema;
use std::hint::black_box;
use std::time::Instant;

/// Auto may be at most this much slower than the best fixed tier.
const SLOWDOWN_BAR: f64 = 1.5;

/// Noise-tolerance: attempts before the workload is declared misrouted.
const ATTEMPTS: usize = 6;

/// Wall time of `passes` full sweeps over `goals` through a fresh
/// session built with `pref`. The session is fresh per measurement so
/// the auto router pays its whole decision cost — query counting,
/// promotion, dense build — inside the timed region, exactly as a cold
/// client would experience it.
fn sweep_ns(
    schema: &Schema,
    sigma: &[Nfd],
    pref: TierPreference,
    goals: &[Nfd],
    passes: usize,
) -> u128 {
    let session = Session::with_tiers(
        schema,
        sigma,
        EmptySetPolicy::Forbidden,
        Budget::standard(),
        pref,
    )
    .unwrap();
    let t = Instant::now();
    for _ in 0..passes {
        let implied = goals.iter().filter(|g| session.implies(g).unwrap()).count();
        black_box(implied);
    }
    t.elapsed().as_nanos().max(1)
}

/// One calibration attempt: (auto ns, best fixed-tier ns).
fn measure(schema: &Schema, sigma: &[Nfd], goals: &[Nfd], passes: usize) -> (u128, u128) {
    let fixed = [Tier::Naive, Tier::Indexed, Tier::Dense]
        .map(|t| sweep_ns(schema, sigma, TierPreference::Fixed(t), goals, passes));
    let auto = sweep_ns(schema, sigma, TierPreference::Auto, goals, passes);
    (auto, fixed.into_iter().min().unwrap())
}

fn assert_calibrated(name: &str, schema: &Schema, sigma: &[Nfd], goals: &[Nfd], passes: usize) {
    let mut worst = (0u128, 0u128);
    for attempt in 0..ATTEMPTS {
        let (auto_ns, best_ns) = measure(schema, sigma, goals, passes);
        if auto_ns as f64 <= best_ns as f64 * SLOWDOWN_BAR {
            return;
        }
        worst = (auto_ns, best_ns);
        eprintln!(
            "{name}: attempt {attempt}: auto {auto_ns} ns vs best fixed {best_ns} ns — retrying"
        );
    }
    panic!(
        "{name}: auto tier is consistently >{SLOWDOWN_BAR}x slower than the best \
         fixed tier ({} ns vs {} ns) — the cost model is miscalibrated",
        worst.0, worst.1
    );
}

/// All-pairs single-attribute goals over a flat schema (the B14 query
/// sweep shape).
fn all_pairs_goals(schema: &Schema, n: usize) -> Vec<Nfd> {
    let mut goals = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                goals.push(Nfd::parse(schema, &format!("R:[a{i} -> a{j}]")).unwrap());
            }
        }
    }
    goals
}

/// B14's flat transitive chain, all-pairs sweep: the shape where the
/// one-shot naive scan used to beat the indexed kernel uncached, and
/// where the dense matrix wins once the sweep repeats.
#[test]
fn flat_chain_sweep_is_calibrated() {
    let n = 16;
    let schema = flat_schema(n);
    let sigma = flat_chain_sigma(&schema, n);
    let goals = all_pairs_goals(&schema, n);
    assert_calibrated("flat_chain", &schema, &sigma, &goals, 2);
}

/// B14's ladder goal, repeated: deep nested chaining where every tier
/// answers from the closure cache after the first query.
#[test]
fn ladder_goal_is_calibrated() {
    let depth = 6;
    let schema = ladder_schema(depth);
    let sigma = ladder_sigma(&schema, depth);
    let goals = vec![ladder_goal(&schema, depth)];
    assert_calibrated("ladder", &schema, &sigma, &goals, 64);
}

/// B14's course session sweep, repeated: the hot-relation shape the
/// promotion machinery targets — by the second pass auto should be on
/// the dense tier (or the closure cache), never far behind the best.
#[test]
fn course_sweep_is_calibrated() {
    let (schema, sigma) = course();
    let attrs = ["cnum", "time", "room", "books", "students"];
    let mut goals = Vec::new();
    for a in attrs {
        for b in attrs {
            if a != b {
                if let Ok(g) = Nfd::parse(&schema, &format!("Course:[{a} -> {b}]")) {
                    goals.push(g);
                }
            }
        }
    }
    assert_calibrated("course", &schema, &sigma, &goals, 8);
}
