//! The line-oriented request/response protocol.
//!
//! One request per `\n`-terminated line, one single-line response per
//! request. The request grammar (verbs are case-insensitive, tenant
//! names are `[A-Za-z0-9._-]{1,64}`):
//!
//! ```text
//! LOAD <name> <schema-src> | <deps-src>   compile and keep a session resident
//! IMPLIES <name> <nfd>                    Σ ⊨ σ against the resident session
//! BATCH <name> <nfd;nfd;…>                many goals, one line, per-goal verdicts
//! CLOSURE <name> <base> [<p1,p2,…>]       dependency closure of the LHS
//! KEYS <name> <relation>                  candidate keys (size ≤ 4)
//! ADDDEP <name> <nfd>                     add the NFD to the resident Σ (delta)
//! DROPDEP <name> <nfd>                    retract the NFD from the resident Σ
//! SNAPSHOT <name> <path>                  freeze the resident session to a file
//! RESTORE <name> <path>                   thaw a session from a snapshot file
//! QUOTA <name> <units>                    set the tenant's remaining work quota
//! EVICT <name>                            drop the resident session
//! STATS                                   registry + server counters
//! PING                                    liveness probe
//! SHUTDOWN                                drain in-flight work, then exit
//! ```
//!
//! Schema and dependency sources ride on the line verbatim (the text
//! syntaxes need no newlines); `|` separates them in `LOAD` — it appears
//! in neither grammar.
//!
//! The response grammar has exactly four first words, so a client can
//! dispatch on `line.split(' ').next()`:
//!
//! ```text
//! OK [payload]          the request succeeded
//! ERR <message>         bad input, unknown tenant, or a contained crash
//! BUSY <message>        load-shed: admission queue full or wait expired
//! EXHAUSTED <message>   a budget, deadline or tenant quota ran out
//! ```
//!
//! `EXHAUSTED` is the wire form of the workspace's three-valued
//! [`Verdict`](nfd_govern::Verdict) discipline: an honest "don't know
//! yet", never a wrong answer. `ERR` is the wire form of the CLI's
//! exit-code-101 discipline: a contained panic costs one request its
//! answer, not the process its life.

/// Hard cap on tenant names: short, shell-safe, log-safe.
pub const MAX_TENANT_NAME: usize = 64;

/// A parsed request line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// Compile `schema`/`deps` and keep the session resident as `name`.
    Load {
        /// Tenant name the session is registered under.
        name: String,
        /// Schema source text (the `nfd_model` grammar).
        schema: String,
        /// Dependency-set source text (the `nfd_core::nfd` grammar).
        deps: String,
    },
    /// Decide `Σ ⊨ goal` against the resident session `name`.
    Implies {
        /// Tenant name.
        name: String,
        /// Goal NFD source text.
        goal: String,
    },
    /// Decide every goal of a `;`-separated set against `name`.
    Batch {
        /// Tenant name.
        name: String,
        /// Goal set source text.
        goals: String,
    },
    /// The dependency closure `(base, lhs, Σ)*` against `name`.
    Closure {
        /// Tenant name.
        name: String,
        /// Base rooted path, e.g. `Course` or `Course:students`.
        base: String,
        /// Comma-separated LHS paths (empty = the empty LHS).
        lhs: Option<String>,
    },
    /// Candidate keys of `relation` against `name`.
    Keys {
        /// Tenant name.
        name: String,
        /// Relation label.
        relation: String,
    },
    /// Add `dep` to the resident session's Σ (incremental delta
    /// saturation; only the named relation re-saturates).
    AddDep {
        /// Tenant name.
        name: String,
        /// NFD source text to add.
        dep: String,
    },
    /// Retract `dep` from the resident session's Σ (counting
    /// retraction; the NFD must be present).
    DropDep {
        /// Tenant name.
        name: String,
        /// NFD source text to remove.
        dep: String,
    },
    /// Freeze the resident session `name` to a checksummed snapshot
    /// file (written atomically: temp file, flush, rename).
    Snapshot {
        /// Tenant name.
        name: String,
        /// Filesystem path the snapshot is written to.
        path: String,
    },
    /// Thaw a session from a snapshot file and keep it resident as
    /// `name`. A corrupt or partial image degrades to a fresh compile
    /// of the sources salvaged from the snapshot when possible.
    Restore {
        /// Tenant name.
        name: String,
        /// Filesystem path the snapshot is read from.
        path: String,
    },
    /// Set the tenant's remaining work-unit quota.
    Quota {
        /// Tenant name.
        name: String,
        /// Remaining units (0 denies every subsequent query).
        units: u64,
    },
    /// Drop the resident session `name`.
    Evict {
        /// Tenant name.
        name: String,
    },
    /// Registry and server counters, one line.
    Stats,
    /// Liveness probe; answered by the server itself.
    Ping,
    /// Drain in-flight work, then exit.
    Shutdown,
}

impl Command {
    /// Parses one request line. Errors are human-readable fragments
    /// suitable for an `ERR` response.
    pub fn parse(line: &str) -> Result<Command, String> {
        let line = line.trim();
        let (verb, rest) = match line.split_once(char::is_whitespace) {
            Some((v, r)) => (v, r.trim()),
            None => (line, ""),
        };
        let arg_free = |cmd: Command| {
            if rest.is_empty() {
                Ok(cmd)
            } else {
                Err(format!(
                    "`{}` takes no arguments",
                    verb.to_ascii_uppercase()
                ))
            }
        };
        match verb.to_ascii_uppercase().as_str() {
            "" => Err("empty request".to_string()),
            "STATS" => arg_free(Command::Stats),
            "PING" => arg_free(Command::Ping),
            "SHUTDOWN" => arg_free(Command::Shutdown),
            "LOAD" => {
                let (name, rest) = take_name(rest, "LOAD")?;
                let (schema, deps) = rest
                    .split_once('|')
                    .ok_or("LOAD needs `<name> <schema-src> | <deps-src>`")?;
                let (schema, deps) = (schema.trim(), deps.trim());
                if schema.is_empty() {
                    return Err("LOAD: empty schema source".to_string());
                }
                Ok(Command::Load {
                    name,
                    schema: schema.to_string(),
                    deps: deps.to_string(),
                })
            }
            "IMPLIES" => {
                let (name, goal) = take_name(rest, "IMPLIES")?;
                if goal.is_empty() {
                    return Err("IMPLIES needs `<name> <nfd>`".to_string());
                }
                Ok(Command::Implies {
                    name,
                    goal: goal.to_string(),
                })
            }
            "BATCH" => {
                let (name, goals) = take_name(rest, "BATCH")?;
                if goals.is_empty() {
                    return Err("BATCH needs `<name> <nfd;nfd;…>`".to_string());
                }
                Ok(Command::Batch {
                    name,
                    goals: goals.to_string(),
                })
            }
            "CLOSURE" => {
                let (name, rest) = take_name(rest, "CLOSURE")?;
                let mut parts = rest.split_whitespace();
                let base = parts
                    .next()
                    .ok_or("CLOSURE needs `<name> <base> [<p1,p2,…>]`")?
                    .to_string();
                let lhs = parts.next().map(str::to_string);
                if parts.next().is_some() {
                    return Err("CLOSURE takes at most `<base> <p1,p2,…>`".to_string());
                }
                Ok(Command::Closure { name, base, lhs })
            }
            "KEYS" => {
                let (name, relation) = take_name(rest, "KEYS")?;
                let relation = relation.trim();
                if relation.is_empty() || relation.contains(char::is_whitespace) {
                    return Err("KEYS needs `<name> <relation>`".to_string());
                }
                Ok(Command::Keys {
                    name,
                    relation: relation.to_string(),
                })
            }
            "ADDDEP" => {
                let (name, dep) = take_name(rest, "ADDDEP")?;
                if dep.is_empty() {
                    return Err("ADDDEP needs `<name> <nfd>`".to_string());
                }
                Ok(Command::AddDep {
                    name,
                    dep: dep.to_string(),
                })
            }
            "DROPDEP" => {
                let (name, dep) = take_name(rest, "DROPDEP")?;
                if dep.is_empty() {
                    return Err("DROPDEP needs `<name> <nfd>`".to_string());
                }
                Ok(Command::DropDep {
                    name,
                    dep: dep.to_string(),
                })
            }
            "SNAPSHOT" => {
                let (name, path) = take_name(rest, "SNAPSHOT")?;
                if path.is_empty() {
                    return Err("SNAPSHOT needs `<name> <path>`".to_string());
                }
                Ok(Command::Snapshot {
                    name,
                    path: path.to_string(),
                })
            }
            "RESTORE" => {
                let (name, path) = take_name(rest, "RESTORE")?;
                if path.is_empty() {
                    return Err("RESTORE needs `<name> <path>`".to_string());
                }
                Ok(Command::Restore {
                    name,
                    path: path.to_string(),
                })
            }
            "QUOTA" => {
                let (name, units) = take_name(rest, "QUOTA")?;
                let units: u64 = units.trim().parse().map_err(|_| {
                    format!(
                        "QUOTA units must be a non-negative integer, got `{}`",
                        units.trim()
                    )
                })?;
                Ok(Command::Quota { name, units })
            }
            "EVICT" => {
                let (name, tail) = take_name(rest, "EVICT")?;
                if !tail.is_empty() {
                    return Err("EVICT takes only `<name>`".to_string());
                }
                Ok(Command::Evict { name })
            }
            other => Err(format!("unknown command `{other}`")),
        }
    }

    /// The verb, for logs and dispatch tables.
    pub fn verb(&self) -> &'static str {
        match self {
            Command::Load { .. } => "LOAD",
            Command::Implies { .. } => "IMPLIES",
            Command::Batch { .. } => "BATCH",
            Command::Closure { .. } => "CLOSURE",
            Command::Keys { .. } => "KEYS",
            Command::AddDep { .. } => "ADDDEP",
            Command::DropDep { .. } => "DROPDEP",
            Command::Snapshot { .. } => "SNAPSHOT",
            Command::Restore { .. } => "RESTORE",
            Command::Quota { .. } => "QUOTA",
            Command::Evict { .. } => "EVICT",
            Command::Stats => "STATS",
            Command::Ping => "PING",
            Command::Shutdown => "SHUTDOWN",
        }
    }

    /// Does this command do real decision-procedure work (and therefore
    /// pass through the admission gate)? Control-plane commands must
    /// keep working under overload — `STATS` under load shedding is how
    /// an operator sees the shedding.
    pub fn is_workload(&self) -> bool {
        matches!(
            self,
            Command::Load { .. }
                | Command::Implies { .. }
                | Command::Batch { .. }
                | Command::Closure { .. }
                | Command::Keys { .. }
                | Command::AddDep { .. }
                | Command::DropDep { .. }
                | Command::Snapshot { .. }
                | Command::Restore { .. }
        )
    }
}

/// Splits a validated tenant name off the front of `rest`.
fn take_name<'a>(rest: &'a str, verb: &str) -> Result<(String, &'a str), String> {
    let (name, tail) = match rest.split_once(char::is_whitespace) {
        Some((n, t)) => (n, t.trim()),
        None => (rest, ""),
    };
    if name.is_empty() {
        return Err(format!("{verb} needs a tenant name"));
    }
    if name.len() > MAX_TENANT_NAME {
        return Err(format!("tenant name longer than {MAX_TENANT_NAME} bytes"));
    }
    if !name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
    {
        return Err(format!("tenant name `{name}` must match [A-Za-z0-9._-]+"));
    }
    Ok((name.to_string(), tail))
}

/// A single-line response, rendered to the wire by [`Response::wire`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Success, with an optional payload.
    Ok(String),
    /// Bad input, unknown tenant, or a contained internal failure.
    Err(String),
    /// Load-shed by the admission gate.
    Busy(String),
    /// A budget, deadline or tenant quota ran out before a verdict.
    Exhausted(String),
}

impl Response {
    /// The wire form: first word is the kind, the rest the sanitized
    /// payload; always exactly one line (no trailing newline).
    pub fn wire(&self) -> String {
        let (word, payload) = match self {
            Response::Ok(p) => ("OK", p),
            Response::Err(p) => ("ERR", p),
            Response::Busy(p) => ("BUSY", p),
            Response::Exhausted(p) => ("EXHAUSTED", p),
        };
        let payload = sanitize(payload);
        if payload.is_empty() {
            word.to_string()
        } else {
            format!("{word} {payload}")
        }
    }

    /// Is this the success variant?
    pub fn is_ok(&self) -> bool {
        matches!(self, Response::Ok(_))
    }
}

/// Collapses newlines so any payload fits the one-line-per-response
/// framing (panic messages and parser errors can be multi-line).
pub fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
        .collect::<String>()
        .trim()
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_verb() {
        assert_eq!(
            Command::parse("LOAD t R:{<A:int>}; | R:[A -> A];"),
            Ok(Command::Load {
                name: "t".into(),
                schema: "R:{<A:int>};".into(),
                deps: "R:[A -> A];".into()
            })
        );
        assert_eq!(
            Command::parse("implies t R:[A -> B]"),
            Ok(Command::Implies {
                name: "t".into(),
                goal: "R:[A -> B]".into()
            })
        );
        assert_eq!(
            Command::parse("BATCH t R:[A -> B]; R:[B -> A];"),
            Ok(Command::Batch {
                name: "t".into(),
                goals: "R:[A -> B]; R:[B -> A];".into()
            })
        );
        assert_eq!(
            Command::parse("CLOSURE t Course cnum,time"),
            Ok(Command::Closure {
                name: "t".into(),
                base: "Course".into(),
                lhs: Some("cnum,time".into())
            })
        );
        assert_eq!(
            Command::parse("CLOSURE t Course"),
            Ok(Command::Closure {
                name: "t".into(),
                base: "Course".into(),
                lhs: None
            })
        );
        assert_eq!(
            Command::parse("KEYS t Course"),
            Ok(Command::Keys {
                name: "t".into(),
                relation: "Course".into()
            })
        );
        assert_eq!(
            Command::parse("ADDDEP t R:[A -> B]"),
            Ok(Command::AddDep {
                name: "t".into(),
                dep: "R:[A -> B]".into()
            })
        );
        assert_eq!(
            Command::parse("dropdep t R:[A -> B]"),
            Ok(Command::DropDep {
                name: "t".into(),
                dep: "R:[A -> B]".into()
            })
        );
        assert_eq!(
            Command::parse("SNAPSHOT t /tmp/t.snap"),
            Ok(Command::Snapshot {
                name: "t".into(),
                path: "/tmp/t.snap".into()
            })
        );
        assert_eq!(
            Command::parse("restore t /tmp/t.snap"),
            Ok(Command::Restore {
                name: "t".into(),
                path: "/tmp/t.snap".into()
            })
        );
        assert_eq!(
            Command::parse("QUOTA t 500"),
            Ok(Command::Quota {
                name: "t".into(),
                units: 500
            })
        );
        assert_eq!(
            Command::parse("EVICT t"),
            Ok(Command::Evict { name: "t".into() })
        );
        assert_eq!(Command::parse("STATS"), Ok(Command::Stats));
        assert_eq!(Command::parse("ping"), Ok(Command::Ping));
        assert_eq!(Command::parse("SHUTDOWN"), Ok(Command::Shutdown));
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "",
            "   ",
            "FROB x",
            "LOAD",
            "LOAD t no-separator",
            "LOAD t | R:[A -> A];",
            "IMPLIES t",
            "BATCH t",
            "CLOSURE t",
            "CLOSURE t base lhs extra",
            "KEYS t",
            "ADDDEP t",
            "ADDDEP",
            "DROPDEP t",
            "DROPDEP",
            "SNAPSHOT t",
            "SNAPSHOT",
            "RESTORE t",
            "RESTORE",
            "QUOTA t notanumber",
            "QUOTA t -3",
            "EVICT t extra",
            "STATS now",
            "PING x",
            "SHUTDOWN please",
            "IMPLIES bad/name R:[A -> B]",
        ] {
            assert!(Command::parse(bad).is_err(), "should reject: {bad:?}");
        }
        let long = "x".repeat(MAX_TENANT_NAME + 1);
        assert!(Command::parse(&format!("EVICT {long}")).is_err());
    }

    #[test]
    fn workload_classification_gates_the_right_verbs() {
        assert!(Command::parse("IMPLIES t R:[A -> B]")
            .unwrap()
            .is_workload());
        assert!(Command::parse("LOAD t s | d").unwrap().is_workload());
        assert!(Command::parse("ADDDEP t R:[A -> B]").unwrap().is_workload());
        assert!(Command::parse("DROPDEP t R:[A -> B]")
            .unwrap()
            .is_workload());
        assert!(Command::parse("SNAPSHOT t /tmp/x").unwrap().is_workload());
        assert!(Command::parse("RESTORE t /tmp/x").unwrap().is_workload());
        assert!(!Command::parse("STATS").unwrap().is_workload());
        assert!(!Command::parse("EVICT t").unwrap().is_workload());
        assert!(!Command::parse("SHUTDOWN").unwrap().is_workload());
    }

    #[test]
    fn responses_render_one_sanitized_line() {
        assert_eq!(Response::Ok(String::new()).wire(), "OK");
        assert_eq!(Response::Ok("implied".into()).wire(), "OK implied");
        assert_eq!(
            Response::Err("panicked:\nboom\r\n".into()).wire(),
            "ERR panicked: boom"
        );
        assert_eq!(
            Response::Busy("queue full".into()).wire(),
            "BUSY queue full"
        );
        assert_eq!(
            Response::Exhausted("quota".into()).wire(),
            "EXHAUSTED quota"
        );
        assert!(!Response::Err("a\nb".into()).wire().contains('\n'));
    }
}
