//! Bounded admission: at most `max_inflight` workload requests run at
//! once, at most `queue_depth` more may wait, and a waiter gives up
//! after `queue_wait` — everything else is shed with `BUSY`.
//!
//! The point of the bound is that an overloaded server answers *fast*
//! with an honest refusal instead of queueing unboundedly until every
//! client times out and the process dies of memory. Shedding is a
//! feature; see DESIGN.md's crash-containment section.

use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

#[derive(Debug, Default)]
struct GateState {
    /// Requests currently holding a permit.
    inflight: usize,
    /// Requests blocked in [`Gate::admit`] waiting for a permit.
    waiting: usize,
}

/// A counting admission gate with a bounded wait queue.
#[derive(Debug)]
pub struct Gate {
    state: Mutex<GateState>,
    freed: Condvar,
    max_inflight: usize,
    queue_depth: usize,
    queue_wait: Duration,
}

/// Why [`Gate::admit`] refused a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shed {
    /// The wait queue was already full: refused immediately.
    QueueFull,
    /// Queued, but no permit freed up within the configured wait.
    WaitExpired,
}

impl Shed {
    /// The human-readable payload of the `BUSY` response.
    pub fn reason(self) -> &'static str {
        match self {
            Shed::QueueFull => "admission queue full, request shed",
            Shed::WaitExpired => "no capacity within wait deadline, request shed",
        }
    }
}

impl Gate {
    /// A gate admitting `max_inflight` concurrent holders (min 1), with
    /// up to `queue_depth` waiters each willing to wait `queue_wait`.
    pub fn new(max_inflight: usize, queue_depth: usize, queue_wait: Duration) -> Gate {
        Gate {
            state: Mutex::new(GateState::default()),
            freed: Condvar::new(),
            max_inflight: max_inflight.max(1),
            queue_depth,
            queue_wait,
        }
    }

    /// Tries to acquire a permit, waiting up to the configured queue
    /// wait if the gate is at capacity but the queue has room.
    pub fn admit(&self) -> Result<Permit<'_>, Shed> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.inflight < self.max_inflight {
            state.inflight += 1;
            return Ok(Permit { gate: self });
        }
        if state.waiting >= self.queue_depth {
            return Err(Shed::QueueFull);
        }
        state.waiting += 1;
        let deadline = Instant::now() + self.queue_wait;
        loop {
            let now = Instant::now();
            if state.inflight < self.max_inflight {
                state.waiting -= 1;
                state.inflight += 1;
                return Ok(Permit { gate: self });
            }
            if now >= deadline {
                state.waiting -= 1;
                return Err(Shed::WaitExpired);
            }
            let (next, _timeout) = self
                .freed
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            state = next;
        }
    }

    /// Current `(inflight, waiting)` snapshot, for `STATS`.
    pub fn snapshot(&self) -> (usize, usize) {
        let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        (state.inflight, state.waiting)
    }

    fn release(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.inflight = state.inflight.saturating_sub(1);
        drop(state);
        self.freed.notify_one();
    }
}

/// An admission permit; releases its slot on drop — including when the
/// request it admitted panics and unwinds.
#[derive(Debug)]
pub struct Permit<'g> {
    gate: &'g Gate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn admits_up_to_capacity_then_sheds() {
        let gate = Gate::new(2, 0, Duration::from_millis(10));
        let a = gate.admit().expect("first");
        let _b = gate.admit().expect("second");
        assert_eq!(gate.admit().unwrap_err(), Shed::QueueFull);
        drop(a);
        let _c = gate.admit().expect("slot freed");
    }

    #[test]
    fn waiter_gets_the_freed_slot() {
        let gate = Arc::new(Gate::new(1, 4, Duration::from_secs(5)));
        let held = gate.admit().expect("hold");
        let got = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let (gate, got) = (Arc::clone(&gate), Arc::clone(&got));
                std::thread::spawn(move || {
                    if gate.admit().is_ok() {
                        got.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        // Wait until all three are queued, then release the held permit.
        while gate.snapshot().1 < 3 {
            std::thread::yield_now();
        }
        drop(held);
        for h in handles {
            h.join().expect("waiter thread");
        }
        assert_eq!(
            got.load(Ordering::SeqCst),
            3,
            "the slot cascades to each waiter"
        );
    }

    #[test]
    fn wait_expires_into_shed() {
        let gate = Gate::new(1, 4, Duration::from_millis(20));
        let _held = gate.admit().expect("hold");
        let start = Instant::now();
        assert_eq!(gate.admit().unwrap_err(), Shed::WaitExpired);
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn queue_overflow_sheds_immediately() {
        let gate = Arc::new(Gate::new(1, 1, Duration::from_secs(5)));
        let _held = gate.admit().expect("hold");
        let waiter = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || gate.admit().map(drop))
        };
        while gate.snapshot().1 < 1 {
            std::thread::yield_now();
        }
        // Queue (depth 1) now full: the next admit must not block at all.
        let start = Instant::now();
        assert_eq!(gate.admit().unwrap_err(), Shed::QueueFull);
        assert!(start.elapsed() < Duration::from_secs(1));
        drop(_held);
        waiter.join().expect("waiter").expect("gets slot");
    }

    #[test]
    fn permit_released_on_panic_unwind() {
        let gate = Arc::new(Gate::new(1, 0, Duration::from_millis(5)));
        let g2 = Arc::clone(&gate);
        let _ = std::panic::catch_unwind(move || {
            let _permit = g2.admit().expect("admit");
            panic!("request poisoned");
        });
        assert!(gate.admit().is_ok(), "unwound permit must free its slot");
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let gate = Gate::new(0, 0, Duration::from_millis(5));
        assert!(gate.admit().is_ok());
    }
}
