//! `nfd-serve` — the crash-contained TCP serving shell for the schema
//! registry.
//!
//! Zero-dependency (std + the workspace's `nfd-govern`/`nfd-faults`
//! only), deliberately ignorant of nested functional dependencies: the
//! decision work arrives through the [`Handler`] trait, implemented by
//! the `nfd` facade's multi-tenant session registry. This split keeps
//! the crate graph acyclic (the facade depends on us, not vice versa)
//! and keeps the robustness envelope — unwind boundaries, admission
//! gate, drain protocol — testable with stub handlers in milliseconds.
//!
//! The three pieces:
//!
//! * [`proto`] — the line-oriented request grammar ([`Command`]) and
//!   the four-word response grammar ([`Response`]:
//!   `OK`/`ERR`/`BUSY`/`EXHAUSTED`);
//! * [`gate`] — bounded admission with explicit load-shedding
//!   ([`Gate`], [`Shed`]);
//! * [`server`] — the accept loop, per-connection threads, two
//!   `catch_unwind` boundaries, and drain-then-exit shutdown
//!   ([`Server`], [`ServerConfig`], [`ServerStats`]).

pub mod gate;
pub mod proto;
pub mod server;

pub use gate::{Gate, Permit, Shed};
pub use proto::{sanitize, Command, Response, MAX_TENANT_NAME};
pub use server::{Handler, Server, ServerConfig, ServerStats};
