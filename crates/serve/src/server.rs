//! The TCP server shell: accept loop, per-connection threads, bounded
//! admission, per-request crash containment, and drain-then-exit
//! shutdown.
//!
//! This crate knows nothing about nested functional dependencies — the
//! decision work lives behind the [`Handler`] trait, which the `nfd`
//! facade implements with its session registry. What lives *here* is
//! the robustness envelope:
//!
//! * every connection runs on its own thread inside `catch_unwind`, so
//!   a transport-layer panic drops one connection, never the process;
//! * every dispatched request runs inside a second `catch_unwind`, so a
//!   poisoned request costs one `ERR` line on one connection — the
//!   CLI's exit-code-101 discipline translated to the wire;
//! * workload requests pass a bounded admission [`Gate`] and are shed
//!   with `BUSY` under overload instead of queueing without bound;
//! * `SHUTDOWN` flips a flag the accept loop and every connection poll
//!   observe: no new connections, in-flight requests finish, threads
//!   are joined, then [`Handler::on_shutdown`] runs and the server
//!   returns its counters.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use nfd_faults::fail_point;

use crate::gate::{Gate, Shed};
use crate::proto::{Command, Response};

/// The decision-procedure side of the server, implemented by the `nfd`
/// facade's session registry (and by stubs in this crate's tests).
///
/// `handle` may panic: the server contains it and answers `ERR`. It may
/// block: admission control bounds how many do so at once. It must not
/// assume it is called from any particular thread.
pub trait Handler: Send + Sync + 'static {
    /// Answers one already-parsed, already-admitted request.
    fn handle(&self, cmd: Command) -> Response;

    /// One line of handler-side counters appended to `STATS` output.
    fn stats_line(&self) -> String {
        String::new()
    }

    /// Called once after the accept loop has drained and every
    /// connection thread has been joined.
    fn on_shutdown(&self) {}
}

/// Tuning knobs for the serving shell. `Default` is sized for tests
/// and small deployments; the CLI maps its flags onto this.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Workload requests allowed to run concurrently (min 1).
    pub max_inflight: usize,
    /// Workload requests allowed to *wait* for a slot; beyond this the
    /// gate sheds immediately.
    pub queue_depth: usize,
    /// How long a queued request waits before being shed.
    pub queue_wait_ms: u64,
    /// Hard cap on one request line (the parser itself caps sources at
    /// 8 MiB, so the default matches).
    pub max_line_bytes: usize,
    /// Poll granularity of the accept loop and idle connections; this
    /// bounds how stale the shutdown flag can get.
    pub idle_poll_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_inflight: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            queue_depth: 16,
            queue_wait_ms: 100,
            max_line_bytes: 8 * 1024 * 1024,
            idle_poll_ms: 50,
        }
    }
}

/// Lifetime counters, returned by [`Server::run`] after a clean drain.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Request lines received (including ones that failed to parse).
    pub requests: u64,
    /// Requests refused with `BUSY` by the admission gate.
    pub shed: u64,
    /// Panics contained by either unwind boundary.
    pub contained_panics: u64,
}

#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    shed: AtomicU64,
    contained_panics: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            contained_panics: self.contained_panics.load(Ordering::Relaxed),
        }
    }
}

/// A bound-but-not-yet-running server; [`Server::run`] consumes it.
pub struct Server<H: Handler> {
    listener: TcpListener,
    cfg: ServerConfig,
    handler: Arc<H>,
}

impl<H: Handler> Server<H> {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral test port).
    pub fn bind<A: ToSocketAddrs>(addr: A, cfg: ServerConfig, handler: H) -> io::Result<Server<H>> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            cfg,
            handler: Arc::new(handler),
        })
    }

    /// The bound address — read this after binding port 0.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a `SHUTDOWN` request, then drains and returns the
    /// lifetime counters. Blocks the calling thread.
    pub fn run(self) -> io::Result<ServerStats> {
        let Server {
            listener,
            cfg,
            handler,
        } = self;
        listener.set_nonblocking(true)?;
        let poll = Duration::from_millis(cfg.idle_poll_ms.max(1));
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let gate = Arc::new(Gate::new(
            cfg.max_inflight,
            cfg.queue_depth,
            Duration::from_millis(cfg.queue_wait_ms),
        ));
        let mut workers: Vec<JoinHandle<()>> = Vec::new();

        while !shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    counters.connections.fetch_add(1, Ordering::Relaxed);
                    let cfg = cfg.clone();
                    let handler = Arc::clone(&handler);
                    let gate = Arc::clone(&gate);
                    let counters = Arc::clone(&counters);
                    let shutdown = Arc::clone(&shutdown);
                    workers.push(std::thread::spawn(move || {
                        // First unwind boundary: a panic anywhere in the
                        // connection (transport included) costs exactly
                        // this connection.
                        let contained = catch_unwind(AssertUnwindSafe(|| {
                            fail_point!("serve::accept");
                            let _ = serve_connection(
                                stream, &cfg, &*handler, &gate, &counters, &shutdown,
                            );
                        }));
                        if contained.is_err() {
                            counters.contained_panics.fetch_add(1, Ordering::Relaxed);
                        }
                    }));
                    // Reap finished connection threads so a long-lived
                    // server does not accumulate handles.
                    workers = workers
                        .into_iter()
                        .filter_map(|w| {
                            if w.is_finished() {
                                let _ = w.join();
                                None
                            } else {
                                Some(w)
                            }
                        })
                        .collect();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(poll);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Drain: no more accepts; idle connections notice the flag on
        // their next read-timeout tick, busy ones finish their request.
        drop(listener);
        for worker in workers {
            let _ = worker.join();
        }
        handler.on_shutdown();
        Ok(counters.snapshot())
    }
}

/// One connection: read request lines, answer each with one response
/// line, until EOF, an I/O failure, or shutdown.
fn serve_connection<H: Handler>(
    stream: TcpStream,
    cfg: &ServerConfig,
    handler: &H,
    gate: &Gate,
    counters: &Counters,
    shutdown: &AtomicBool,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(cfg.idle_poll_ms.max(1))))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let line = match read_line_capped(&mut reader, cfg.max_line_bytes, shutdown) {
            Ok(Some(line)) => line,
            Ok(None) => return Ok(()),
            Err(e) => {
                // Over-long or undecodable request: answer once, then
                // drop the connection (framing is no longer trustworthy).
                let _ = respond(&mut writer, &Response::Err(e.to_string()));
                return Ok(());
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        counters.requests.fetch_add(1, Ordering::Relaxed);
        let cmd = match parse_cmd(&line) {
            Ok(cmd) => cmd,
            Err(msg) => {
                respond(&mut writer, &Response::Err(msg))?;
                continue;
            }
        };
        let resp = match &cmd {
            // Control plane: must answer even when the gate is shedding.
            Command::Ping => Response::Ok("pong".to_string()),
            Command::Stats => {
                let (inflight, waiting) = gate.snapshot();
                let s = counters.snapshot();
                let handler_line = handler.stats_line();
                let server_line = format!(
                    "inflight={inflight} waiting={waiting} connections={} requests={} shed={} contained_panics={}",
                    s.connections, s.requests, s.shed, s.contained_panics
                );
                Response::Ok(if handler_line.is_empty() {
                    server_line
                } else {
                    format!("{handler_line} {server_line}")
                })
            }
            Command::Shutdown => {
                shutdown.store(true, Ordering::SeqCst);
                respond(&mut writer, &Response::Ok("draining".to_string()))?;
                return Ok(());
            }
            _ if cmd.is_workload() => match gate.admit() {
                Ok(_permit) => dispatch_contained(handler, cmd.clone(), counters),
                Err(shed @ (Shed::QueueFull | Shed::WaitExpired)) => {
                    counters.shed.fetch_add(1, Ordering::Relaxed);
                    Response::Busy(shed.reason().to_string())
                }
            },
            // EVICT / QUOTA: cheap registry mutations, no admission,
            // but still panic-contained.
            _ => dispatch_contained(handler, cmd.clone(), counters),
        };
        respond(&mut writer, &resp)?;
    }
}

/// Second unwind boundary: a panicking handler (or an armed
/// `serve::dispatch=panic` failpoint) becomes an `ERR` line.
fn dispatch_contained<H: Handler>(handler: &H, cmd: Command, counters: &Counters) -> Response {
    match catch_unwind(AssertUnwindSafe(|| dispatch_one(handler, cmd))) {
        Ok(resp) => resp,
        Err(payload) => {
            counters.contained_panics.fetch_add(1, Ordering::Relaxed);
            Response::Err(format!(
                "contained panic: {}",
                panic_message(payload.as_ref())
            ))
        }
    }
}

fn dispatch_one<H: Handler>(handler: &H, cmd: Command) -> Response {
    fail_point!(
        "serve::dispatch",
        Response::Exhausted("injected fault (failpoint)".to_string())
    );
    handler.handle(cmd)
}

fn parse_cmd(line: &str) -> Result<Command, String> {
    fail_point!(
        "serve::parse",
        Err("injected fault (failpoint)".to_string())
    );
    Command::parse(line)
}

fn respond(writer: &mut impl Write, resp: &Response) -> io::Result<()> {
    fail_point!(
        "serve::respond",
        Err(io::Error::other("injected fault (failpoint)"))
    );
    writeln!(writer, "{}", resp.wire())?;
    writer.flush()
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "unknown panic payload"
    }
}

/// Reads one `\n`-terminated line, enforcing the byte cap, polling the
/// shutdown flag on every read-timeout tick. `Ok(None)` means the
/// connection is done (EOF, or the server is draining).
fn read_line_capped(
    reader: &mut BufReader<TcpStream>,
    cap: usize,
    shutdown: &AtomicBool,
) -> io::Result<Option<String>> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(None);
        }
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(e) => return Err(e),
        };
        if buf.is_empty() {
            // EOF. A final unterminated line still gets served.
            return Ok((!line.is_empty()).then(|| String::from_utf8_lossy(&line).into_owned()));
        }
        let (chunk, done) = match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => (pos + 1, true),
            None => (buf.len(), false),
        };
        line.extend_from_slice(&buf[..chunk - usize::from(done)]);
        reader.consume(chunk);
        if line.len() > cap {
            return Err(io::Error::other(format!(
                "request line exceeds {cap} bytes"
            )));
        }
        if done {
            return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;
    use std::net::TcpStream;

    /// A handler that sleeps on goals containing `slow` and panics on
    /// goals containing `boom` — enough to exercise every envelope.
    struct Stub {
        delay: Duration,
    }

    impl Handler for Stub {
        fn handle(&self, cmd: Command) -> Response {
            if let Command::Implies { goal, .. } = &cmd {
                if goal.contains("slow") {
                    std::thread::sleep(self.delay);
                }
                if goal.contains("boom") {
                    panic!("stub poisoned by {goal}");
                }
            }
            Response::Ok(cmd.verb().to_lowercase())
        }

        fn stats_line(&self) -> String {
            "stub=1".to_string()
        }
    }

    fn start(cfg: ServerConfig, delay_ms: u64) -> (SocketAddr, JoinHandle<ServerStats>) {
        let server = Server::bind(
            "127.0.0.1:0",
            cfg,
            Stub {
                delay: Duration::from_millis(delay_ms),
            },
        )
        .expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = std::thread::spawn(move || server.run().expect("run"));
        (addr, handle)
    }

    struct Client {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).expect("connect");
            Client {
                reader: BufReader::new(stream.try_clone().expect("clone")),
                writer: stream,
            }
        }

        fn send(&mut self, line: &str) {
            writeln!(self.writer, "{line}").expect("send");
            self.writer.flush().expect("flush");
        }

        fn recv(&mut self) -> String {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("recv");
            line.trim_end().to_string()
        }

        fn ask(&mut self, line: &str) -> String {
            self.send(line);
            self.recv()
        }
    }

    fn quick_cfg() -> ServerConfig {
        ServerConfig {
            idle_poll_ms: 5,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn round_trips_and_drains_on_shutdown() {
        let (addr, server) = start(quick_cfg(), 0);
        let mut c = Client::connect(addr);
        assert_eq!(c.ask("PING"), "OK pong");
        assert_eq!(c.ask("IMPLIES t R:[A -> B]"), "OK implies");
        assert_eq!(c.ask("EVICT t"), "OK evict");
        assert!(c.ask("FROB x").starts_with("ERR "));
        let stats = c.ask("STATS");
        assert!(stats.starts_with("OK stub=1 inflight="), "{stats}");
        assert_eq!(c.ask("SHUTDOWN"), "OK draining");
        let stats = server.join().expect("server thread");
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.requests, 6);
        assert_eq!(stats.contained_panics, 0);
    }

    #[test]
    fn panicking_request_answers_err_and_connection_survives() {
        let (addr, server) = start(quick_cfg(), 0);
        let mut a = Client::connect(addr);
        let mut b = Client::connect(addr);
        let err = a.ask("IMPLIES t boom");
        assert!(
            err.starts_with("ERR contained panic:") && err.contains("boom"),
            "{err}"
        );
        // Same connection keeps working; other connections never notice.
        assert_eq!(a.ask("IMPLIES t fine"), "OK implies");
        assert_eq!(b.ask("PING"), "OK pong");
        assert_eq!(b.ask("SHUTDOWN"), "OK draining");
        let stats = server.join().expect("server thread");
        assert_eq!(stats.contained_panics, 1);
    }

    #[test]
    fn overload_sheds_busy_instead_of_queueing() {
        let cfg = ServerConfig {
            max_inflight: 1,
            queue_depth: 0,
            queue_wait_ms: 10,
            ..quick_cfg()
        };
        let (addr, server) = start(cfg, 500);
        let mut slow = Client::connect(addr);
        slow.send("IMPLIES t slow");
        // Let the slow request occupy the single slot.
        std::thread::sleep(Duration::from_millis(100));
        let mut shed = Client::connect(addr);
        let busy = shed.ask("IMPLIES t quick");
        assert!(busy.starts_with("BUSY "), "{busy}");
        // Control plane still answers while the gate sheds.
        assert_eq!(shed.ask("PING"), "OK pong");
        assert_eq!(slow.recv(), "OK implies", "the admitted request completes");
        assert_eq!(shed.ask("SHUTDOWN"), "OK draining");
        let stats = server.join().expect("server thread");
        assert_eq!(stats.shed, 1);
    }

    #[test]
    fn shutdown_waits_for_inflight_work() {
        let cfg = quick_cfg();
        let (addr, server) = start(cfg, 300);
        let mut slow = Client::connect(addr);
        slow.send("IMPLIES t slow");
        std::thread::sleep(Duration::from_millis(50));
        let mut ctl = Client::connect(addr);
        assert_eq!(ctl.ask("SHUTDOWN"), "OK draining");
        // The in-flight request still gets its answer before exit.
        assert_eq!(slow.recv(), "OK implies");
        let stats = server.join().expect("server thread");
        assert_eq!(stats.requests, 2);
    }

    #[test]
    fn oversized_line_gets_err_then_disconnect() {
        let cfg = ServerConfig {
            max_line_bytes: 64,
            ..quick_cfg()
        };
        let (addr, server) = start(cfg, 0);
        let mut c = Client::connect(addr);
        let resp = c.ask(&"x".repeat(200));
        assert!(
            resp.starts_with("ERR ") && resp.contains("exceeds"),
            "{resp}"
        );
        let mut line = String::new();
        assert_eq!(
            c.reader.read_line(&mut line).expect("EOF read"),
            0,
            "server hangs up after a framing violation"
        );
        let mut ctl = Client::connect(addr);
        assert_eq!(ctl.ask("SHUTDOWN"), "OK draining");
        server.join().expect("server thread");
    }

    #[test]
    fn blank_lines_are_ignored_not_errors() {
        let (addr, server) = start(quick_cfg(), 0);
        let mut c = Client::connect(addr);
        c.send("");
        c.send("   ");
        assert_eq!(c.ask("PING"), "OK pong");
        assert_eq!(c.ask("SHUTDOWN"), "OK draining");
        let stats = server.join().expect("server thread");
        assert_eq!(stats.requests, 2, "blank lines are not requests");
    }
}
