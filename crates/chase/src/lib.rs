//! # nfd-chase — a nested tableau chase for NFD implication
//!
//! Section 4 of *"Reasoning about Nested Functional Dependencies"* (Hara &
//! Davidson, PODS 1999) names the extension of the tableau chase to NFDs
//! as ongoing/future work. This crate provides that decision procedure for
//! the no-empty-sets regime, as an *independent* check on the axiomatic
//! engine of `nfd-core`:
//!
//! 1. Build a symbolic two-row tableau for the goal `R:[X → y]`: two
//!    tuples over `R`'s element type populated with labeled nulls, every
//!    set carrying two symbolic elements, and the two tuples sharing
//!    (pointing at the same nulls for) exactly the subtrees of the LHS
//!    paths `X`.
//! 2. Chase with Σ: NFDs are equality-generating dependencies — every
//!    violation (two trie-consistent assignments agreeing on an NFD's LHS
//!    but not on its RHS) forces a unification of the two RHS values.
//!    Each step binds at least one null, so the chase terminates.
//! 3. At the fixpoint the tableau is a template of a Σ-satisfying
//!    instance (instantiate distinct nulls with distinct constants):
//!    `Σ ⊨ R:[X → y]` iff the two rows' `y` values have become equal.
//!
//! The repository's test suite runs this procedure against the saturation
//! engine on the paper's examples and on randomized schemas — two
//! completely different algorithms that must give the same verdicts.

#![warn(missing_docs)]

pub mod sym;
pub mod tableau;

use nfd_core::{simple, CoreError, Nfd};
use nfd_govern::Budget;
use nfd_model::Schema;

pub use tableau::{ChaseError, ChaseRun};

/// Decides `Σ ⊨ goal` by the nested tableau chase (no-empty-sets
/// semantics) under the standard budget. Independent of
/// `nfd_core::engine::Engine`.
pub fn implies_by_chase(schema: &Schema, sigma: &[Nfd], goal: &Nfd) -> Result<bool, ChaseError> {
    Ok(chase(schema, sigma, goal)?.implied)
}

/// Runs the chase under the standard budget and returns the full run
/// (verdict plus cost counters, for benches and inspection).
pub fn chase(schema: &Schema, sigma: &[Nfd], goal: &Nfd) -> Result<ChaseRun, ChaseError> {
    chase_with(schema, sigma, goal, &Budget::standard())
}

/// Runs the chase under an explicit resource [`Budget`]. Exhaustion is
/// reported as [`ChaseError::Exhausted`], never as a wrong verdict.
pub fn chase_with(
    schema: &Schema,
    sigma: &[Nfd],
    goal: &Nfd,
    budget: &Budget,
) -> Result<ChaseRun, ChaseError> {
    goal.validate(schema).map_err(ChaseError::Core)?;
    for nfd in sigma {
        nfd.validate(schema).map_err(ChaseError::Core)?;
    }
    let goal_s = simple::to_simple(goal);
    let sigma_s: Vec<Nfd> = sigma.iter().map(simple::to_simple).collect();
    // The chase is per-relation, like the rules themselves.
    let relevant: Vec<&Nfd> = sigma_s
        .iter()
        .filter(|n| n.base.relation == goal_s.base.relation)
        .collect();
    tableau::run(schema, &relevant, &goal_s, budget)
}

impl From<CoreError> for ChaseError {
    fn from(e: CoreError) -> ChaseError {
        ChaseError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfd_core::engine::Engine;
    use nfd_core::nfd::parse_set;

    fn agree(schema: &Schema, sigma: &[Nfd], goal: &str) -> bool {
        let goal = Nfd::parse(schema, goal).unwrap();
        let engine = Engine::new(schema, sigma).unwrap();
        let by_axioms = engine.implies(&goal).unwrap();
        let by_chase = implies_by_chase(schema, sigma, &goal).unwrap();
        assert_eq!(
            by_axioms, by_chase,
            "axioms say {by_axioms}, chase says {by_chase} for {goal}"
        );
        by_axioms
    }

    #[test]
    fn flat_transitivity() {
        let schema = Schema::parse("R : {<A: int, B: int, C: int>};").unwrap();
        let sigma = parse_set(&schema, "R:[A -> B]; R:[B -> C];").unwrap();
        assert!(agree(&schema, &sigma, "R:[A -> C]"));
        assert!(!agree(&schema, &sigma, "R:[C -> A]"));
        assert!(agree(&schema, &sigma, "R:[A, C -> B]"));
    }

    #[test]
    fn worked_example_by_chase() {
        let schema =
            Schema::parse("R : { <A: {<B: {<C: int>}, E: {<F: int, G: int>}>}, D: int> };")
                .unwrap();
        let sigma = parse_set(&schema, "R:[A:B:C, D -> A:E:F]; R:A:[B -> E:G];").unwrap();
        assert!(agree(&schema, &sigma, "R:A:[B -> E]"));
        assert!(!agree(&schema, &sigma, "R:[D -> A]"));
        assert!(!agree(&schema, &sigma, "R:[A -> D]"));
    }

    #[test]
    fn example_a1_verdicts_match() {
        let schema = Schema::parse(
            "R : { <A: int, B: {<C: int>}, D: int, E: {<F: int, G: int>},
                   H: {<J: int, L: int>}, I: int, M: {<N: int, O: int>}> };",
        )
        .unwrap();
        let sigma = parse_set(
            &schema,
            "R:[A -> B:C]; R:[B:C -> D]; R:[D -> E:F];
             R:[A -> E:G]; R:[B:C -> H]; R:[I -> H:J];",
        )
        .unwrap();
        // In-closure goals (from Example A.1):
        for y in ["B:C", "D", "E:F", "H", "H:J"] {
            assert!(agree(&schema, &sigma, &format!("R:[B -> {y}]")), "{y}");
        }
        // Out-of-closure goals:
        for y in ["A", "E", "E:G", "I", "M", "M:N", "H:L"] {
            assert!(!agree(&schema, &sigma, &format!("R:[B -> {y}]")), "{y}");
        }
    }

    #[test]
    fn singleton_inference_by_chase() {
        let schema = Schema::parse("R : { <A: {<B: int, C: int>}, D: int> };").unwrap();
        let sigma = parse_set(&schema, "R:[D -> A:B]; R:[D -> A:C];").unwrap();
        assert!(agree(&schema, &sigma, "R:[D -> A]"));
        let weaker = parse_set(&schema, "R:[D -> A:B];").unwrap();
        assert!(!agree(&schema, &weaker, "R:[D -> A]"));
    }

    #[test]
    fn set_valued_lhs() {
        let schema = Schema::parse("R : { <A: {<B: int>}, D: int> };").unwrap();
        let sigma = parse_set(&schema, "R:[A -> D];").unwrap();
        assert!(agree(&schema, &sigma, "R:[A -> D]"));
        assert!(!agree(&schema, &sigma, "R:[D -> A]"));
        // A:B → A is the equal-or-disjoint constraint; it does not follow
        // from A → D.
        assert!(!agree(&schema, &sigma, "R:[A:B -> A]"));
    }

    #[test]
    fn cross_relation_independence() {
        let schema = Schema::parse("R : {<A: int, B: int>}; S : {<X: int, Y: int>};").unwrap();
        let sigma = parse_set(&schema, "S:[X -> Y];").unwrap();
        assert!(!agree(&schema, &sigma, "R:[A -> B]"));
        assert!(agree(&schema, &sigma, "S:[X -> Y]"));
    }
}
