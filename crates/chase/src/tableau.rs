//! The two-row nested tableau and the chase loop.

use crate::sym::{SymValue, Unifier};
use nfd_core::{CoreError, Nfd};
use nfd_model::{RecordType, Schema, Type};
use nfd_path::{Path, PathTrie};
use std::collections::HashMap;
use std::fmt;

/// Errors raised by the chase.
#[derive(Debug)]
pub enum ChaseError {
    /// Validation or navigation error from the core machinery.
    Core(CoreError),
    /// A forced unification failed (cannot happen for tableaux built by
    /// this module; kept for API totality).
    Stuck(String),
    /// The step budget was exceeded.
    Budget(usize),
}

impl fmt::Display for ChaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaseError::Core(e) => write!(f, "{e}"),
            ChaseError::Stuck(m) => write!(f, "chase stuck: {m}"),
            ChaseError::Budget(n) => write!(f, "chase exceeded {n} steps"),
        }
    }
}

impl std::error::Error for ChaseError {}

/// The result of a chase run.
#[derive(Debug)]
pub struct ChaseRun {
    /// The verdict: does Σ imply the goal?
    pub implied: bool,
    /// Number of equality-generating steps applied.
    pub steps: usize,
    /// Number of nulls allocated for the tableau.
    pub nulls: usize,
}

/// Builds the two-row tableau for goal `R:[X → y]` (simple form) and
/// chases it with the (simple-form, same-relation) dependencies `sigma`.
pub(crate) fn run(schema: &Schema, sigma: &[&Nfd], goal: &Nfd) -> Result<ChaseRun, ChaseError> {
    let rec = schema
        .relation_type(goal.base.relation)
        .map_err(|e| ChaseError::Core(CoreError::Parse(e.to_string())))?
        .element_record()
        .ok_or_else(|| {
            ChaseError::Core(CoreError::Nav(format!(
                "relation `{}` has no element record",
                goal.base.relation
            )))
        })?;
    let mut u = Unifier::new();
    let x: Vec<Path> = goal.lhs().to_vec();
    let mut builder = TemplateBuilder {
        u: &mut u,
        x: &x,
        shared: HashMap::new(),
    };
    let t1 = builder.shared_element(rec, &Path::empty());
    let t2 = builder.shared_element(rec, &Path::empty());
    let mut tableau = vec![t1, t2];

    // Compile each dependency's trie and target indices once; the scan
    // loop below revisits every dependency many times per run.
    let compiled: Vec<CompiledDep<'_>> = sigma.iter().map(|d| CompiledDep::new(d)).collect();
    let compiled_goal = CompiledDep::new(goal);

    // Chase to fixpoint.
    const MAX_STEPS: usize = 100_000;
    let mut steps = 0usize;
    loop {
        let mut progressed = false;
        for dep in &compiled {
            while let Some((a, b)) = find_violation(&tableau, dep, &u) {
                if !u.unify(&a, &b) {
                    return Err(ChaseError::Stuck(format!(
                        "cannot unify {a} with {b} while chasing {}",
                        dep.nfd
                    )));
                }
                progressed = true;
                steps += 1;
                if steps > MAX_STEPS {
                    return Err(ChaseError::Budget(MAX_STEPS));
                }
            }
        }
        if !progressed {
            break;
        }
        // Normalize the tableau once per round so violation scans see the
        // merged values (resolution also collapses duplicate set
        // elements).
        tableau = tableau.iter().map(|t| u.resolve(t)).collect();
    }

    let implied = find_violation(&tableau, &compiled_goal, &u).is_none();
    Ok(ChaseRun {
        implied,
        steps,
        nulls: u.bound_count(),
    })
}

/// Builds the tableau following the Appendix A shape with the goal's LHS
/// `X` in the role of the closure: the value at an X path is **one
/// globally shared symbolic tree** — every occurrence of that path,
/// within either row and within any set element, points at the same
/// value, just as every closure path carries the shared constant `0` in
/// the paper's construction. Everything else is fresh, and every
/// set-of-records carries two elements (any Σ-instance with smaller sets
/// is a non-injective instantiation of this template, so generality is
/// preserved).
struct TemplateBuilder<'a> {
    u: &'a mut Unifier,
    x: &'a [Path],
    shared: HashMap<Path, SymValue>,
}

impl TemplateBuilder<'_> {
    /// The value of field path `at` with type `ty`. X paths receive the
    /// globally shared tree (`assignVal`), everything else the generic
    /// unshared shape (`assignNew` + `newRow`).
    fn value(&mut self, ty: &Type, at: &Path) -> SymValue {
        if self.x.contains(at) {
            if let Some(v) = self.shared.get(at) {
                return v.clone();
            }
            let v = self.shared_tree(ty, at);
            self.shared.insert(at.clone(), v.clone());
            return v;
        }
        self.unshared(ty, at)
    }

    /// Every set carries three elements: two that agree on X children
    /// (realizing within-set X-agreement patterns, the `assignVal` shape
    /// of Appendix A) and one entirely fresh (the `newRow` shape, keeping
    /// the set's own value generic). Instantiating elements
    /// non-injectively recovers every smaller configuration, so the
    /// template subsumes the Appendix A witness for *any* closure ⊇ X.
    fn shared_tree(&mut self, ty: &Type, at: &Path) -> SymValue {
        match ty {
            Type::Base(_) => self.u.fresh(),
            Type::Set(elem) => match &**elem {
                // Elements of base-valued sets cannot be addressed by
                // paths; one null stands for the whole content.
                Type::Base(_) => SymValue::Set(vec![self.u.fresh()]),
                Type::Record(inner) => SymValue::Set(vec![
                    self.shared_element(inner, at),
                    self.shared_element(inner, at),
                    self.fresh_element(inner, at),
                ]),
                Type::Set(_) => unreachable!("validated schemas have no sets of sets"),
            },
            Type::Record(_) => unreachable!("validated record fields are base- or set-typed"),
        }
    }

    /// Sets outside X have the same three-element shape; the distinction
    /// from [`Self::shared_tree`] is only that X paths memoize one global
    /// tree while unshared paths build a fresh one per occurrence.
    fn unshared(&mut self, ty: &Type, at: &Path) -> SymValue {
        self.shared_tree(ty, at)
    }

    /// One record element whose fields go through [`Self::value`] (X
    /// children shared, others generic).
    fn shared_element(&mut self, rec: &RecordType, at: &Path) -> SymValue {
        let fields = rec
            .fields()
            .iter()
            .map(|f| (f.label, self.value(&f.ty, &at.child(f.label))))
            .collect();
        SymValue::Record(fields)
    }

    /// One record element with entirely fresh content, ignoring X (the
    /// `newRow` analogue; the chase merges whatever Σ forces).
    fn fresh_element(&mut self, rec: &RecordType, at: &Path) -> SymValue {
        let fields = rec
            .fields()
            .iter()
            .map(|f| {
                let v = match &f.ty {
                    Type::Base(_) => self.u.fresh(),
                    Type::Set(elem) => match &**elem {
                        Type::Base(_) => SymValue::Set(vec![self.u.fresh()]),
                        Type::Record(inner) => {
                            let p = at.child(f.label);
                            SymValue::Set(vec![
                                self.fresh_element(inner, &p),
                                self.fresh_element(inner, &p),
                            ])
                        }
                        Type::Set(_) => unreachable!("validated schemas have no sets of sets"),
                    },
                    Type::Record(_) => {
                        unreachable!("validated record fields are base- or set-typed")
                    }
                };
                (f.label, v)
            })
            .collect();
        SymValue::Record(fields)
    }
}

/// A dependency compiled for the violation scan: the component-path trie
/// and its LHS/RHS target indices, resolved once per chase run instead of
/// once per scan. The chase's slice of the compiled-dependency IR.
struct CompiledDep<'a> {
    nfd: &'a Nfd,
    trie: PathTrie,
    lhs_idx: Vec<usize>,
    rhs_idx: usize,
}

impl<'a> CompiledDep<'a> {
    fn new(nfd: &'a Nfd) -> CompiledDep<'a> {
        let trie = PathTrie::new(nfd.component_paths().cloned());
        let lhs_idx = nfd
            .lhs()
            .iter()
            .map(|p| trie.target_index(p).expect("lhs inserted"))
            .collect();
        let rhs_idx = trie.target_index(&nfd.rhs).expect("rhs inserted");
        CompiledDep {
            nfd,
            trie,
            lhs_idx,
            rhs_idx,
        }
    }
}

/// Finds one violation of `dep` on the tableau: two trie-consistent
/// assignments (across or within rows) whose resolved LHS tuples agree
/// but whose resolved RHS values differ. Returns the differing RHS values.
fn find_violation(
    tableau: &[SymValue],
    dep: &CompiledDep<'_>,
    u: &Unifier,
) -> Option<(SymValue, SymValue)> {
    let trie = &dep.trie;

    let mut groups: HashMap<Vec<SymValue>, SymValue> = HashMap::new();
    let mut found: Option<(SymValue, SymValue)> = None;
    for row in tableau {
        if found.is_some() {
            break;
        }
        for_each_sym_assignment(
            row,
            trie.roots(),
            &mut vec![None; trie.len()],
            &mut |vals| {
                if found.is_some() {
                    return;
                }
                let key: Vec<SymValue> = dep
                    .lhs_idx
                    .iter()
                    .map(|&i| u.resolve(vals[i].as_ref().expect("total")))
                    .collect();
                let rhs = u.resolve(vals[dep.rhs_idx].as_ref().expect("total"));
                match groups.get(&key) {
                    None => {
                        groups.insert(key, rhs);
                    }
                    Some(existing) if *existing == rhs => {}
                    Some(existing) => {
                        found = Some((existing.clone(), rhs));
                    }
                }
            },
        );
    }
    found
}

/// Assignment enumeration over symbolic values — the `SymValue` analogue
/// of `nfd_path::nav::for_each_assignment`.
fn for_each_sym_assignment(
    v: &SymValue,
    nodes: &[nfd_path::trie::TrieNode],
    values: &mut Vec<Option<SymValue>>,
    emit: &mut dyn FnMut(&Vec<Option<SymValue>>),
) {
    // Fill sibling targets, then cross-product over internal siblings.
    let mut set_targets = Vec::new();
    for node in nodes {
        if let Some(idx) = node.target {
            let val = v.get(node.label).expect("well-typed tableau");
            values[idx] = Some(val.clone());
            set_targets.push(idx);
        }
    }
    let internal: Vec<&nfd_path::trie::TrieNode> =
        nodes.iter().filter(|n| !n.children.is_empty()).collect();
    expand_sym(v, &internal, 0, values, emit);
    for idx in set_targets {
        values[idx] = None;
    }
}

fn expand_sym(
    v: &SymValue,
    internal: &[&nfd_path::trie::TrieNode],
    i: usize,
    values: &mut Vec<Option<SymValue>>,
    emit: &mut dyn FnMut(&Vec<Option<SymValue>>),
) {
    if i == internal.len() {
        emit(values);
        return;
    }
    let node = internal[i];
    let SymValue::Set(elems) = v.get(node.label).expect("well-typed tableau") else {
        unreachable!("internal trie nodes are set-valued");
    };
    for elem in elems {
        let mut continue_next =
            |values: &mut Vec<Option<SymValue>>| expand_sym(v, internal, i + 1, values, emit);
        // Inline the with-siblings logic with the continuation.
        let mut set_targets = Vec::new();
        for child in &node.children {
            if let Some(idx) = child.target {
                let val = elem.get(child.label).expect("well-typed tableau");
                values[idx] = Some(val.clone());
                set_targets.push(idx);
            }
        }
        let inner: Vec<&nfd_path::trie::TrieNode> = node
            .children
            .iter()
            .filter(|n| !n.children.is_empty())
            .collect();
        expand_sym_k(elem, &inner, 0, values, &mut continue_next);
        for idx in set_targets {
            values[idx] = None;
        }
    }
}

fn expand_sym_k(
    v: &SymValue,
    internal: &[&nfd_path::trie::TrieNode],
    i: usize,
    values: &mut Vec<Option<SymValue>>,
    k: &mut dyn FnMut(&mut Vec<Option<SymValue>>),
) {
    if i == internal.len() {
        k(values);
        return;
    }
    let node = internal[i];
    let SymValue::Set(elems) = v.get(node.label).expect("well-typed tableau") else {
        unreachable!("internal trie nodes are set-valued");
    };
    for elem in elems {
        let mut set_targets = Vec::new();
        for child in &node.children {
            if let Some(idx) = child.target {
                let val = elem.get(child.label).expect("well-typed tableau");
                values[idx] = Some(val.clone());
                set_targets.push(idx);
            }
        }
        let inner: Vec<&nfd_path::trie::TrieNode> = node
            .children
            .iter()
            .filter(|n| !n.children.is_empty())
            .collect();
        let mut continue_next =
            |values: &mut Vec<Option<SymValue>>| expand_sym_k(v, internal, i + 1, values, k);
        expand_sym_k2(elem, &inner, 0, values, &mut continue_next);
        for idx in set_targets {
            values[idx] = None;
        }
    }
}

fn expand_sym_k2(
    v: &SymValue,
    internal: &[&nfd_path::trie::TrieNode],
    i: usize,
    values: &mut Vec<Option<SymValue>>,
    k: &mut dyn FnMut(&mut Vec<Option<SymValue>>),
) {
    expand_sym_k(v, internal, i, values, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfd_core::nfd::parse_set;
    use nfd_core::simple;

    #[test]
    fn tableau_rows_share_exactly_x() {
        let schema = Schema::parse("R : {<A: int, B: int>};").unwrap();
        let rec = schema
            .relation_type(nfd_model::Label::new("R"))
            .unwrap()
            .element_record()
            .unwrap();
        let mut u = Unifier::new();
        let x = vec![Path::parse("A").unwrap()];
        let mut b = TemplateBuilder {
            u: &mut u,
            x: &x,
            shared: HashMap::new(),
        };
        let t1 = b.shared_element(rec, &Path::empty());
        let t2 = b.shared_element(rec, &Path::empty());
        let la = nfd_model::Label::new("A");
        let lb = nfd_model::Label::new("B");
        assert_eq!(t1.get(la), t2.get(la), "A shared");
        assert_ne!(t1.get(lb), t2.get(lb), "B fresh");
    }

    #[test]
    fn violation_found_and_chased() {
        let schema = Schema::parse("R : {<A: int, B: int>};").unwrap();
        let sigma = parse_set(&schema, "R:[A -> B];").unwrap();
        let sigma_s: Vec<Nfd> = sigma.iter().map(simple::to_simple).collect();
        let refs: Vec<&Nfd> = sigma_s.iter().collect();
        let goal = simple::to_simple(&Nfd::parse(&schema, "R:[A -> B]").unwrap());
        let run = run(&schema, &refs, &goal).unwrap();
        assert!(run.implied);
        assert!(run.steps >= 1, "the A → B merge is a chase step");
    }

    #[test]
    fn no_dependencies_nothing_implied() {
        let schema = Schema::parse("R : {<A: int, B: int>};").unwrap();
        let goal = simple::to_simple(&Nfd::parse(&schema, "R:[A -> B]").unwrap());
        let run = run(&schema, &[], &goal).unwrap();
        assert!(!run.implied);
        assert_eq!(run.steps, 0);
    }

    #[test]
    fn trivial_goal_implied_without_steps() {
        let schema = Schema::parse("R : {<A: int, B: int>};").unwrap();
        let goal = simple::to_simple(&Nfd::parse(&schema, "R:[A, B -> A]").unwrap());
        let run = run(&schema, &[], &goal).unwrap();
        assert!(run.implied);
    }
}
