//! The two-row nested tableau and the chase loop.

use crate::sym::{SymValue, Unifier};
use nfd_core::{CoreError, Nfd};
use nfd_faults::fail_point;
use nfd_govern::{Budget, ResourceKind, ResourceReport};
use nfd_model::{RecordType, Schema, Type};
use nfd_path::{Path, PathTrie};
use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;

/// Errors raised by the chase.
#[derive(Debug)]
pub enum ChaseError {
    /// Validation or navigation error from the core machinery.
    Core(CoreError),
    /// A forced unification failed (cannot happen for tableaux built by
    /// this module; kept for API totality).
    Stuck(String),
    /// A resource budget ran out (steps, nulls, assignment enumerations,
    /// deadline or cancellation) before the fixpoint was reached.
    Exhausted(ResourceReport),
}

impl fmt::Display for ChaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaseError::Core(e) => write!(f, "{e}"),
            ChaseError::Stuck(m) => write!(f, "chase stuck: {m}"),
            ChaseError::Exhausted(r) => write!(f, "chase exhausted: {r}"),
        }
    }
}

impl std::error::Error for ChaseError {}

/// The result of a chase run.
#[derive(Debug)]
pub struct ChaseRun {
    /// The verdict: does Σ imply the goal?
    pub implied: bool,
    /// Number of equality-generating steps applied.
    pub steps: usize,
    /// Number of nulls allocated for the tableau.
    pub nulls: usize,
    /// Number of trie-consistent assignments enumerated by the violation
    /// scans — the time-dominating quantity of a run.
    pub assignments: u64,
}

/// Builds the two-row tableau for goal `R:[X → y]` (simple form) and
/// chases it with the (simple-form, same-relation) dependencies `sigma`,
/// under the given resource budget.
pub(crate) fn run(
    schema: &Schema,
    sigma: &[&Nfd],
    goal: &Nfd,
    budget: &Budget,
) -> Result<ChaseRun, ChaseError> {
    fail_point!(
        "chase::build",
        Err(ChaseError::Exhausted(ResourceReport::injected())),
        budget.cancel_token()
    );
    let rec = schema
        .relation_type(goal.base.relation)
        .map_err(|e| ChaseError::Core(CoreError::Parse(e.to_string())))?
        .element_record()
        .ok_or_else(|| {
            ChaseError::Core(CoreError::Nav(format!(
                "relation `{}` has no element record",
                goal.base.relation
            )))
        })?;
    let mut u = Unifier::new();
    let x: Vec<Path> = goal.lhs().to_vec();
    let mut builder = TemplateBuilder {
        u: &mut u,
        x: &x,
        shared: HashMap::new(),
        budget,
        elements: 0,
    };
    // Template size is exponential in schema nesting depth (every
    // set-of-records carries three elements), so the null cap is checked
    // *during* construction — a deeply nested schema exhausts the budget
    // instead of exhausting memory.
    let t1 = builder.shared_element(rec, &Path::empty())?;
    let t2 = builder.shared_element(rec, &Path::empty())?;
    let mut tableau = vec![t1, t2];

    // Compile each dependency's trie and target indices once; the scan
    // loop below revisits every dependency many times per run.
    let compiled: Vec<CompiledDep<'_>> = sigma
        .iter()
        .map(|d| CompiledDep::new(d))
        .collect::<Result<_, _>>()?;
    let compiled_goal = CompiledDep::new(goal)?;

    // Chase to fixpoint.
    let mut steps = 0usize;
    let mut assignments = 0u64;
    loop {
        fail_point!(
            "chase::step",
            Err(ChaseError::Exhausted(ResourceReport::injected())),
            budget.cancel_token()
        );
        budget.check_live().map_err(ChaseError::Exhausted)?;
        let mut progressed = false;
        for dep in &compiled {
            while let Some((a, b)) = find_violation(&tableau, dep, &u, budget, &mut assignments)? {
                if !u.unify(&a, &b) {
                    return Err(ChaseError::Stuck(format!(
                        "cannot unify {a} with {b} while chasing {}",
                        dep.nfd
                    )));
                }
                progressed = true;
                steps += 1;
                budget
                    .check_counter(ResourceKind::ChaseSteps, steps as u64)
                    .map_err(ChaseError::Exhausted)?;
            }
        }
        if !progressed {
            break;
        }
        // Normalize the tableau once per round so violation scans see the
        // merged values (resolution also collapses duplicate set
        // elements).
        tableau = tableau.iter().map(|t| u.resolve(t)).collect();
    }

    let implied = find_violation(&tableau, &compiled_goal, &u, budget, &mut assignments)?.is_none();
    Ok(ChaseRun {
        implied,
        steps,
        nulls: u.bound_count(),
        assignments,
    })
}

/// Builds the tableau following the Appendix A shape with the goal's LHS
/// `X` in the role of the closure: the value at an X path is **one
/// globally shared symbolic tree** — every occurrence of that path,
/// within either row and within any set element, points at the same
/// value, just as every closure path carries the shared constant `0` in
/// the paper's construction. Everything else is fresh, and every
/// set-of-records carries two elements (any Σ-instance with smaller sets
/// is a non-injective instantiation of this template, so generality is
/// preserved).
struct TemplateBuilder<'a> {
    u: &'a mut Unifier,
    x: &'a [Path],
    shared: HashMap<Path, SymValue>,
    budget: &'a Budget,
    /// Record elements built so far; charged alongside nulls so schemas
    /// whose leaves allocate few nulls still cannot build an unbounded
    /// tree.
    elements: u64,
}

impl TemplateBuilder<'_> {
    /// Charges the allocations made so far (nulls plus record elements)
    /// against the budget. Called once per record element, so construction
    /// stops within one element's worth of work once the cap is hit.
    fn charge(&mut self) -> Result<(), ChaseError> {
        self.elements += 1;
        let used = self.u.allocated() as u64 + self.elements;
        self.budget
            .check_counter(ResourceKind::ChaseNulls, used)
            .and_then(|()| self.budget.check_live())
            .map_err(ChaseError::Exhausted)
    }

    /// The value of field path `at` with type `ty`. X paths receive the
    /// globally shared tree (`assignVal`), everything else the generic
    /// unshared shape (`assignNew` + `newRow`).
    fn value(&mut self, ty: &Type, at: &Path) -> Result<SymValue, ChaseError> {
        if self.x.contains(at) {
            if let Some(v) = self.shared.get(at) {
                return Ok(v.clone());
            }
            let v = self.shared_tree(ty, at)?;
            self.shared.insert(at.clone(), v.clone());
            return Ok(v);
        }
        self.unshared(ty, at)
    }

    /// Every set carries three elements: two that agree on X children
    /// (realizing within-set X-agreement patterns, the `assignVal` shape
    /// of Appendix A) and one entirely fresh (the `newRow` shape, keeping
    /// the set's own value generic). Instantiating elements
    /// non-injectively recovers every smaller configuration, so the
    /// template subsumes the Appendix A witness for *any* closure ⊇ X.
    fn shared_tree(&mut self, ty: &Type, at: &Path) -> Result<SymValue, ChaseError> {
        Ok(match ty {
            Type::Base(_) => self.u.fresh(),
            Type::Set(elem) => match &**elem {
                // Elements of base-valued sets cannot be addressed by
                // paths; one null stands for the whole content.
                Type::Base(_) => SymValue::Set(vec![self.u.fresh()]),
                Type::Record(inner) => SymValue::Set(vec![
                    self.shared_element(inner, at)?,
                    self.shared_element(inner, at)?,
                    self.fresh_element(inner, at)?,
                ]),
                Type::Set(_) => {
                    return Err(ChaseError::Core(CoreError::Nav(
                        "validated schemas have no sets of sets".into(),
                    )))
                }
            },
            Type::Record(_) => {
                return Err(ChaseError::Core(CoreError::Nav(
                    "validated record fields are base- or set-typed".into(),
                )))
            }
        })
    }

    /// Sets outside X have the same three-element shape; the distinction
    /// from [`Self::shared_tree`] is only that X paths memoize one global
    /// tree while unshared paths build a fresh one per occurrence.
    fn unshared(&mut self, ty: &Type, at: &Path) -> Result<SymValue, ChaseError> {
        self.shared_tree(ty, at)
    }

    /// One record element whose fields go through [`Self::value`] (X
    /// children shared, others generic).
    fn shared_element(&mut self, rec: &RecordType, at: &Path) -> Result<SymValue, ChaseError> {
        self.charge()?;
        let fields = rec
            .fields()
            .iter()
            .map(|f| Ok((f.label, self.value(&f.ty, &at.child(f.label))?)))
            .collect::<Result<_, ChaseError>>()?;
        Ok(SymValue::Record(fields))
    }

    /// One record element with entirely fresh content, ignoring X (the
    /// `newRow` analogue; the chase merges whatever Σ forces).
    fn fresh_element(&mut self, rec: &RecordType, at: &Path) -> Result<SymValue, ChaseError> {
        self.charge()?;
        let fields = rec
            .fields()
            .iter()
            .map(|f| {
                let v = match &f.ty {
                    Type::Base(_) => self.u.fresh(),
                    Type::Set(elem) => match &**elem {
                        Type::Base(_) => SymValue::Set(vec![self.u.fresh()]),
                        Type::Record(inner) => {
                            let p = at.child(f.label);
                            SymValue::Set(vec![
                                self.fresh_element(inner, &p)?,
                                self.fresh_element(inner, &p)?,
                            ])
                        }
                        Type::Set(_) => {
                            return Err(ChaseError::Core(CoreError::Nav(
                                "validated schemas have no sets of sets".into(),
                            )))
                        }
                    },
                    Type::Record(_) => {
                        return Err(ChaseError::Core(CoreError::Nav(
                            "validated record fields are base- or set-typed".into(),
                        )))
                    }
                };
                Ok((f.label, v))
            })
            .collect::<Result<_, ChaseError>>()?;
        Ok(SymValue::Record(fields))
    }
}

/// A dependency compiled for the violation scan: the component-path trie
/// and its LHS/RHS target indices, resolved once per chase run instead of
/// once per scan. The chase's slice of the compiled-dependency IR.
struct CompiledDep<'a> {
    nfd: &'a Nfd,
    trie: PathTrie,
    lhs_idx: Vec<usize>,
    rhs_idx: usize,
}

impl<'a> CompiledDep<'a> {
    fn new(nfd: &'a Nfd) -> Result<CompiledDep<'a>, ChaseError> {
        let trie = PathTrie::new(nfd.component_paths().cloned());
        let missing = |p: &Path| {
            ChaseError::Core(CoreError::Nav(format!(
                "component path `{p}` missing from path trie"
            )))
        };
        let lhs_idx = nfd
            .lhs()
            .iter()
            .map(|p| trie.target_index(p).ok_or_else(|| missing(p)))
            .collect::<Result<_, _>>()?;
        let rhs_idx = trie
            .target_index(&nfd.rhs)
            .ok_or_else(|| missing(&nfd.rhs))?;
        Ok(CompiledDep {
            nfd,
            trie,
            lhs_idx,
            rhs_idx,
        })
    }
}

/// Finds one violation of `dep` on the tableau: two trie-consistent
/// assignments (across or within rows) whose resolved LHS tuples agree
/// but whose resolved RHS values differ. Returns the differing RHS values.
///
/// The enumeration is the exponential part of a scan, so every emitted
/// assignment is charged against `budget` (cumulatively across the run
/// via `assignments`), and the `stop` flag aborts the whole expansion
/// tree as soon as either a violation or exhaustion is found.
fn find_violation(
    tableau: &[SymValue],
    dep: &CompiledDep<'_>,
    u: &Unifier,
    budget: &Budget,
    assignments: &mut u64,
) -> Result<Option<(SymValue, SymValue)>, ChaseError> {
    fail_point!(
        "chase::scan",
        Err(ChaseError::Exhausted(ResourceReport::injected())),
        budget.cancel_token()
    );
    let trie = &dep.trie;

    let mut groups: HashMap<Vec<SymValue>, SymValue> = HashMap::new();
    let mut found: Option<(SymValue, SymValue)> = None;
    let mut exhausted: Option<ResourceReport> = None;
    let stop = Cell::new(false);
    for row in tableau {
        if stop.get() {
            break;
        }
        for_each_sym_assignment(
            row,
            trie.roots(),
            &mut vec![None; trie.len()],
            &stop,
            &mut |vals| {
                *assignments += 1;
                if let Err(r) = budget
                    .check_counter(ResourceKind::Assignments, *assignments)
                    .and_then(|()| {
                        if (*assignments).is_multiple_of(4096) {
                            budget.check_live()
                        } else {
                            Ok(())
                        }
                    })
                {
                    exhausted = Some(r);
                    stop.set(true);
                    return;
                }
                // A hole would mean the trie and the tableau disagree on
                // shape; skip such an assignment rather than grouping it.
                let Some(key) = dep
                    .lhs_idx
                    .iter()
                    .map(|&i| vals[i].as_ref().map(|v| u.resolve(v)))
                    .collect::<Option<Vec<SymValue>>>()
                else {
                    return;
                };
                let Some(rhs) = vals[dep.rhs_idx].as_ref().map(|v| u.resolve(v)) else {
                    return;
                };
                match groups.get(&key) {
                    None => {
                        groups.insert(key, rhs);
                    }
                    Some(existing) if *existing == rhs => {}
                    Some(existing) => {
                        found = Some((existing.clone(), rhs));
                        stop.set(true);
                    }
                }
            },
        );
    }
    if let Some(r) = exhausted {
        return Err(ChaseError::Exhausted(r));
    }
    Ok(found)
}

/// Assignment enumeration over symbolic values — the `SymValue` analogue
/// of `nfd_path::nav::for_each_assignment`. Checks `stop` at every loop
/// head so the caller can abort the exponential expansion promptly.
fn for_each_sym_assignment(
    v: &SymValue,
    nodes: &[nfd_path::trie::TrieNode],
    values: &mut Vec<Option<SymValue>>,
    stop: &Cell<bool>,
    emit: &mut dyn FnMut(&Vec<Option<SymValue>>),
) {
    // Fill sibling targets, then cross-product over internal siblings.
    let mut set_targets = Vec::new();
    for node in nodes {
        if let Some(idx) = node.target {
            let Some(val) = v.get(node.label) else {
                return; // shape mismatch: no assignments through this node
            };
            values[idx] = Some(val.clone());
            set_targets.push(idx);
        }
    }
    let internal: Vec<&nfd_path::trie::TrieNode> =
        nodes.iter().filter(|n| !n.children.is_empty()).collect();
    expand_sym(v, &internal, 0, values, stop, emit);
    for idx in set_targets {
        values[idx] = None;
    }
}

fn expand_sym(
    v: &SymValue,
    internal: &[&nfd_path::trie::TrieNode],
    i: usize,
    values: &mut Vec<Option<SymValue>>,
    stop: &Cell<bool>,
    emit: &mut dyn FnMut(&Vec<Option<SymValue>>),
) {
    if i == internal.len() {
        emit(values);
        return;
    }
    let node = internal[i];
    let Some(SymValue::Set(elems)) = v.get(node.label) else {
        return; // shape mismatch: internal trie nodes are set-valued
    };
    for elem in elems {
        if stop.get() {
            return;
        }
        let mut continue_next =
            |values: &mut Vec<Option<SymValue>>| expand_sym(v, internal, i + 1, values, stop, emit);
        // Inline the with-siblings logic with the continuation.
        let mut set_targets = Vec::new();
        for child in &node.children {
            if let Some(idx) = child.target {
                let Some(val) = elem.get(child.label) else {
                    continue;
                };
                values[idx] = Some(val.clone());
                set_targets.push(idx);
            }
        }
        let inner: Vec<&nfd_path::trie::TrieNode> = node
            .children
            .iter()
            .filter(|n| !n.children.is_empty())
            .collect();
        expand_sym_k(elem, &inner, 0, values, stop, &mut continue_next);
        for idx in set_targets {
            values[idx] = None;
        }
    }
}

fn expand_sym_k(
    v: &SymValue,
    internal: &[&nfd_path::trie::TrieNode],
    i: usize,
    values: &mut Vec<Option<SymValue>>,
    stop: &Cell<bool>,
    k: &mut dyn FnMut(&mut Vec<Option<SymValue>>),
) {
    if i == internal.len() {
        k(values);
        return;
    }
    let node = internal[i];
    let Some(SymValue::Set(elems)) = v.get(node.label) else {
        return; // shape mismatch: internal trie nodes are set-valued
    };
    for elem in elems {
        if stop.get() {
            return;
        }
        let mut set_targets = Vec::new();
        for child in &node.children {
            if let Some(idx) = child.target {
                let Some(val) = elem.get(child.label) else {
                    continue;
                };
                values[idx] = Some(val.clone());
                set_targets.push(idx);
            }
        }
        let inner: Vec<&nfd_path::trie::TrieNode> = node
            .children
            .iter()
            .filter(|n| !n.children.is_empty())
            .collect();
        let mut continue_next =
            |values: &mut Vec<Option<SymValue>>| expand_sym_k(v, internal, i + 1, values, stop, k);
        expand_sym_k(elem, &inner, 0, values, stop, &mut continue_next);
        for idx in set_targets {
            values[idx] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfd_core::nfd::parse_set;
    use nfd_core::simple;

    #[test]
    fn tableau_rows_share_exactly_x() {
        let schema = Schema::parse("R : {<A: int, B: int>};").unwrap();
        let rec = schema
            .relation_type(nfd_model::Label::new("R"))
            .unwrap()
            .element_record()
            .unwrap();
        let mut u = Unifier::new();
        let x = vec![Path::parse("A").unwrap()];
        let budget = Budget::standard();
        let mut b = TemplateBuilder {
            u: &mut u,
            x: &x,
            shared: HashMap::new(),
            budget: &budget,
            elements: 0,
        };
        let t1 = b.shared_element(rec, &Path::empty()).unwrap();
        let t2 = b.shared_element(rec, &Path::empty()).unwrap();
        let la = nfd_model::Label::new("A");
        let lb = nfd_model::Label::new("B");
        assert_eq!(t1.get(la), t2.get(la), "A shared");
        assert_ne!(t1.get(lb), t2.get(lb), "B fresh");
    }

    #[test]
    fn violation_found_and_chased() {
        let schema = Schema::parse("R : {<A: int, B: int>};").unwrap();
        let sigma = parse_set(&schema, "R:[A -> B];").unwrap();
        let sigma_s: Vec<Nfd> = sigma.iter().map(simple::to_simple).collect();
        let refs: Vec<&Nfd> = sigma_s.iter().collect();
        let goal = simple::to_simple(&Nfd::parse(&schema, "R:[A -> B]").unwrap());
        let run = run(&schema, &refs, &goal, &Budget::standard()).unwrap();
        assert!(run.implied);
        assert!(run.steps >= 1, "the A → B merge is a chase step");
        assert!(run.assignments >= 1, "the scan enumerated assignments");
    }

    #[test]
    fn no_dependencies_nothing_implied() {
        let schema = Schema::parse("R : {<A: int, B: int>};").unwrap();
        let goal = simple::to_simple(&Nfd::parse(&schema, "R:[A -> B]").unwrap());
        let run = run(&schema, &[], &goal, &Budget::standard()).unwrap();
        assert!(!run.implied);
        assert_eq!(run.steps, 0);
    }

    #[test]
    fn trivial_goal_implied_without_steps() {
        let schema = Schema::parse("R : {<A: int, B: int>};").unwrap();
        let goal = simple::to_simple(&Nfd::parse(&schema, "R:[A, B -> A]").unwrap());
        let run = run(&schema, &[], &goal, &Budget::standard()).unwrap();
        assert!(run.implied);
    }

    #[test]
    fn null_budget_stops_template_construction() {
        // Three nesting levels → 3^depth record elements; a tiny null
        // budget must stop construction with `Exhausted`, not OOM.
        let schema = Schema::parse("R : {<A: {<B: {<C: {<D: int>}>}>}>};").unwrap();
        let goal = simple::to_simple(&Nfd::parse(&schema, "R:[A -> A]").unwrap());
        let mut budget = Budget::standard();
        budget.max_chase_nulls = 10;
        match run(&schema, &[], &goal, &budget) {
            Err(ChaseError::Exhausted(r)) => assert_eq!(r.kind, ResourceKind::ChaseNulls),
            other => panic!("expected null exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn assignment_budget_stops_scan() {
        let schema = Schema::parse("R : {<A: {<B: int, C: int>}, D: int>};").unwrap();
        let goal = simple::to_simple(&Nfd::parse(&schema, "R:[A:B -> A:C]").unwrap());
        let mut budget = Budget::standard();
        budget.max_assignments = 1;
        match run(&schema, &[], &goal, &budget) {
            Err(ChaseError::Exhausted(r)) => assert_eq!(r.kind, ResourceKind::Assignments),
            other => panic!("expected assignment exhaustion, got {other:?}"),
        }
    }
}
