//! Symbolic values with labeled nulls, and their unifier.
//!
//! A tableau value is like a model value but its leaves are labeled nulls;
//! two rows agree on a path exactly when their resolved values are
//! syntactically identical. The chase equates values by *binding* nulls —
//! an equality-generating dependency step.

use nfd_model::Label;
use std::collections::HashMap;
use std::fmt;

/// A symbolic value.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SymValue {
    /// A labeled null `⊥n`.
    Null(u32),
    /// A set of symbolic values. Element order is construction order; the
    /// two rows of a tableau build isomorphic trees, so positional
    /// unification of corresponding sets is meaningful.
    Set(Vec<SymValue>),
    /// A record.
    Record(Vec<(Label, SymValue)>),
}

impl SymValue {
    /// Projects a record field.
    pub fn get(&self, label: Label) -> Option<&SymValue> {
        match self {
            SymValue::Record(fields) => fields.iter().find(|(l, _)| *l == label).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl fmt::Display for SymValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymValue::Null(n) => write!(f, "⊥{n}"),
            SymValue::Set(es) => {
                f.write_str("{")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str("}")
            }
            SymValue::Record(fields) => {
                f.write_str("<")?;
                for (i, (l, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{l}: {v}")?;
                }
                f.write_str(">")
            }
        }
    }
}

/// Null bindings with path compression. Binding a null to a value that
/// contains the null itself is rejected (occurs check) — it cannot arise
/// from the tableau shapes the chase builds, but the API stays total.
#[derive(Default, Debug)]
pub struct Unifier {
    bindings: HashMap<u32, SymValue>,
    next_null: u32,
}

impl Unifier {
    /// A fresh unifier whose nulls start at 0.
    pub fn new() -> Unifier {
        Unifier::default()
    }

    /// Allocates a fresh null.
    pub fn fresh(&mut self) -> SymValue {
        let n = self.next_null;
        self.next_null += 1;
        SymValue::Null(n)
    }

    /// Fully resolves a value under the current bindings. Sets are
    /// deduplicated after resolution (set semantics).
    pub fn resolve(&self, v: &SymValue) -> SymValue {
        match v {
            SymValue::Null(n) => match self.bindings.get(n) {
                Some(bound) => self.resolve(bound),
                None => SymValue::Null(*n),
            },
            SymValue::Set(es) => {
                let mut resolved: Vec<SymValue> = es.iter().map(|e| self.resolve(e)).collect();
                resolved.sort();
                resolved.dedup();
                SymValue::Set(resolved)
            }
            SymValue::Record(fields) => {
                SymValue::Record(fields.iter().map(|(l, v)| (*l, self.resolve(v))).collect())
            }
        }
    }

    fn occurs(&self, n: u32, v: &SymValue) -> bool {
        match v {
            SymValue::Null(m) => *m == n,
            SymValue::Set(es) => es.iter().any(|e| self.occurs(n, e)),
            SymValue::Record(fields) => fields.iter().any(|(_, v)| self.occurs(n, v)),
        }
    }

    /// Unifies two values (post-resolution), binding nulls as needed.
    /// Returns `false` if they cannot be unified (shape mismatch, set
    /// cardinality mismatch, or occurs-check failure).
    pub fn unify(&mut self, a: &SymValue, b: &SymValue) -> bool {
        let ra = self.resolve(a);
        let rb = self.resolve(b);
        if ra == rb {
            return true;
        }
        match (&ra, &rb) {
            (SymValue::Null(n), other) | (other, SymValue::Null(n)) => {
                if self.occurs(*n, other) {
                    return false;
                }
                self.bindings.insert(*n, other.clone());
                true
            }
            (SymValue::Set(xs), SymValue::Set(ys)) => {
                // Positional unification: tableau sets on the two sides
                // are built by the same recursion, so position i on one
                // side corresponds to position i on the other. Resolution
                // may have collapsed duplicates on one side only; in that
                // case unify the shorter against a prefix (the collapsed
                // elements were already equal).
                let n = xs.len().min(ys.len());
                if n == 0 {
                    return xs.len() == ys.len();
                }
                for i in 0..n {
                    if !self.unify(&xs[i], &ys[i]) {
                        return false;
                    }
                }
                // Fold any remaining elements into the last shared slot.
                let longer: &[SymValue] = if xs.len() > n { xs } else { ys };
                for extra in &longer[n..] {
                    let anchor = longer[n - 1].clone();
                    if !self.unify(extra, &anchor) {
                        return false;
                    }
                }
                true
            }
            (SymValue::Record(xs), SymValue::Record(ys)) => {
                if xs.len() != ys.len() {
                    return false;
                }
                for ((la, va), (lb, vb)) in xs.iter().zip(ys) {
                    if la != lb || !self.unify(va, vb) {
                        return false;
                    }
                }
                true
            }
            _ => false,
        }
    }

    /// Number of bound nulls — a progress measure; the chase terminates
    /// because every productive step increases it.
    pub fn bound_count(&self) -> usize {
        self.bindings.len()
    }

    /// Total nulls allocated so far — the memory-dominating quantity of a
    /// tableau, checked against [`nfd_govern::Budget::max_chase_nulls`]
    /// during template construction.
    pub fn allocated(&self) -> usize {
        self.next_null as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    #[test]
    fn bind_and_resolve() {
        let mut u = Unifier::new();
        let a = u.fresh();
        let b = u.fresh();
        assert!(u.unify(&a, &b));
        assert_eq!(u.resolve(&a), u.resolve(&b));
        assert_eq!(u.bound_count(), 1);
    }

    #[test]
    fn record_unification() {
        let mut u = Unifier::new();
        let (a, b, c) = (u.fresh(), u.fresh(), u.fresh());
        let r1 = SymValue::Record(vec![(l("x"), a.clone()), (l("y"), b.clone())]);
        let r2 = SymValue::Record(vec![(l("x"), c.clone()), (l("y"), b.clone())]);
        assert!(u.unify(&r1, &r2));
        assert_eq!(u.resolve(&a), u.resolve(&c));
    }

    #[test]
    fn set_unification_positional() {
        let mut u = Unifier::new();
        let (a, b, c, d) = (u.fresh(), u.fresh(), u.fresh(), u.fresh());
        let s1 = SymValue::Set(vec![a.clone(), b.clone()]);
        let s2 = SymValue::Set(vec![c.clone(), d.clone()]);
        assert!(u.unify(&s1, &s2));
        assert_eq!(u.resolve(&a), u.resolve(&c));
        assert_eq!(u.resolve(&b), u.resolve(&d));
    }

    #[test]
    fn collapsed_set_unifies_with_pair() {
        let mut u = Unifier::new();
        let (a, b, c) = (u.fresh(), u.fresh(), u.fresh());
        // {a} vs {b, c}: b and c both fold onto a.
        let s1 = SymValue::Set(vec![a.clone()]);
        let s2 = SymValue::Set(vec![b.clone(), c.clone()]);
        assert!(u.unify(&s1, &s2));
        assert_eq!(u.resolve(&b), u.resolve(&a));
        assert_eq!(u.resolve(&c), u.resolve(&a));
    }

    #[test]
    fn resolution_dedups_sets() {
        let mut u = Unifier::new();
        let (a, b) = (u.fresh(), u.fresh());
        let s = SymValue::Set(vec![a.clone(), b.clone()]);
        assert!(u.unify(&a, &b));
        match u.resolve(&s) {
            SymValue::Set(es) => assert_eq!(es.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn occurs_check() {
        let mut u = Unifier::new();
        let a = u.fresh();
        let s = SymValue::Set(vec![a.clone()]);
        assert!(!u.unify(&a, &s));
    }

    #[test]
    fn display_forms() {
        let v = SymValue::Record(vec![(l("x"), SymValue::Null(7))]);
        assert_eq!(v.to_string(), "<x: ⊥7>");
    }
}
