//! A zero-dependency scoped worker pool for batch decision procedures.
//!
//! The decision procedures of this workspace are CPU-bound and goal-wise
//! independent: a batch implication query, a candidate-key level sweep, or
//! an exhaustive differential census shards perfectly across cores. The
//! registry being unreachable (no `rayon`), this crate provides the small
//! parallel vocabulary the workspace needs on plain `std::thread::scope`:
//!
//! * [`map_indexed`] — a dynamic-scheduling parallel map over `0..n` that
//!   returns results **in index order**, so callers observe the same
//!   output as a sequential loop regardless of thread count or worker
//!   interleaving;
//! * [`map_indexed_while`] — the cancellable variant: a shared predicate
//!   is polled before each item is dispatched, and items never started
//!   come back as `None` (the caller decides how to report them);
//! * [`resolve_threads`] / [`available`] — thread-count policy in one
//!   place (`0` means "all the hardware allows").
//!
//! Work is handed out item-by-item from a shared atomic counter
//! (dynamic scheduling), so one pathologically slow item cannot strand a
//! statically-assigned chunk behind it. Worker panics are re-raised on
//! the calling thread via [`std::panic::resume_unwind`] — the pool adds
//! no panicking sites of its own (see `tests/unwrap_guard.rs`).

#![warn(missing_docs)]

use nfd_faults::fail_point;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The parallelism the hardware advertises (at least 1).
pub fn available() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a requested thread count: `0` means "use all available
/// parallelism"; any other value is taken as-is. The result is clamped to
/// at least 1 and at most `work_items` (spawning more workers than items
/// only costs setup).
pub fn resolve_threads(requested: usize, work_items: usize) -> usize {
    let n = if requested == 0 {
        available()
    } else {
        requested
    };
    n.clamp(1, work_items.max(1))
}

/// Parallel map over `0..n` with dynamic scheduling, returning results in
/// index order. `threads == 0` means all available parallelism; with one
/// thread (or one item) the map runs inline on the caller with no pool at
/// all, so the single-threaded path is exactly the sequential loop.
///
/// A panic in `f` is re-raised on the calling thread after every worker
/// has stopped.
pub fn map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = resolve_threads(threads, n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let parts = run_pool(n, threads, |i, local: &mut Vec<(usize, T)>| {
        local.push((i, f(i)));
        true
    });
    reassemble_total(n, parts)
}

/// [`map_indexed`] with a cooperative stop signal: before dispatching each
/// item, the pool polls `keep_going`; once it returns `false`, no further
/// items are started (in-flight items run to completion, which for the
/// budgeted decision procedures means until their own next budget poll).
/// Items never started come back as `None`, in index order.
///
/// The single-threaded path is the same dispatch loop run inline, so a
/// caller that stops after item `k` sees `Some` for `0..=k` and `None`
/// after — identical at every thread count when `keep_going` depends only
/// on completed items.
pub fn map_indexed_while<T, F, K>(n: usize, threads: usize, keep_going: K, f: F) -> Vec<Option<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    K: Fn() -> bool + Sync,
{
    let threads = resolve_threads(threads, n);
    if threads <= 1 {
        let mut out: Vec<Option<T>> = Vec::with_capacity(n);
        for i in 0..n {
            if keep_going() {
                out.push(Some(f(i)));
            } else {
                out.push(None);
            }
        }
        return out;
    }
    let parts = run_pool(n, threads, |i, local: &mut Vec<(usize, T)>| {
        if !keep_going() {
            return false;
        }
        local.push((i, f(i)));
        true
    });
    // The partial map reassembles inline (same site as the total path:
    // both are the merge step after every worker has been joined).
    fail_point!("par::reassemble");
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, v) in parts.into_iter().flatten() {
        out[i] = Some(v);
    }
    out
}

/// Spawns `threads` identical long-lived scoped workers and blocks until
/// every one returns — the pool-handle shape for callers that own their
/// own work queue (e.g. a server's resident read pool draining a shared
/// channel) rather than an indexed batch. Each worker runs `f(worker)`
/// once, with `worker` in `0..threads`; `threads == 0` means all
/// available parallelism, and a single worker still runs on its own
/// scoped thread (the caller typically blocks in `f` on a channel, so
/// running inline would deadlock a 1-worker pool against its producer —
/// unlike [`map_indexed`], whose work is finite and caller-supplied).
///
/// Worker panics re-raise on the caller after every worker has stopped,
/// exactly like [`map_indexed`]; workers share the `par::worker`
/// failpoint site with the batch pool.
pub fn scoped_workers<F>(threads: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let threads = if threads == 0 { available() } else { threads }.max(1);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                scope.spawn(move || {
                    fail_point!("par::worker");
                    f(worker);
                })
            })
            .collect();
        let mut panicked = None;
        for h in handles {
            if let Err(payload) = h.join() {
                // Defer: join every worker before re-raising, or the
                // scope would re-join (and re-panic) behind our back.
                panicked = Some(payload);
            }
        }
        if let Some(payload) = panicked {
            std::panic::resume_unwind(payload);
        }
    })
}

/// Spawns `threads` scoped workers pulling indices `0..n` from a shared
/// atomic counter. Each worker accumulates into its own local vector
/// (returned per worker); `step` returns `false` to stop that worker.
/// Worker panics are re-raised on the caller once all workers have
/// stopped.
fn run_pool<T, S>(n: usize, threads: usize, step: S) -> Vec<Vec<(usize, T)>>
where
    T: Send,
    S: Fn(usize, &mut Vec<(usize, T)>) -> bool + Sync,
{
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    // Observe-only site: a worker has no error channel, so
                    // only the panic/delay actions apply — panics here
                    // exercise the join-then-re-raise path below and the
                    // caller's containment boundary.
                    fail_point!("par::worker");
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n || !step(i, &mut local) {
                            break;
                        }
                    }
                    local
                })
            })
            .collect();
        let mut parts = Vec::with_capacity(threads);
        let mut panicked = None;
        for h in handles {
            match h.join() {
                Ok(local) => parts.push(local),
                // Defer: every worker must be joined before re-raising, or
                // the scope would re-join (and re-panic) behind our back.
                Err(payload) => panicked = Some(payload),
            }
        }
        if let Some(payload) = panicked {
            std::panic::resume_unwind(payload);
        }
        parts
    })
}

/// Merges per-worker `(index, value)` runs back into index order. Every
/// index in `0..n` is present exactly once by construction (the atomic
/// counter hands each index to exactly one worker, and `step` never
/// declines in the total map).
fn reassemble_total<T>(n: usize, parts: Vec<Vec<(usize, T)>>) -> Vec<T> {
    fail_point!("par::reassemble");
    let mut pairs: Vec<(usize, T)> = Vec::with_capacity(n);
    for part in parts {
        pairs.extend(part);
    }
    pairs.sort_unstable_by_key(|(i, _)| *i);
    pairs.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn resolve_threads_policy() {
        assert!(resolve_threads(0, 100) >= 1);
        assert_eq!(resolve_threads(4, 100), 4);
        assert_eq!(resolve_threads(8, 3), 3); // clamped to items
        assert_eq!(resolve_threads(4, 0), 1); // empty input still valid
    }

    #[test]
    fn map_indexed_preserves_order_at_every_thread_count() {
        let expect: Vec<usize> = (0..257).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8] {
            let got = map_indexed(257, threads, |i| i * i);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn map_indexed_handles_empty_and_single() {
        assert_eq!(map_indexed(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(1, 8, |i| i + 41), vec![41]);
    }

    #[test]
    fn map_indexed_while_stops_dispatching() {
        // Stop after the flag flips at item 5: with one thread the cut is
        // exact; with many threads at most the in-flight tail completes.
        let stop = AtomicBool::new(false);
        let out = map_indexed_while(
            100,
            1,
            || !stop.load(Ordering::Relaxed),
            |i| {
                if i == 5 {
                    stop.store(true, Ordering::Relaxed);
                }
                i
            },
        );
        assert_eq!(out.iter().filter(|o| o.is_some()).count(), 6);
        assert_eq!(out[5], Some(5));
        assert!(out[6..].iter().all(|o| o.is_none()));
    }

    #[test]
    fn map_indexed_while_parallel_never_loses_completed_items() {
        let stop = AtomicBool::new(false);
        for threads in [2, 4, 8] {
            stop.store(false, Ordering::Relaxed);
            let out = map_indexed_while(
                64,
                threads,
                || !stop.load(Ordering::Relaxed),
                |i| {
                    if i == 10 {
                        stop.store(true, Ordering::Relaxed);
                    }
                    i * 3
                },
            );
            // Every Some is correct and item 10 (the stopper) completed.
            for (i, o) in out.iter().enumerate() {
                if let Some(v) = o {
                    assert_eq!(*v, i * 3);
                }
            }
            assert_eq!(out[10], Some(30), "threads = {threads}");
        }
    }

    #[test]
    fn scoped_workers_runs_each_worker_once() {
        use std::sync::Mutex;
        let seen: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        scoped_workers(4, |w| seen.lock().unwrap().push(w));
        let mut got = seen.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn scoped_workers_share_a_channel_without_deadlock() {
        use std::sync::{mpsc, Mutex};
        // One worker draining a pre-filled queue: must not run inline on
        // the caller before the channel is populated elsewhere — here we
        // pre-fill, but the worker still runs on its own thread.
        let (tx, rx) = mpsc::channel();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let rx = Mutex::new(rx);
        let total = std::sync::atomic::AtomicUsize::new(0);
        scoped_workers(3, |_| loop {
            let item = match rx.lock().unwrap().recv() {
                Ok(i) => i,
                Err(_) => break,
            };
            total.fetch_add(item, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn scoped_workers_reraise_panics_after_joining_all() {
        let caught = std::panic::catch_unwind(|| {
            scoped_workers(4, |w| {
                if w == 2 {
                    panic!("worker 2 down");
                }
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            map_indexed(32, 4, |i| {
                if i == 17 {
                    panic!("boom at 17");
                }
                i
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn pool_result_is_deterministic_under_contention() {
        // Heavier items early: dynamic scheduling reorders execution, the
        // result must not notice.
        let expect: Vec<u64> = (0..500u64).map(|i| i.wrapping_mul(2654435761)).collect();
        for _ in 0..10 {
            let got = map_indexed(500, 8, |i| {
                let mut x = i as u64;
                for _ in 0..(500 - i) % 97 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                let _ = x;
                (i as u64).wrapping_mul(2654435761)
            });
            assert_eq!(got, expect);
        }
    }
}
