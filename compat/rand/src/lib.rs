//! A tiny, dependency-free stand-in for the parts of the `rand` crate this
//! workspace uses (`StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range`, `Rng::gen_bool`).
//!
//! The workspace builds in environments with no crates.io access, so the
//! real `rand` cannot be fetched; every consumer only needs a *seeded,
//! deterministic* source of pseudo-randomness (reproducible property tests
//! and workload generators), never cryptographic or statistical quality.
//! The generator is splitmix64 — tiny, fast, and plenty uniform for test
//! workloads. Streams differ from the real `StdRng`, which no consumer
//! relies on.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types that [`Rng::gen_range`] can sample (subset of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy {
    /// Converts from the generator's native `u64` modulo a bound.
    fn from_u64(v: u64) -> Self;
    /// Converts to `u64` for range arithmetic (values are non-negative in
    /// every workspace use; negative bounds saturate at 0).
    fn to_u64(self) -> u64;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_u64(v: u64) -> $t {
                v as $t
            }
            fn to_u64(self) -> u64 {
                if (self as i128) < 0 { 0 } else { self as u64 }
            }
        }
    )*};
}
impl_sample_uniform!(usize, u64, u32, u16, u8, i64, i32);

/// Ranges that [`Rng::gen_range`] accepts (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// The inclusive lower bound and the number of representable values.
    /// Panics if the range is empty, matching `rand`'s contract.
    fn bounds(&self) -> (u64, u64);
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn bounds(&self) -> (u64, u64) {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "cannot sample empty range");
        (lo, hi - lo)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn bounds(&self) -> (u64, u64) {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "cannot sample empty range");
        (lo, hi - lo + 1)
    }
}

/// Random value generation (subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        let (lo, span) = range.bounds();
        // Modulo bias is ~span/2^64 — irrelevant for test workloads.
        T::from_u64(lo + self.next_u64() % span)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool needs p in [0,1]");
        // 53 high bits give a uniform f64 in [0,1).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }
}

/// Named RNG types (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic seeded generator (splitmix64). Streams are stable
    /// across runs and platforms but differ from the real `rand::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea & Flood 2014), public domain.
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!((0..8).any(|_| c.next_u64() != xs[0]));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = r.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y: u32 = r.gen_range(0..=4);
            assert!(y <= 4);
            let z: usize = r.gen_range(2..=2);
            assert_eq!(z, 2);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }
}
