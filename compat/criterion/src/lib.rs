//! A small, dependency-free stand-in for the parts of the `criterion`
//! benchmark harness this workspace uses.
//!
//! The workspace builds without crates.io access, so the real `criterion`
//! cannot be fetched. This crate keeps the same authoring API
//! ([`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! [`criterion_group!`]/[`criterion_main!`]) and produces median /
//! mean / total-time estimates on stderr-free plain stdout lines of the
//! form `bench <group>/<id> ... median <t> mean <t>`.
//!
//! Differences from the real criterion: no statistical outlier analysis,
//! no plots, no saved baselines. Warm-up and measurement windows are
//! respected, and `cargo test` invocations (which pass `--test`) run each
//! benchmark body once as a smoke test instead of timing it.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group (subset of
/// `criterion::BenchmarkId`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name plus a parameter, rendered
    /// `name/parameter` like the real criterion.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> BenchmarkId {
        BenchmarkId { id }
    }
}

/// Drives the timing loop for one benchmark (subset of
/// `criterion::Bencher`).
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    smoke_only: bool,
}

impl Bencher<'_> {
    /// Times `routine`, first warming up, then collecting `sample_size`
    /// samples (each a batch of iterations sized so one sample fits the
    /// measurement window).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke_only {
            std::hint::black_box(routine());
            return;
        }
        // Warm-up: also estimates the per-iteration cost.
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            std::hint::black_box(routine());
            iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(iters.max(1));
        let budget_per_sample = self.measurement_time.as_nanos() / self.sample_size.max(1) as u128;
        let batch = (budget_per_sample / per_iter.max(1)).clamp(1, u128::from(u32::MAX)) as u64;

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }
}

/// A named set of related benchmarks with shared settings (subset of
/// `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets how long to run the routine before timing starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total time budget for the timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark under this group's settings.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run(&id, |b| f(b));
        self
    }

    /// Runs one benchmark, passing `input` through to the closure.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.run(&id, |b| f(b, input));
        self
    }

    fn run<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &BenchmarkId, mut f: F) {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return;
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        let mut bencher = Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            smoke_only: self.criterion.smoke_only,
        };
        f(&mut bencher);
        self.criterion.report(&full, &samples);
    }

    /// Ends the group. (The real criterion finalizes reports here; this
    /// stand-in reports eagerly, so it is a no-op kept for API parity.)
    pub fn finish(self) {}
}

/// The benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    filter: Option<String>,
    smoke_only: bool,
}

impl Default for Criterion {
    /// Builds a driver configured from the command line that cargo's
    /// bench/test harness passes: `--test` selects run-once smoke mode,
    /// a bare (non-flag) argument filters benchmarks by substring, and
    /// all real-criterion flags are accepted and ignored.
    fn default() -> Criterion {
        let mut filter = None;
        let mut smoke_only = false;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => smoke_only = true,
                "--bench" | "--profile-time" | "--save-baseline" | "--baseline"
                | "--sample-size" | "--warm-up-time" | "--measurement-time" => {
                    // Flags with a possible value; skip the value if the
                    // flag requires one (--bench does not).
                    if arg != "--bench" {
                        let _ = args.next();
                    }
                }
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { filter, smoke_only }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }

    /// Runs a standalone benchmark with default settings.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut group = self.benchmark_group("");
        group.bench_function(BenchmarkId::from(id), |b| f(b));
        group.finish();
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    fn report(&self, name: &str, samples: &[Duration]) {
        let name = name.trim_start_matches('/');
        if self.smoke_only {
            println!("bench {name} ... ok (smoke)");
            return;
        }
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort();
        let median = sorted.get(sorted.len() / 2).copied().unwrap_or_default();
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len().max(1) as u32;
        println!(
            "bench {name} ... median {} mean {}",
            fmt_duration(median),
            fmt_duration(mean)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` function, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_reports() {
        let mut c = Criterion {
            filter: None,
            smoke_only: false,
        };
        let mut group = c.benchmark_group("g");
        group
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut ran = 0u64;
        group.bench_function("f", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("selected".into()),
            smoke_only: true,
        };
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("other", 1), &1, |b, _| {
            b.iter(|| ran = true)
        });
        group.finish();
        assert!(!ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("build", 4).to_string(), "build/4");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
