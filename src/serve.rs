//! The multi-tenant schema registry behind `nfdtool serve`.
//!
//! [`Registry`] implements [`nfd_serve::Handler`]: it keeps many named
//! schemas resident as compiled [`Session`]s and answers the protocol's
//! workload verbs against them. The transport, admission gate, unwind
//! boundaries and drain protocol all live in the `nfd-serve` crate;
//! what lives here is the NFD side:
//!
//! * **Read-parallel epochs without `'static` gymnastics.**
//!   `Session<'s>` borrows its `Schema`, which is exactly right for one
//!   CLI invocation and exactly wrong for a daemon. Rather than leak or
//!   unsafely self-reference, each tenant gets an *epoch thread* that
//!   owns `(Schema, Σ, Session)` on its stack and serves work over an
//!   `mpsc` channel — but unlike the one-actor model this replaced, the
//!   epoch runs a pool of [`RegistryConfig::workers`] readers
//!   (`nfd_par::scoped_workers`) draining the channel concurrently: the
//!   session read path is `&self`, so IMPLIES/BATCH/CLOSURE/KEYS on one
//!   hot tenant execute in parallel. At `workers == 1` the epoch serves
//!   sequentially with a per-query engine rebuild — bit-identical to
//!   the historical daemon, and the differential reference for the
//!   parallel mode. At `workers >= 2` reads are served from the
//!   *resident* compiled engine ([`Session::implies_with_resident`]),
//!   amortizing the per-request saturation rebuild away; builds are
//!   deterministic and query-time chaining consumes no budget counters,
//!   so verdicts match the sequential mode (see DESIGN.md
//!   §"Read-parallel registry" for the argument and the metered-tenant
//!   caveat).
//! * **Epoch-swap mutation.** Write verbs (ADDDEP/DROPDEP) never touch
//!   the serving session: under a per-tenant write gate, the registry
//!   freezes the current epoch (an in-memory snapshot over the channel
//!   it already serves), builds the *next* epoch off to the side —
//!   thaw, apply the delta, ready-handshake — and atomically swaps the
//!   tenant's handle. Readers in flight finish on the old epoch, which
//!   drains on channel hangup; no reader ever observes a half-applied
//!   Σ, and a failure (or injected panic) anywhere before the swap
//!   leaves the old epoch serving untouched.
//! * **A shared cross-tenant closure cache.** Tenants loaded from
//!   identical `(schema source, Σ source, policy)` under the daemon's
//!   single build budget compile bit-identical engines, so they share
//!   one [`ClosureCache`] from a registry-held pool and warm each
//!   other. A mutated tenant's next epoch deliberately gets a private
//!   cache: its Σ has diverged, and writing its closures into the
//!   shared pool would poison the tenants still serving the original.
//! * **Crash containment in depth.** Every query is answered inside
//!   `catch_unwind` (on top of the server's per-request boundary), so a
//!   poisoned query answers `ERR` and the *epoch survives* — the next
//!   query on the same tenant is served from the same warm caches.
//!   Should an epoch die anyway, the failed channel send is detected,
//!   the tenant is evicted, and the client gets `ERR`, never a hang.
//! * **Per-tenant quotas.** A tenant's remaining work units (set at
//!   `LOAD` from [`RegistryConfig::default_quota`], adjusted by
//!   `QUOTA`) cap the [`Budget`] of every query; a drained quota
//!   answers `EXHAUSTED` *before* dispatch. Queries are charged their
//!   actual decider cost (max attempt counter, min 1), so expensive
//!   tenants drain faster.
//! * **LRU residency.** At most [`RegistryConfig::max_resident`]
//!   sessions stay warm; loading past the cap retires the
//!   least-recently-used tenant (its epoch exits, freeing the compiled
//!   tables).
//!
//! Per-request deadlines ([`RegistryConfig::request_timeout_ms`]) apply
//! to the *query* budgets only. The resident engine is compiled under a
//! counters-only budget: a deadline baked into the session at `LOAD`
//! would be in the past for every later query, poisoning `CLOSURE` and
//! `KEYS`, which run on the resident engine.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

use nfd_core::{
    ClosureCache, CoreError, EmptySetPolicy, Nfd, TierPreference, DEFAULT_CLOSURE_CACHE_CAPACITY,
};
use nfd_faults::fail_point;
use nfd_govern::{Budget, Verdict};
use nfd_model::{Label, Schema};
use nfd_path::{Path, RootedPath};
use nfd_serve::{Command, Handler, Response};

use crate::session::Session;

/// Cap on distinct shared closure caches the registry keeps pooled;
/// past it, entries no resident tenant holds are dropped first.
const SHARED_CACHE_POOL_CAP: usize = 32;

/// Tuning for the registry side of the server (the transport side is
/// [`nfd_serve::ServerConfig`]).
#[derive(Clone, Debug)]
pub struct RegistryConfig {
    /// Resident-session cap; loading past it evicts the LRU tenant.
    pub max_resident: usize,
    /// Work-unit quota a tenant starts with (`None` = unmetered).
    pub default_quota: Option<u64>,
    /// Per-query budget counters ([`Budget::limited`]); `None` uses
    /// [`Budget::standard`]. Also governs session compilation and the
    /// resident engine serving `CLOSURE`/`KEYS`.
    pub query_budget: Option<u64>,
    /// Wall-clock deadline per `IMPLIES`/`BATCH` query (ms; 0 = none).
    pub request_timeout_ms: u64,
    /// Concurrent read workers per resident tenant. `1` is the
    /// sequential reference mode (per-query engine rebuild, exactly the
    /// historical daemon); `>= 2` serves reads concurrently from the
    /// resident compiled engine and runs `BATCH` goals at this thread
    /// count; `0` means all available parallelism.
    pub workers: usize,
}

impl Default for RegistryConfig {
    fn default() -> RegistryConfig {
        RegistryConfig {
            max_resident: 8,
            default_quota: None,
            query_budget: None,
            request_timeout_ms: 30_000,
            workers: 1,
        }
    }
}

/// A read-only query shipped to a tenant's epoch pool. Mutations do not
/// appear here: they build the next epoch instead (see
/// [`Registry::run_write`]).
enum Query {
    Implies { goal: String },
    Batch { goals: String },
    Closure { base: String, lhs: Option<String> },
    Keys { relation: String },
    Snapshot { path: String },
}

struct Request {
    query: Query,
    budget: Budget,
    reply: mpsc::Sender<Reply>,
}

struct Reply {
    response: Response,
    /// Work units to charge against the tenant quota.
    cost: u64,
}

/// Work an epoch's reader pool drains: queries, plus the freeze request
/// the write path uses to fork the next epoch off the current one.
enum Work {
    Query(Request),
    Freeze(mpsc::Sender<Box<nfd_snap::Snapshot>>),
}

/// The registry's handle on one live epoch: the work channel, the
/// queue-depth gauge, and the closure cache the epoch serves from (held
/// here so STATS can read it without a channel round trip).
struct EpochHandle {
    tx: mpsc::Sender<Work>,
    depth: Arc<AtomicU64>,
    cache: Arc<ClosureCache>,
}

/// One resident tenant: its current epoch, quota state, the write gate
/// serializing its mutations, and the epoch threads still draining.
/// The `Vec<Tenant>` in [`Registry`] is kept in most-recently-used
/// order, front first — that ordering *is* the LRU policy.
struct Tenant {
    name: String,
    epoch: Option<EpochHandle>,
    quota: Option<u64>,
    /// Serializes ADDDEP/DROPDEP on this tenant; readers never take it.
    write_gate: Arc<Mutex<()>>,
    /// The current epoch's thread plus superseded epochs still draining
    /// in-flight readers. Reaped opportunistically, joined on retire.
    threads: Vec<JoinHandle<()>>,
}

impl Tenant {
    /// Drops finished epoch threads (already drained; join is a no-op
    /// we skip by detaching). Called under the registry lock — cheap.
    fn reap(&mut self) {
        self.threads.retain(|t| !t.is_finished());
    }

    /// Hangs up the current epoch's channel and joins every epoch
    /// thread. Joining may wait for an in-flight query on another
    /// connection to finish — that is the drain guarantee, not a bug.
    fn retire(mut self) {
        self.epoch.take();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Tenant {
    fn drop(&mut self) {
        // `retire` already took both; this path covers tenants dropped
        // without an explicit retire (e.g. an unwinding test).
        self.epoch.take();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[derive(Debug, Default)]
struct RegistryCounters {
    loads: AtomicU64,
    reloads: AtomicU64,
    evicted: AtomicU64,
    evicted_lru: AtomicU64,
    queries: AtomicU64,
    quota_denials: AtomicU64,
    worker_failures: AtomicU64,
    /// `SNAPSHOT` verbs that wrote an image to disk.
    snapshots_written: AtomicU64,
    /// `RESTORE` verbs answered from a bit-identical thaw.
    restores_ok: AtomicU64,
    /// `RESTORE` verbs whose image was unusable even for salvage.
    restores_rejected: AtomicU64,
    /// `RESTORE` verbs that degraded to a fresh compile (corrupt or
    /// stale compiled sections with salvageable sources).
    thaw_fallbacks: AtomicU64,
    /// Mutations that built and atomically installed a next epoch.
    epoch_swaps: AtomicU64,
}

/// The key under which tenants may share one closure cache: the literal
/// `(schema source, Σ source, policy)` triple. Keying on full text (not
/// a hash of it) makes accidental cross-schema sharing impossible; the
/// pool map hashes the strings internally anyway. Sound because the
/// daemon compiles every tenant under one fixed build budget and engine
/// builds are deterministic — same key, same saturated pool, same
/// closures (see DESIGN.md §"Read-parallel registry").
type CacheKey = (String, String, String);

/// The multi-tenant session registry; implement [`Handler`] and hand it
/// to [`nfd_serve::Server::bind`].
pub struct Registry {
    cfg: RegistryConfig,
    tenants: Mutex<Vec<Tenant>>,
    shared_caches: Mutex<HashMap<CacheKey, Arc<ClosureCache>>>,
    counters: RegistryCounters,
}

impl Registry {
    /// An empty registry.
    pub fn new(cfg: RegistryConfig) -> Registry {
        Registry {
            cfg,
            tenants: Mutex::new(Vec::new()),
            shared_caches: Mutex::new(HashMap::new()),
            counters: RegistryCounters::default(),
        }
    }

    /// The resolved per-epoch reader count (`0` = all available).
    fn read_workers(&self) -> usize {
        match self.cfg.workers {
            0 => nfd_par::available(),
            n => n,
        }
    }

    /// The budget sessions are *compiled* under and the resident engine
    /// serves `CLOSURE`/`KEYS` with: counters only, never a deadline
    /// (see the module docs for why).
    fn build_budget(&self) -> Budget {
        match self.cfg.query_budget {
            Some(n) => Budget::limited(n),
            None => Budget::standard(),
        }
    }

    /// The budget for one `IMPLIES`/`BATCH` query: configured counters
    /// tightened to the tenant's remaining quota, plus the per-request
    /// deadline. A deadline this close to the wire is what keeps a
    /// pathological goal from holding an admission slot forever.
    fn query_budget(&self, remaining_quota: Option<u64>) -> Budget {
        let budget = match (self.cfg.query_budget, remaining_quota) {
            (None, None) => Budget::standard(),
            (cap, quota) => Budget::limited(cap.unwrap_or(u64::MAX).min(quota.unwrap_or(u64::MAX))),
        };
        if self.cfg.request_timeout_ms > 0 {
            budget.with_timeout_ms(self.cfg.request_timeout_ms)
        } else {
            budget
        }
    }

    /// The shared closure cache for `key`, created on first use. The
    /// pool is bounded: past [`SHARED_CACHE_POOL_CAP`], entries no
    /// resident epoch holds (sole `Arc` here) are dropped first.
    fn shared_cache_for(&self, key: CacheKey) -> Arc<ClosureCache> {
        fail_point!("serve::shared_cache");
        let mut pool = self
            .shared_caches
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if pool.len() >= SHARED_CACHE_POOL_CAP && !pool.contains_key(&key) {
            pool.retain(|_, cache| Arc::strong_count(cache) > 1);
        }
        Arc::clone(pool.entry(key).or_insert_with(|| {
            Arc::new(ClosureCache::with_capacity(DEFAULT_CLOSURE_CACHE_CAPACITY))
        }))
    }

    /// Registers a freshly handshaken tenant: MRU-front insert, reload
    /// bookkeeping, and LRU eviction past the residency cap.
    fn adopt(&self, name: String, epoch: EpochHandle, thread: JoinHandle<()>) {
        let tenant = Tenant {
            name: name.clone(),
            epoch: Some(epoch),
            quota: self.cfg.default_quota,
            write_gate: Arc::new(Mutex::new(())),
            threads: vec![thread],
        };
        let mut retired: Vec<Tenant> = Vec::new();
        {
            let mut tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(pos) = tenants.iter().position(|t| t.name == name) {
                retired.push(tenants.remove(pos));
                self.counters.reloads.fetch_add(1, Ordering::Relaxed);
            } else {
                self.counters.loads.fetch_add(1, Ordering::Relaxed);
            }
            tenants.insert(0, tenant);
            while tenants.len() > self.cfg.max_resident.max(1) {
                if let Some(cold) = tenants.pop() {
                    self.counters.evicted_lru.fetch_add(1, Ordering::Relaxed);
                    retired.push(cold);
                }
            }
        }
        // Join retired epochs outside the lock: an in-flight query on a
        // replaced tenant may still need to finish.
        for tenant in retired {
            tenant.retire();
        }
    }

    fn load(&self, name: String, schema: String, deps: String) -> Response {
        let key: CacheKey = (
            schema.clone(),
            deps.clone(),
            format!("{:?}", EmptySetPolicy::Forbidden),
        );
        let cache = self.shared_cache_for(key);
        let (ready_tx, ready_rx) = mpsc::channel();
        let (tx, rx) = mpsc::channel();
        let budget = self.build_budget();
        let depth = Arc::new(AtomicU64::new(0));
        let epoch = EpochHandle {
            tx,
            depth: Arc::clone(&depth),
            cache: Arc::clone(&cache),
        };
        let workers = self.read_workers();
        let thread = std::thread::spawn(move || {
            load_epoch(schema, deps, budget, cache, workers, depth, rx, ready_tx)
        });
        match ready_rx.recv() {
            Ok(Ok(dep_count)) => {
                self.adopt(name, epoch, thread);
                Response::Ok(format!("loaded deps={dep_count}"))
            }
            Ok(Err(resp)) => {
                drop(epoch);
                let _ = thread.join();
                resp
            }
            Err(_) => {
                // The epoch died before the handshake — nothing was
                // registered, so nothing to evict.
                drop(epoch);
                let _ = thread.join();
                self.counters
                    .worker_failures
                    .fetch_add(1, Ordering::Relaxed);
                Response::Err("session worker died during load".to_string())
            }
        }
    }

    /// `RESTORE <name> <path>`: resurrect a session from a snapshot
    /// file. A clean image thaws without re-running saturation; an image
    /// with corrupt compiled sections but salvageable sources (or one
    /// whose thaw is rejected by replay validation) degrades to a fresh
    /// compile of those sources — a logged fallback, not a failure. Only
    /// an image too damaged to recover the sources answers `ERR`.
    fn restore(&self, name: String, path: String) -> Response {
        // Decode on the connection thread so the shared-cache key (the
        // snapshot's canonical source texts) is known before any epoch
        // spawns; a typed rejection never registers anything.
        let salvaged = match nfd_snap::read_file(std::path::Path::new(&path))
            .and_then(|bytes| nfd_snap::decode_lenient(&bytes))
        {
            Ok(salvaged) => salvaged,
            Err(e) => {
                self.counters
                    .restores_rejected
                    .fetch_add(1, Ordering::Relaxed);
                return Response::Err(format!("restore: {e}"));
            }
        };
        let key: CacheKey = (
            salvaged.snapshot.schema_text.clone(),
            salvaged.snapshot.sigma_text.clone(),
            match crate::snapshot::policy_from_snap(&salvaged.snapshot.policy) {
                Ok(policy) => format!("{policy:?}"),
                Err(e) => {
                    self.counters
                        .restores_rejected
                        .fetch_add(1, Ordering::Relaxed);
                    return Response::Err(format!("restore: policy: {e}"));
                }
            },
        );
        let cache = self.shared_cache_for(key);
        let (ready_tx, ready_rx) = mpsc::channel();
        let (tx, rx) = mpsc::channel();
        let budget = self.build_budget();
        let depth = Arc::new(AtomicU64::new(0));
        let epoch = EpochHandle {
            tx,
            depth: Arc::clone(&depth),
            cache: Arc::clone(&cache),
        };
        let workers = self.read_workers();
        let degraded = salvaged.degraded;
        let snap = Box::new(salvaged.snapshot);
        let thread = std::thread::spawn(move || {
            restore_epoch(snap, degraded, budget, cache, workers, depth, rx, ready_tx)
        });
        match ready_rx.recv() {
            Ok(Ok((dep_count, fallback))) => {
                self.adopt(name, epoch, thread);
                if fallback {
                    self.counters.thaw_fallbacks.fetch_add(1, Ordering::Relaxed);
                    Response::Ok(format!(
                        "restored deps={dep_count} (thaw rejected; compiled fresh)"
                    ))
                } else {
                    self.counters.restores_ok.fetch_add(1, Ordering::Relaxed);
                    Response::Ok(format!("restored deps={dep_count} (thawed)"))
                }
            }
            Ok(Err(resp)) => {
                self.counters
                    .restores_rejected
                    .fetch_add(1, Ordering::Relaxed);
                drop(epoch);
                let _ = thread.join();
                resp
            }
            Err(_) => {
                drop(epoch);
                let _ = thread.join();
                self.counters
                    .restores_rejected
                    .fetch_add(1, Ordering::Relaxed);
                self.counters
                    .worker_failures
                    .fetch_add(1, Ordering::Relaxed);
                Response::Err("session worker died during restore".to_string())
            }
        }
    }

    fn run_query(&self, name: &str, query: Query) -> Response {
        fail_point!(
            "serve::tenant_query",
            Response::Exhausted("injected fault (failpoint)".to_string())
        );
        let (tx, depth, remaining) = {
            let mut tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
            let Some(pos) = tenants.iter().position(|t| t.name == name) else {
                return Response::Err(format!("unknown tenant `{name}` (LOAD it first)"));
            };
            if tenants[pos].quota == Some(0) {
                self.counters.quota_denials.fetch_add(1, Ordering::Relaxed);
                return Response::Exhausted(format!("tenant `{name}` quota exhausted"));
            }
            // Touch for LRU: most-recently-used lives at the front.
            let mut tenant = tenants.remove(pos);
            tenant.reap();
            let handle = (
                tenant.epoch.as_ref().map(|e| e.tx.clone()),
                tenant.epoch.as_ref().map(|e| Arc::clone(&e.depth)),
                tenant.quota,
            );
            tenants.insert(0, tenant);
            handle
        };
        let Some(tx) = tx else {
            return self.worker_failed(name);
        };
        let budget = self.query_budget(remaining);
        let (reply_tx, reply_rx) = mpsc::channel();
        let request = Request {
            query,
            budget,
            reply: reply_tx,
        };
        if let Some(depth) = &depth {
            depth.fetch_add(1, Ordering::Relaxed);
        }
        if tx.send(Work::Query(request)).is_err() {
            if let Some(depth) = &depth {
                depth.fetch_sub(1, Ordering::Relaxed);
            }
            return self.worker_failed(name);
        }
        match reply_rx.recv() {
            Ok(reply) => {
                self.counters.queries.fetch_add(1, Ordering::Relaxed);
                self.charge(name, reply.cost);
                reply.response
            }
            Err(_) => self.worker_failed(name),
        }
    }

    /// ADDDEP/DROPDEP: freeze the current epoch, build the next one off
    /// to the side (thaw + delta, under a private closure cache), and
    /// atomically swap it in. Readers in flight finish on the old
    /// epoch; any failure — or the armed `serve::epoch_swap` failpoint
    /// — before the swap leaves the old epoch serving untouched.
    fn run_write(&self, name: &str, verb: &'static str, dep: String) -> Response {
        fail_point!(
            "serve::tenant_query",
            Response::Exhausted("injected fault (failpoint)".to_string())
        );
        // Quota gate + LRU touch, as for reads; then take the tenant's
        // write gate so concurrent mutations serialize per tenant.
        let gate = {
            let mut tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
            let Some(pos) = tenants.iter().position(|t| t.name == name) else {
                return Response::Err(format!("unknown tenant `{name}` (LOAD it first)"));
            };
            if tenants[pos].quota == Some(0) {
                self.counters.quota_denials.fetch_add(1, Ordering::Relaxed);
                return Response::Exhausted(format!("tenant `{name}` quota exhausted"));
            }
            let mut tenant = tenants.remove(pos);
            tenant.reap();
            let gate = Arc::clone(&tenant.write_gate);
            tenants.insert(0, tenant);
            gate
        };
        let _write = gate.lock().unwrap_or_else(PoisonError::into_inner);
        // Re-read the *current* epoch under the gate: a racing writer
        // may have swapped since the lookup above.
        let tx = {
            let tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
            match tenants
                .iter()
                .find(|t| t.name == name && Arc::ptr_eq(&t.write_gate, &gate))
            {
                Some(t) => match &t.epoch {
                    Some(e) => e.tx.clone(),
                    None => return self.worker_failed(name),
                },
                None => {
                    return Response::Err(format!(
                        "tenant `{name}` changed during mutation; not applied"
                    ))
                }
            }
        };
        let (snap_tx, snap_rx) = mpsc::channel();
        if tx.send(Work::Freeze(snap_tx)).is_err() {
            return self.worker_failed(name);
        }
        let snapshot = match snap_rx.recv() {
            Ok(snap) => snap,
            Err(_) => return self.worker_failed(name),
        };
        let budget = self.build_budget();
        let workers = self.read_workers();
        let depth = Arc::new(AtomicU64::new(0));
        // The next epoch's Σ diverges from whatever this tenant shared
        // before, so it gets a *private* cache — writing its closures
        // into the shared pool would poison same-key tenants.
        let cache = Arc::new(ClosureCache::with_capacity(DEFAULT_CLOSURE_CACHE_CAPACITY));
        let (ready_tx, ready_rx) = mpsc::channel();
        let (next_tx, next_rx) = mpsc::channel();
        let op_depth = Arc::clone(&depth);
        let op_cache = Arc::clone(&cache);
        let thread = std::thread::spawn(move || {
            mutate_epoch(
                snapshot, verb, dep, budget, op_cache, workers, op_depth, next_rx, ready_tx,
            )
        });
        match ready_rx.recv() {
            Ok(Ok(reports)) => {
                // The armed mid-swap failpoint: the next epoch is built
                // and ready, the old one still installed. A panic here
                // unwinds past `next_tx` and `thread`, hanging up the
                // next epoch — which exits before serving anything —
                // while the old epoch keeps serving (proved by
                // tests/serve_chaos.rs).
                fail_point!(
                    "serve::epoch_swap",
                    Response::Exhausted("injected fault (failpoint)".to_string())
                );
                let epoch = EpochHandle {
                    tx: next_tx,
                    depth,
                    cache,
                };
                let swapped = {
                    let mut tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
                    match tenants
                        .iter_mut()
                        .find(|t| t.name == name && Arc::ptr_eq(&t.write_gate, &gate))
                    {
                        Some(t) => {
                            let old = t.epoch.replace(epoch);
                            t.threads.push(thread);
                            // Hang up the superseded epoch inside the
                            // lock (cheap — just a sender drop); it
                            // drains its in-flight queue in background.
                            drop(old);
                            true
                        }
                        None => false,
                    }
                };
                if !swapped {
                    return Response::Err(format!(
                        "tenant `{name}` changed during mutation; not applied"
                    ));
                }
                self.counters.epoch_swaps.fetch_add(1, Ordering::Relaxed);
                let reply = mutation_reply(verb, &reports);
                self.counters.queries.fetch_add(1, Ordering::Relaxed);
                self.charge(name, reply.cost);
                reply.response
            }
            Ok(Err(resp)) => {
                // Typed input failure (bad dep, not in Σ, exhausted):
                // the next epoch never started; the old one serves on.
                drop(next_tx);
                let _ = thread.join();
                self.counters.queries.fetch_add(1, Ordering::Relaxed);
                self.charge(name, 1);
                resp
            }
            Err(_) => {
                drop(next_tx);
                let _ = thread.join();
                self.counters
                    .worker_failures
                    .fetch_add(1, Ordering::Relaxed);
                Response::Err(format!(
                    "tenant `{name}` mutation worker died; previous epoch keeps serving"
                ))
            }
        }
    }

    /// A tenant's epoch hung up mid-request: evict it so the registry
    /// converges back to a healthy state, and say so honestly.
    fn worker_failed(&self, name: &str) -> Response {
        self.counters
            .worker_failures
            .fetch_add(1, Ordering::Relaxed);
        let dead = {
            let mut tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
            tenants
                .iter()
                .position(|t| t.name == name)
                .map(|pos| tenants.remove(pos))
        };
        if let Some(tenant) = dead {
            self.counters.evicted.fetch_add(1, Ordering::Relaxed);
            tenant.retire();
        }
        Response::Err(format!("tenant `{name}` worker failed; session evicted"))
    }

    fn charge(&self, name: &str, cost: u64) {
        let mut tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(tenant) = tenants.iter_mut().find(|t| t.name == name) {
            if let Some(quota) = tenant.quota.as_mut() {
                *quota = quota.saturating_sub(cost.max(1));
            }
        }
    }

    fn set_quota(&self, name: &str, units: u64) -> Response {
        let mut tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
        match tenants.iter_mut().find(|t| t.name == name) {
            Some(tenant) => {
                tenant.quota = Some(units);
                Response::Ok(format!("quota={units}"))
            }
            None => Response::Err(format!("unknown tenant `{name}` (LOAD it first)")),
        }
    }

    fn evict(&self, name: &str) -> Response {
        let gone = {
            let mut tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
            tenants
                .iter()
                .position(|t| t.name == name)
                .map(|pos| tenants.remove(pos))
        };
        match gone {
            Some(tenant) => {
                self.counters.evicted.fetch_add(1, Ordering::Relaxed);
                tenant.retire();
                Response::Ok("evicted".to_string())
            }
            None => Response::Err(format!("unknown tenant `{name}`")),
        }
    }
}

impl Handler for Registry {
    fn handle(&self, cmd: Command) -> Response {
        match cmd {
            Command::Load { name, schema, deps } => self.load(name, schema, deps),
            Command::Implies { name, goal } => self.run_query(&name, Query::Implies { goal }),
            Command::Batch { name, goals } => self.run_query(&name, Query::Batch { goals }),
            Command::Closure { name, base, lhs } => {
                self.run_query(&name, Query::Closure { base, lhs })
            }
            Command::Keys { name, relation } => self.run_query(&name, Query::Keys { relation }),
            Command::AddDep { name, dep } => self.run_write(&name, "added", dep),
            Command::DropDep { name, dep } => self.run_write(&name, "dropped", dep),
            Command::Snapshot { name, path } => {
                let response = self.run_query(&name, Query::Snapshot { path });
                if response.is_ok() {
                    self.counters
                        .snapshots_written
                        .fetch_add(1, Ordering::Relaxed);
                }
                response
            }
            Command::Restore { name, path } => self.restore(name, path),
            Command::Quota { name, units } => self.set_quota(&name, units),
            Command::Evict { name } => self.evict(&name),
            // The server answers these itself; reaching here means a
            // custom harness skipped it — answer something sane.
            Command::Stats => Response::Ok(self.stats_line()),
            Command::Ping => Response::Ok("pong".to_string()),
            Command::Shutdown => Response::Ok("draining".to_string()),
        }
    }

    fn stats_line(&self) -> String {
        let (resident, tenant_cache, queue_depth, closure) = {
            let tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
            let resident: Vec<String> = tenants.iter().map(|t| t.name.clone()).collect();
            let mut per_tenant: Vec<String> = Vec::new();
            let mut depth = 0u64;
            // Sum hit/miss over *distinct* caches: tenants sharing one
            // pool entry must not double-count it.
            let mut seen: Vec<*const ClosureCache> = Vec::new();
            let mut hits = 0u64;
            let mut misses = 0u64;
            for t in tenants.iter() {
                if let Some(e) = &t.epoch {
                    let stats = e.cache.stats();
                    per_tenant.push(format!("{}:{}/{}", t.name, stats.hits, stats.misses));
                    depth += e.depth.load(Ordering::Relaxed);
                    let ptr = Arc::as_ptr(&e.cache);
                    if !seen.contains(&ptr) {
                        seen.push(ptr);
                        hits += stats.hits;
                        misses += stats.misses;
                    }
                }
            }
            (resident, per_tenant, depth, (hits, misses))
        };
        let (pool_len, shared_hits, shared_misses) = {
            let pool = self
                .shared_caches
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let mut hits = 0u64;
            let mut misses = 0u64;
            for cache in pool.values() {
                let stats = cache.stats();
                hits += stats.hits;
                misses += stats.misses;
            }
            (pool.len(), hits, misses)
        };
        let c = &self.counters;
        format!(
            "sessions={} resident=[{}] loads={} reloads={} evicted={} evicted_lru={} queries={} quota_denials={} worker_failures={} snapshots_written={} restores_ok={} restores_rejected={} thaw_fallbacks={} workers={} epoch_swaps={} worker_queue_depth={} closure_hits={} closure_misses={} shared_caches={} shared_cache_hits={} shared_cache_misses={} tenant_cache=[{}]",
            resident.len(),
            resident.join(","),
            c.loads.load(Ordering::Relaxed),
            c.reloads.load(Ordering::Relaxed),
            c.evicted.load(Ordering::Relaxed),
            c.evicted_lru.load(Ordering::Relaxed),
            c.queries.load(Ordering::Relaxed),
            c.quota_denials.load(Ordering::Relaxed),
            c.worker_failures.load(Ordering::Relaxed),
            c.snapshots_written.load(Ordering::Relaxed),
            c.restores_ok.load(Ordering::Relaxed),
            c.restores_rejected.load(Ordering::Relaxed),
            c.thaw_fallbacks.load(Ordering::Relaxed),
            self.read_workers(),
            c.epoch_swaps.load(Ordering::Relaxed),
            queue_depth,
            closure.0,
            closure.1,
            pool_len,
            shared_hits,
            shared_misses,
            tenant_cache.join(","),
        )
    }

    fn on_shutdown(&self) {
        let tenants =
            std::mem::take(&mut *self.tenants.lock().unwrap_or_else(PoisonError::into_inner));
        for tenant in tenants {
            tenant.retire();
        }
    }
}

/// The epoch thread behind `LOAD`: owns the compiled `(Schema, Σ,
/// Session)` on its stack and runs the reader pool until every channel
/// sender is dropped (eviction, reload, swap, or shutdown). This is
/// what makes borrowed `Session<'s>` residency safe: the borrow lives
/// inside one thread's stack frame.
#[allow(clippy::too_many_arguments)]
fn load_epoch(
    schema_src: String,
    deps_src: String,
    budget: Budget,
    cache: Arc<ClosureCache>,
    workers: usize,
    depth: Arc<AtomicU64>,
    rx: mpsc::Receiver<Work>,
    ready: mpsc::Sender<Result<usize, Response>>,
) {
    let schema = match Schema::parse(&schema_src) {
        Ok(schema) => schema,
        Err(e) => {
            let _ = ready.send(Err(Response::Err(format!("schema: {e}"))));
            return;
        }
    };
    let sigma = match nfd_core::nfd::parse_set(&schema, &deps_src) {
        Ok(sigma) => sigma,
        Err(e) => {
            let _ = ready.send(Err(Response::Err(format!("deps: {e}"))));
            return;
        }
    };
    let session = match Session::with_tiers_cached(
        &schema,
        &sigma,
        EmptySetPolicy::Forbidden,
        budget,
        TierPreference::Auto,
        cache,
    ) {
        Ok(session) => session,
        Err(e) => {
            let _ = ready.send(Err(core_error_response(e)));
            return;
        }
    };
    if ready.send(Ok(sigma.len())).is_err() {
        return;
    }
    epoch_loop(&session, &schema, workers, &depth, rx);
}

/// The epoch thread behind `RESTORE`: thaws the (pre-decoded) snapshot
/// when its compiled sections are intact, and degrades to a fresh
/// compile of the salvaged sources otherwise. The ready handshake
/// reports `(dep_count, fell_back_to_fresh_compile)` so the registry
/// keeps honest counters.
#[allow(clippy::too_many_arguments)]
fn restore_epoch(
    snap: Box<nfd_snap::Snapshot>,
    degraded: bool,
    budget: Budget,
    cache: Arc<ClosureCache>,
    workers: usize,
    depth: Arc<AtomicU64>,
    rx: mpsc::Receiver<Work>,
    ready: mpsc::Sender<Result<(usize, bool), Response>>,
) {
    let schema = match Schema::parse(&snap.schema_text) {
        Ok(schema) => schema,
        Err(e) => {
            let _ = ready.send(Err(Response::Err(format!("restore: schema: {e}"))));
            return;
        }
    };
    let sigma = match nfd_core::nfd::parse_set(&schema, &snap.sigma_text) {
        Ok(sigma) => sigma,
        Err(e) => {
            let _ = ready.send(Err(Response::Err(format!("restore: deps: {e}"))));
            return;
        }
    };
    let policy = match crate::snapshot::policy_from_snap(&snap.policy) {
        Ok(policy) => policy,
        Err(e) => {
            let _ = ready.send(Err(Response::Err(format!("restore: policy: {e}"))));
            return;
        }
    };
    // Warm path first: a clean image replays without re-running
    // saturation. Any thaw rejection — truncated compiled sections in a
    // lenient salvage, or replay validation refusing the pools — falls
    // back to compiling the salvaged sources fresh.
    let mut fallback = degraded;
    let thawed = if fallback {
        None
    } else {
        match Session::thaw_cached(
            &schema,
            &sigma,
            policy.clone(),
            budget.clone(),
            TierPreference::Auto,
            &snap,
            Arc::clone(&cache),
        ) {
            Ok(session) => Some(session),
            Err(_) => {
                fallback = true;
                None
            }
        }
    };
    let session = match thawed {
        Some(session) => session,
        None => match Session::with_tiers_cached(
            &schema,
            &sigma,
            policy,
            budget,
            TierPreference::Auto,
            cache,
        ) {
            Ok(session) => session,
            Err(e) => {
                let _ = ready.send(Err(core_error_response(e)));
                return;
            }
        },
    };
    if ready.send(Ok((sigma.len(), fallback))).is_err() {
        return;
    }
    epoch_loop(&session, &schema, workers, &depth, rx);
}

/// The next-epoch thread behind ADDDEP/DROPDEP: rebuild the tenant from
/// the current epoch's freeze (thaw; fresh compile as a fallback),
/// apply the delta, and — only if the delta succeeded — handshake ready
/// and start serving. The closure cache is deliberately *private*: the
/// mutated Σ has diverged from whatever shared pool entry the previous
/// epoch used, and `Session::thaw` already imports the frozen entries
/// before `add_deps`/`remove_deps` invalidate the touched relation.
#[allow(clippy::too_many_arguments)]
fn mutate_epoch(
    snap: Box<nfd_snap::Snapshot>,
    verb: &'static str,
    dep: String,
    budget: Budget,
    cache: Arc<ClosureCache>,
    workers: usize,
    depth: Arc<AtomicU64>,
    rx: mpsc::Receiver<Work>,
    ready: mpsc::Sender<Result<Vec<nfd_core::DeltaReport>, Response>>,
) {
    let schema = match Schema::parse(&snap.schema_text) {
        Ok(schema) => schema,
        Err(e) => {
            let _ = ready.send(Err(Response::Err(format!("mutate: schema: {e}"))));
            return;
        }
    };
    let sigma = match nfd_core::nfd::parse_set(&schema, &snap.sigma_text) {
        Ok(sigma) => sigma,
        Err(e) => {
            let _ = ready.send(Err(Response::Err(format!("mutate: deps: {e}"))));
            return;
        }
    };
    let policy = match crate::snapshot::policy_from_snap(&snap.policy) {
        Ok(policy) => policy,
        Err(e) => {
            let _ = ready.send(Err(Response::Err(format!("mutate: policy: {e}"))));
            return;
        }
    };
    let nfd = match Nfd::parse(&schema, &dep) {
        Ok(nfd) => nfd,
        Err(e) => {
            let _ = ready.send(Err(core_error_response(e)));
            return;
        }
    };
    // Build + mutate under an unwind boundary: a panic while applying
    // the delta (e.g. an armed `delta::retract` fault) answers a typed
    // `contained panic` ERR — exactly as the in-place actor did — and
    // the old epoch keeps serving untouched.
    let built = catch_unwind(AssertUnwindSafe(
        || -> Result<(Session<'_>, Vec<nfd_core::DeltaReport>), Response> {
            // The freeze came from a live session moments ago, so the
            // thaw is expected to succeed; the fresh-compile fallback
            // keeps a mutation from failing on a replay technicality.
            let mut session = match Session::thaw_cached(
                &schema,
                &sigma,
                policy.clone(),
                budget.clone(),
                TierPreference::Auto,
                &snap,
                Arc::clone(&cache),
            ) {
                Ok(session) => session,
                Err(_) => Session::with_tiers_cached(
                    &schema,
                    &sigma,
                    policy.clone(),
                    budget.clone(),
                    TierPreference::Auto,
                    Arc::clone(&cache),
                )
                .map_err(core_error_response)?,
            };
            let reports = match verb {
                "added" => session.add_deps(std::slice::from_ref(&nfd)),
                _ => session.remove_deps(std::slice::from_ref(&nfd)),
            }
            .map_err(core_error_response)?;
            Ok((session, reports))
        },
    ));
    match built {
        Ok(Ok((session, reports))) => {
            if ready.send(Ok(reports)).is_err() {
                return;
            }
            epoch_loop(&session, &schema, workers, &depth, rx);
        }
        Ok(Err(resp)) => {
            let _ = ready.send(Err(resp));
        }
        Err(payload) => {
            let _ = ready.send(Err(Response::Err(format!(
                "contained panic: {}",
                panic_text(payload.as_ref())
            ))));
        }
    }
}

/// The reader pool every epoch runs: `workers` threads drain one shared
/// channel until every sender is dropped. With one worker the loop runs
/// inline on the epoch thread — exactly the historical sequential
/// actor. Per-query panics are contained so the warm session survives a
/// poisoned request; queries answer from the *resident* engine when the
/// pool is parallel (`workers >= 2`) and via the historical per-query
/// rebuild when sequential, keeping the 1-worker daemon bit-identical
/// to its predecessor.
fn epoch_loop(
    session: &Session<'_>,
    schema: &Schema,
    workers: usize,
    depth: &AtomicU64,
    rx: mpsc::Receiver<Work>,
) {
    let resident = workers >= 2;
    if !resident {
        while let Ok(work) = rx.recv() {
            serve_one(session, schema, work, depth, false, 1);
        }
        return;
    }
    let shared_rx = Mutex::new(rx);
    nfd_par::scoped_workers(workers, |_| loop {
        // Hold the receiver lock only to take one work item; processing
        // happens unlocked, so workers genuinely serve concurrently.
        let work = match shared_rx
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .recv()
        {
            Ok(work) => work,
            Err(_) => break,
        };
        serve_one(session, schema, work, depth, true, workers);
    });
}

/// One unit of epoch work, with the inner unwind boundary: a poisoned
/// query answers ERR and the warm session keeps serving (the server's
/// per-request boundary would otherwise only save the connection, not
/// the tenant).
fn serve_one(
    session: &Session<'_>,
    schema: &Schema,
    work: Work,
    depth: &AtomicU64,
    resident: bool,
    batch_threads: usize,
) {
    match work {
        Work::Freeze(reply) => {
            let snap = catch_unwind(AssertUnwindSafe(|| Box::new(session.freeze())));
            if let Ok(snap) = snap {
                let _ = reply.send(snap);
            }
            // A panicked freeze drops `reply`; the write path sees the
            // hangup and reports the worker failure.
        }
        Work::Query(request) => {
            depth.fetch_sub(1, Ordering::Relaxed);
            let reply = catch_unwind(AssertUnwindSafe(|| {
                answer(
                    session,
                    schema,
                    request.query,
                    &request.budget,
                    resident,
                    batch_threads,
                )
            }))
            .unwrap_or_else(|payload| Reply {
                response: Response::Err(format!(
                    "contained panic: {}",
                    panic_text(payload.as_ref())
                )),
                cost: 1,
            });
            let _ = request.reply.send(reply);
        }
    }
}

fn answer(
    session: &Session<'_>,
    schema: &Schema,
    query: Query,
    budget: &Budget,
    resident: bool,
    batch_threads: usize,
) -> Reply {
    match query {
        Query::Implies { goal } => {
            let goal = match Nfd::parse(schema, &goal) {
                Ok(goal) => goal,
                Err(e) => return input_error(e),
            };
            let decision = if resident {
                session.implies_with_resident(&goal, budget)
            } else {
                session.implies_with(&goal, budget)
            };
            match decision {
                Ok(decision) => {
                    let cost = decision_cost(&decision);
                    Reply {
                        response: verdict_response(&decision.verdict),
                        cost,
                    }
                }
                Err(e) => input_error(e),
            }
        }
        Query::Batch { goals } => {
            let goals = match nfd_core::nfd::parse_set(schema, &goals) {
                Ok(goals) => goals,
                Err(e) => return input_error(e),
            };
            if goals.is_empty() {
                return Reply {
                    response: Response::Err("BATCH: empty goal set".to_string()),
                    cost: 1,
                };
            }
            let batch = if resident {
                session.implies_batch_resident(&goals, budget, batch_threads)
            } else {
                session.implies_batch(&goals, budget, 1)
            };
            match batch {
                Ok(batch) => {
                    let statuses: Vec<&str> = batch
                        .decisions
                        .iter()
                        .map(|d| match d {
                            Ok(d) => match d.verdict {
                                Verdict::Implied => "implied",
                                Verdict::NotImplied => "not-implied",
                                Verdict::Exhausted(_) => "exhausted",
                            },
                            Err(_) => "failed",
                        })
                        .collect();
                    let cost = batch
                        .decisions
                        .iter()
                        .map(|d| d.as_ref().map(decision_cost).unwrap_or(1))
                        .sum::<u64>()
                        .max(1);
                    Reply {
                        response: Response::Ok(statuses.join(",")),
                        cost,
                    }
                }
                Err(e) => input_error(e),
            }
        }
        Query::Closure { base, lhs } => {
            let base = match RootedPath::parse(&base) {
                Ok(base) => base,
                Err(e) => {
                    return Reply {
                        response: Response::Err(format!("base: {e}")),
                        cost: 1,
                    }
                }
            };
            let lhs: Vec<Path> = match lhs
                .as_deref()
                .unwrap_or("")
                .split(',')
                .filter(|s| !s.trim().is_empty())
                .map(|s| Path::parse(s.trim()))
                .collect()
            {
                Ok(lhs) => lhs,
                Err(e) => {
                    return Reply {
                        response: Response::Err(format!("lhs: {e}")),
                        cost: 1,
                    }
                }
            };
            match session.closure(&base, &lhs) {
                Ok(closure) => Reply {
                    response: Response::Ok(
                        closure
                            .iter()
                            .map(RootedPath::to_string)
                            .collect::<Vec<_>>()
                            .join(" "),
                    ),
                    cost: 1,
                },
                Err(e) => input_error(e),
            }
        }
        Query::Snapshot { path } => {
            let image = session.freeze();
            let bytes = nfd_snap::encode(&image);
            match nfd_snap::write_atomic(std::path::Path::new(&path), &bytes) {
                // Charged by image size: persisting a bigger compiled
                // session is more of the tenant's work made durable.
                Ok(()) => Reply {
                    response: Response::Ok(format!("snapshot bytes={} path={path}", bytes.len())),
                    cost: (bytes.len() as u64 / 1024).max(1),
                },
                Err(e) => Reply {
                    response: Response::Err(format!("snapshot: {e}")),
                    cost: 1,
                },
            }
        }
        Query::Keys { relation } => match session.candidate_keys(Label::new(&relation), 4) {
            Ok(keys) if keys.is_empty() => Reply {
                response: Response::Ok("(no candidate keys of size <= 4)".to_string()),
                cost: 1,
            },
            Ok(keys) => Reply {
                response: Response::Ok(
                    keys.iter()
                        .map(|k| {
                            format!(
                                "{{{}}}",
                                k.iter().map(Path::to_string).collect::<Vec<_>>().join(",")
                            )
                        })
                        .collect::<Vec<_>>()
                        .join(" "),
                ),
                cost: 1,
            },
            Err(e) => input_error(e),
        },
    }
}

/// The wire form of a three-valued verdict.
fn verdict_response(verdict: &Verdict) -> Response {
    match verdict {
        Verdict::Implied => Response::Ok("implied".to_string()),
        Verdict::NotImplied => Response::Ok("not-implied".to_string()),
        Verdict::Exhausted(report) => Response::Exhausted(report.to_string()),
    }
}

/// The wire form of a Σ mutation, charged the rebuilt pool size: a
/// delta mutation replays the touched relation's saturation, so the
/// fresh pool length is the work the tenant actually bought.
fn mutation_reply(verb: &str, reports: &[nfd_core::DeltaReport]) -> Reply {
    let line: Vec<String> = reports
        .iter()
        .map(|r| {
            format!(
                "{verb} relation={} pool={}->{} overdeleted={}",
                r.relation, r.pool_before, r.pool_after, r.overdeleted
            )
        })
        .collect();
    let cost = reports
        .iter()
        .map(|r| r.pool_after as u64)
        .sum::<u64>()
        .max(1);
    Reply {
        response: Response::Ok(line.join("; ")),
        cost,
    }
}

/// Work units one decision costs its tenant: the largest decider
/// counter in the cascade log, floored at 1 so even cache hits meter.
fn decision_cost(decision: &crate::session::Decision) -> u64 {
    decision
        .attempts
        .iter()
        .filter_map(|a| a.cost)
        .max()
        .unwrap_or(0)
        .max(1)
}

fn input_error(e: CoreError) -> Reply {
    let response = core_error_response(e);
    Reply { response, cost: 1 }
}

fn core_error_response(e: CoreError) -> Response {
    match e {
        CoreError::Exhausted(report) => Response::Exhausted(report.to_string()),
        other => Response::Err(other.to_string()),
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "unknown panic payload"
    }
}
#[cfg(test)]
mod tests {
    use super::*;

    const SCHEMA: &str = "R : {<A: int, B: int, C: int>};";
    const DEPS: &str = "R:[A -> B]; R:[B -> C];";

    fn cmd(line: &str) -> Command {
        Command::parse(line).expect("test command parses")
    }

    fn load(reg: &Registry, name: &str) -> Response {
        reg.handle(cmd(&format!("LOAD {name} {SCHEMA} | {DEPS}")))
    }

    #[test]
    fn load_then_query_round_trip() {
        let reg = Registry::new(RegistryConfig::default());
        assert_eq!(load(&reg, "t"), Response::Ok("loaded deps=2".to_string()));
        assert_eq!(
            reg.handle(cmd("IMPLIES t R:[A -> C]")),
            Response::Ok("implied".to_string())
        );
        assert_eq!(
            reg.handle(cmd("IMPLIES t R:[C -> A]")),
            Response::Ok("not-implied".to_string())
        );
        assert_eq!(
            reg.handle(cmd("BATCH t R:[A -> C]; R:[C -> A];")),
            Response::Ok("implied,not-implied".to_string())
        );
        let keys = reg.handle(cmd("KEYS t R"));
        assert!(
            matches!(&keys, Response::Ok(p) if p.contains("{A}")),
            "{keys:?}"
        );
        let closure = reg.handle(cmd("CLOSURE t R A"));
        assert!(
            matches!(&closure, Response::Ok(p) if p.contains("R:B") && p.contains("R:C")),
            "{closure:?}"
        );
        reg.on_shutdown();
    }

    #[test]
    fn unknown_tenant_and_bad_sources_answer_err() {
        let reg = Registry::new(RegistryConfig::default());
        assert!(matches!(
            reg.handle(cmd("IMPLIES ghost R:[A -> B]")),
            Response::Err(msg) if msg.contains("unknown tenant")
        ));
        assert!(matches!(
            reg.handle(cmd("LOAD bad not-a-schema | whatever")),
            Response::Err(msg) if msg.starts_with("schema:")
        ));
        assert!(matches!(
            reg.handle(cmd(&format!("LOAD bad {SCHEMA} | not-deps"))),
            Response::Err(msg) if msg.starts_with("deps:")
        ));
        // A malformed goal against a healthy tenant: ERR, and the
        // session keeps answering.
        assert!(load(&reg, "t").is_ok());
        assert!(matches!(
            reg.handle(cmd("IMPLIES t R:[Nope -> B]")),
            Response::Err(_)
        ));
        assert_eq!(
            reg.handle(cmd("IMPLIES t R:[A -> B]")),
            Response::Ok("implied".to_string())
        );
        reg.on_shutdown();
    }

    #[test]
    fn adddep_dropdep_mutate_the_resident_session() {
        let reg = Registry::new(RegistryConfig::default());
        assert!(load(&reg, "t").is_ok());
        assert_eq!(
            reg.handle(cmd("IMPLIES t R:[C -> A]")),
            Response::Ok("not-implied".to_string())
        );
        let resp = reg.handle(cmd("ADDDEP t R:[C -> A]"));
        assert!(
            matches!(&resp, Response::Ok(msg) if msg.starts_with("added relation=R")),
            "{resp:?}"
        );
        assert_eq!(
            reg.handle(cmd("IMPLIES t R:[C -> A]")),
            Response::Ok("implied".to_string())
        );
        let resp = reg.handle(cmd("DROPDEP t R:[C -> A]"));
        assert!(
            matches!(&resp, Response::Ok(msg) if msg.starts_with("dropped relation=R")),
            "{resp:?}"
        );
        assert_eq!(
            reg.handle(cmd("IMPLIES t R:[C -> A]")),
            Response::Ok("not-implied".to_string())
        );
        // Retracting an NFD that is not in Σ answers ERR and leaves the
        // warm session serving.
        assert!(matches!(
            reg.handle(cmd("DROPDEP t R:[C -> A]")),
            Response::Err(msg) if msg.contains("not in")
        ));
        assert_eq!(
            reg.handle(cmd("IMPLIES t R:[A -> C]")),
            Response::Ok("implied".to_string())
        );
        reg.on_shutdown();
    }

    #[test]
    fn mutations_are_charged_to_the_tenant_quota() {
        let reg = Registry::new(RegistryConfig::default());
        assert!(load(&reg, "t").is_ok());
        assert_eq!(
            reg.handle(cmd("QUOTA t 2")),
            Response::Ok("quota=2".to_string())
        );
        // The mutation costs the rebuilt pool size (>= 2 here), so the
        // quota drains to zero and the next workload verb is denied
        // before dispatch.
        assert!(reg.handle(cmd("ADDDEP t R:[C -> A]")).is_ok());
        assert!(matches!(
            reg.handle(cmd("ADDDEP t R:[B -> A]")),
            Response::Exhausted(msg) if msg.contains("quota")
        ));
        reg.on_shutdown();
    }

    #[test]
    fn quota_zero_denies_before_dispatch_and_is_recoverable() {
        let reg = Registry::new(RegistryConfig::default());
        assert!(load(&reg, "t").is_ok());
        assert_eq!(
            reg.handle(cmd("QUOTA t 0")),
            Response::Ok("quota=0".to_string())
        );
        assert!(matches!(
            reg.handle(cmd("IMPLIES t R:[A -> B]")),
            Response::Exhausted(msg) if msg.contains("quota")
        ));
        // Raising the quota restores service on the same warm session.
        assert_eq!(
            reg.handle(cmd("QUOTA t 100000")),
            Response::Ok("quota=100000".to_string())
        );
        assert_eq!(
            reg.handle(cmd("IMPLIES t R:[A -> B]")),
            Response::Ok("implied".to_string())
        );
        assert!(reg.stats_line().contains("quota_denials=1"));
        reg.on_shutdown();
    }

    #[test]
    fn queries_deplete_a_metered_quota() {
        let reg = Registry::new(RegistryConfig {
            default_quota: Some(1),
            ..RegistryConfig::default()
        });
        assert!(load(&reg, "t").is_ok());
        // First query runs (cost ≥ 1 drains the single unit), second is
        // denied before dispatch. The first may itself exhaust its
        // quota-tightened budget — either way it is never an ERR.
        assert!(!matches!(
            reg.handle(cmd("IMPLIES t R:[A -> B]")),
            Response::Err(_)
        ));
        assert!(matches!(
            reg.handle(cmd("IMPLIES t R:[A -> B]")),
            Response::Exhausted(msg) if msg.contains("quota")
        ));
        reg.on_shutdown();
    }

    #[test]
    fn lru_eviction_under_resident_cap() {
        let reg = Registry::new(RegistryConfig {
            max_resident: 2,
            ..RegistryConfig::default()
        });
        assert!(load(&reg, "a").is_ok());
        assert!(load(&reg, "b").is_ok());
        // Touch `a` so `b` is the LRU when `c` arrives.
        assert!(reg.handle(cmd("IMPLIES a R:[A -> B]")).is_ok());
        assert!(load(&reg, "c").is_ok());
        assert!(matches!(
            reg.handle(cmd("IMPLIES b R:[A -> B]")),
            Response::Err(msg) if msg.contains("unknown tenant")
        ));
        assert!(reg.handle(cmd("IMPLIES a R:[A -> B]")).is_ok());
        assert!(reg.handle(cmd("IMPLIES c R:[A -> B]")).is_ok());
        let stats = reg.stats_line();
        assert!(stats.contains("evicted_lru=1"), "{stats}");
        assert!(
            stats.contains("resident=[c,a]") || stats.contains("resident=[a,c]"),
            "{stats}"
        );
        reg.on_shutdown();
    }

    #[test]
    fn evict_and_reload_lifecycle() {
        let reg = Registry::new(RegistryConfig::default());
        assert!(load(&reg, "t").is_ok());
        assert_eq!(
            reg.handle(cmd("EVICT t")),
            Response::Ok("evicted".to_string())
        );
        assert!(matches!(
            reg.handle(cmd("EVICT t")),
            Response::Err(msg) if msg.contains("unknown tenant")
        ));
        assert!(load(&reg, "t").is_ok());
        assert!(load(&reg, "t").is_ok(), "reload replaces in place");
        assert_eq!(
            reg.handle(cmd("IMPLIES t R:[A -> C]")),
            Response::Ok("implied".to_string())
        );
        let stats = reg.stats_line();
        assert!(stats.contains("reloads=1"), "{stats}");
        assert!(stats.contains("evicted=1"), "{stats}");
        reg.on_shutdown();
    }

    /// A scratch file path in the system temp dir, removed on drop.
    struct TempSnap(std::path::PathBuf);

    impl TempSnap {
        fn new(tag: &str) -> TempSnap {
            TempSnap(
                std::env::temp_dir().join(format!("nfd-serve-{tag}-{}.snap", std::process::id())),
            )
        }

        fn as_str(&self) -> String {
            self.0.to_string_lossy().into_owned()
        }
    }

    impl Drop for TempSnap {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn snapshot_then_restore_round_trips_a_tenant() {
        let file = TempSnap::new("roundtrip");
        let path = file.as_str();
        let reg = Registry::new(RegistryConfig::default());
        assert!(load(&reg, "t").is_ok());
        let resp = reg.handle(cmd(&format!("SNAPSHOT t {path}")));
        assert!(
            matches!(&resp, Response::Ok(msg) if msg.starts_with("snapshot bytes=")),
            "{resp:?}"
        );
        // Evict, then resurrect from disk under a new name: the thawed
        // session answers exactly like the compiled one did.
        assert!(reg.handle(cmd("EVICT t")).is_ok());
        let resp = reg.handle(cmd(&format!("RESTORE warm {path}")));
        assert_eq!(resp, Response::Ok("restored deps=2 (thawed)".to_string()));
        assert_eq!(
            reg.handle(cmd("IMPLIES warm R:[A -> C]")),
            Response::Ok("implied".to_string())
        );
        assert_eq!(
            reg.handle(cmd("IMPLIES warm R:[C -> A]")),
            Response::Ok("not-implied".to_string())
        );
        // Mutations work on the thawed session too.
        assert!(reg.handle(cmd("ADDDEP warm R:[C -> A]")).is_ok());
        assert_eq!(
            reg.handle(cmd("IMPLIES warm R:[C -> A]")),
            Response::Ok("implied".to_string())
        );
        let stats = reg.stats_line();
        assert!(stats.contains("snapshots_written=1"), "{stats}");
        assert!(stats.contains("restores_ok=1"), "{stats}");
        assert!(stats.contains("restores_rejected=0"), "{stats}");
        assert!(stats.contains("thaw_fallbacks=0"), "{stats}");
        reg.on_shutdown();
    }

    #[test]
    fn corrupt_restore_falls_back_or_rejects_with_typed_reason() {
        let file = TempSnap::new("corrupt");
        let path = file.as_str();
        let reg = Registry::new(RegistryConfig::default());
        assert!(load(&reg, "t").is_ok());
        assert!(reg.handle(cmd(&format!("SNAPSHOT t {path}"))).is_ok());

        // Corrupt a compiled section (late in the file): the sources
        // salvage, so RESTORE degrades to a fresh compile and the
        // session still answers correctly.
        let pristine = std::fs::read(&file.0).unwrap();
        let mut bytes = pristine.clone();
        let late = bytes.len() - 9;
        bytes[late] ^= 0xFF;
        std::fs::write(&file.0, &bytes).unwrap();
        let resp = reg.handle(cmd(&format!("RESTORE hurt {path}")));
        assert!(
            matches!(&resp, Response::Ok(msg) if msg.contains("compiled fresh")),
            "{resp:?}"
        );
        assert_eq!(
            reg.handle(cmd("IMPLIES hurt R:[A -> C]")),
            Response::Ok("implied".to_string())
        );

        // Destroy the header: nothing salvages, RESTORE answers ERR and
        // no tenant appears.
        std::fs::write(&file.0, b"garbage").unwrap();
        let resp = reg.handle(cmd(&format!("RESTORE dead {path}")));
        assert!(
            matches!(&resp, Response::Err(msg) if msg.starts_with("restore:")),
            "{resp:?}"
        );
        assert!(matches!(
            reg.handle(cmd("IMPLIES dead R:[A -> B]")),
            Response::Err(msg) if msg.contains("unknown tenant")
        ));

        // A missing file is the same typed rejection.
        let resp = reg.handle(cmd("RESTORE ghost /nonexistent/nope.snap"));
        assert!(
            matches!(&resp, Response::Err(msg) if msg.starts_with("restore:")),
            "{resp:?}"
        );
        let stats = reg.stats_line();
        assert!(stats.contains("thaw_fallbacks=1"), "{stats}");
        assert!(stats.contains("restores_rejected=2"), "{stats}");
        reg.on_shutdown();
    }

    #[test]
    fn snapshot_is_quota_charged_and_unknown_tenant_rejected() {
        let file = TempSnap::new("quota");
        let path = file.as_str();
        let reg = Registry::new(RegistryConfig::default());
        assert!(matches!(
            reg.handle(cmd(&format!("SNAPSHOT ghost {path}"))),
            Response::Err(msg) if msg.contains("unknown tenant")
        ));
        assert!(load(&reg, "t").is_ok());
        assert_eq!(
            reg.handle(cmd("QUOTA t 1")),
            Response::Ok("quota=1".to_string())
        );
        // The snapshot drains the single unit; the next workload verb is
        // denied before dispatch.
        assert!(reg.handle(cmd(&format!("SNAPSHOT t {path}"))).is_ok());
        assert!(matches!(
            reg.handle(cmd("IMPLIES t R:[A -> B]")),
            Response::Exhausted(msg) if msg.contains("quota")
        ));
        reg.on_shutdown();
    }

    #[test]
    fn shutdown_drains_every_actor() {
        let reg = Registry::new(RegistryConfig::default());
        assert!(load(&reg, "a").is_ok());
        assert!(load(&reg, "b").is_ok());
        reg.on_shutdown();
        assert!(reg.stats_line().contains("sessions=0"));
        assert!(matches!(
            reg.handle(cmd("IMPLIES a R:[A -> B]")),
            Response::Err(msg) if msg.contains("unknown tenant")
        ));
    }

    /// The differential pin for the tentpole: the parallel pool answers
    /// every verb — reads, mutations, reads-after-mutation — with the
    /// same wire responses the sequential daemon gives.
    #[test]
    fn parallel_pool_matches_the_sequential_daemon() {
        let reg = Registry::new(RegistryConfig {
            workers: 4,
            ..RegistryConfig::default()
        });
        assert_eq!(load(&reg, "t"), Response::Ok("loaded deps=2".to_string()));
        assert_eq!(
            reg.handle(cmd("IMPLIES t R:[A -> C]")),
            Response::Ok("implied".to_string())
        );
        assert_eq!(
            reg.handle(cmd("IMPLIES t R:[C -> A]")),
            Response::Ok("not-implied".to_string())
        );
        assert_eq!(
            reg.handle(cmd("BATCH t R:[A -> C]; R:[C -> A];")),
            Response::Ok("implied,not-implied".to_string())
        );
        let keys = reg.handle(cmd("KEYS t R"));
        assert!(
            matches!(&keys, Response::Ok(p) if p.contains("{A}")),
            "{keys:?}"
        );
        let closure = reg.handle(cmd("CLOSURE t R A"));
        assert!(
            matches!(&closure, Response::Ok(p) if p.contains("R:B") && p.contains("R:C")),
            "{closure:?}"
        );
        // A mutation swaps the epoch under the pool; verdicts follow.
        let resp = reg.handle(cmd("ADDDEP t R:[C -> A]"));
        assert!(
            matches!(&resp, Response::Ok(msg) if msg.starts_with("added relation=R")),
            "{resp:?}"
        );
        assert_eq!(
            reg.handle(cmd("IMPLIES t R:[C -> A]")),
            Response::Ok("implied".to_string())
        );
        let resp = reg.handle(cmd("DROPDEP t R:[C -> A]"));
        assert!(
            matches!(&resp, Response::Ok(msg) if msg.starts_with("dropped relation=R")),
            "{resp:?}"
        );
        assert_eq!(
            reg.handle(cmd("IMPLIES t R:[C -> A]")),
            Response::Ok("not-implied".to_string())
        );
        assert!(matches!(
            reg.handle(cmd("DROPDEP t R:[C -> A]")),
            Response::Err(msg) if msg.contains("not in")
        ));
        assert_eq!(
            reg.handle(cmd("BATCH t R:[A -> C]; R:[C -> A];")),
            Response::Ok("implied,not-implied".to_string())
        );
        reg.on_shutdown();
    }

    /// Two tenants loaded from identical sources resolve to the *same*
    /// pooled closure cache and warm each other; a mutation forks the
    /// mutated tenant onto a private cache, leaving the pool entry to
    /// the tenants still serving the original Σ.
    #[test]
    fn same_source_tenants_share_a_cache_until_one_mutates() {
        let reg = Registry::new(RegistryConfig::default());
        assert!(load(&reg, "a").is_ok());
        assert!(load(&reg, "b").is_ok());
        let (cache_a, cache_b) = {
            let tenants = reg.tenants.lock().unwrap();
            let find = |name: &str| {
                Arc::clone(
                    &tenants
                        .iter()
                        .find(|t| t.name == name)
                        .unwrap()
                        .epoch
                        .as_ref()
                        .unwrap()
                        .cache,
                )
            };
            (find("a"), find("b"))
        };
        assert!(
            Arc::ptr_eq(&cache_a, &cache_b),
            "identical sources must share one pooled cache"
        );
        assert!(reg.handle(cmd("ADDDEP b R:[C -> A]")).is_ok());
        let cache_b2 = {
            let tenants = reg.tenants.lock().unwrap();
            Arc::clone(
                &tenants
                    .iter()
                    .find(|t| t.name == "b")
                    .unwrap()
                    .epoch
                    .as_ref()
                    .unwrap()
                    .cache,
            )
        };
        assert!(
            !Arc::ptr_eq(&cache_a, &cache_b2),
            "a mutated tenant must not keep writing into the shared cache"
        );
        // The un-mutated tenant still answers from the original Σ.
        assert_eq!(
            reg.handle(cmd("IMPLIES a R:[C -> A]")),
            Response::Ok("not-implied".to_string())
        );
        assert_eq!(
            reg.handle(cmd("IMPLIES b R:[C -> A]")),
            Response::Ok("implied".to_string())
        );
        reg.on_shutdown();
    }

    /// The new observability fields ride at the end of the STATS line:
    /// worker count, epoch swaps, queue depth, and closure-cache
    /// hit/miss broken out per tenant and for the shared pool.
    #[test]
    fn stats_line_reports_parallel_and_cache_observability() {
        let reg = Registry::new(RegistryConfig {
            workers: 2,
            ..RegistryConfig::default()
        });
        assert!(load(&reg, "t").is_ok());
        // CLOSURE twice: the second is a cache hit on the shared entry.
        assert!(reg.handle(cmd("CLOSURE t R A")).is_ok());
        assert!(reg.handle(cmd("CLOSURE t R A")).is_ok());
        assert!(reg.handle(cmd("ADDDEP t R:[C -> A]")).is_ok());
        let stats = reg.stats_line();
        for field in [
            "workers=2",
            "epoch_swaps=1",
            "worker_queue_depth=0",
            "closure_hits=",
            "closure_misses=",
            "shared_caches=1",
            "shared_cache_hits=",
            "shared_cache_misses=",
            "tenant_cache=[t:",
        ] {
            assert!(stats.contains(field), "missing `{field}` in: {stats}");
        }
        reg.on_shutdown();
    }
}
